"""The errno namespace used by the simulated libc.

Values follow the common Linux numbering so that fault profiles, scenarios
and logs read naturally (``EINTR = 4``, ``EIO = 5``, ...).  The paper's
profiler reports errno side effects by name; we keep a bidirectional mapping
between names and values for the XML profile/scenario formats.
"""

from __future__ import annotations

import enum
from typing import Dict


class Errno(enum.IntEnum):
    """POSIX error numbers (Linux values)."""

    OK = 0
    EPERM = 1
    ENOENT = 2
    ESRCH = 3
    EINTR = 4
    EIO = 5
    ENXIO = 6
    E2BIG = 7
    ENOEXEC = 8
    EBADF = 9
    ECHILD = 10
    EAGAIN = 11
    ENOMEM = 12
    EACCES = 13
    EFAULT = 14
    ENOTBLK = 15
    EBUSY = 16
    EEXIST = 17
    EXDEV = 18
    ENODEV = 19
    ENOTDIR = 20
    EISDIR = 21
    EINVAL = 22
    ENFILE = 23
    EMFILE = 24
    ENOTTY = 25
    ETXTBSY = 26
    EFBIG = 27
    ENOSPC = 28
    ESPIPE = 29
    EROFS = 30
    EMLINK = 31
    EPIPE = 32
    EDOM = 33
    ERANGE = 34
    EDEADLK = 35
    ENAMETOOLONG = 36
    ENOLCK = 37
    ENOSYS = 38
    ENOTEMPTY = 39
    ELOOP = 40
    EMSGSIZE = 90
    ECONNRESET = 104
    ECONNREFUSED = 111
    ENETDOWN = 100
    ENETUNREACH = 101
    ETIMEDOUT = 110
    EADDRINUSE = 98


_NAME_BY_VALUE: Dict[int, str] = {member.value: member.name for member in Errno}
_VALUE_BY_NAME: Dict[str, int] = {member.name: member.value for member in Errno}


def errno_name(value: int) -> str:
    """Return the symbolic name of an errno value (``"E???"`` if unknown)."""
    return _NAME_BY_VALUE.get(int(value), f"E?{int(value)}")


def errno_value(name: str) -> int:
    """Return the numeric errno for a symbolic name.

    Accepts either a symbolic name (``"EINTR"``) or a decimal string, which
    makes scenario files forgiving about how the side effect is written.
    """
    key = name.strip()
    if key in _VALUE_BY_NAME:
        return _VALUE_BY_NAME[key]
    try:
        return int(key, 0)
    except ValueError as exc:
        raise KeyError(f"unknown errno {name!r}") from exc


__all__ = ["Errno", "errno_name", "errno_value"]
