"""In-memory filesystem with POSIX-flavoured semantics.

This is the substrate behind ``open``/``read``/``write``/``close``,
``opendir``/``readdir``, ``unlink``, ``readlink``, ``stat`` and the stdio
layer (``fopen``/``fread``/``fwrite``).  Failures surface as
:class:`~repro.oslib.errors.OSFault` carrying an errno, which the libc layer
converts into error returns — the same externalized errors the LFI profiler
reports and the injector simulates.

:meth:`SimFileSystem.capture_state` / :meth:`SimFileSystem.restore_state`
are the filesystem's contribution to the forkserver-style snapshot engine
(:mod:`repro.vm.snapshot`): a structural copy of every file, symlink,
directory, open descriptor (pipe ends keep sharing one buffer after a
restore) and directory stream, detached from the live objects so a restored
run cannot observe mutations made by a later fork.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.oslib.errno_codes import Errno
from repro.oslib.errors import OSFault

# open(2) flag bits (subset).
O_RDONLY = 0
O_WRONLY = 1
O_RDWR = 2
O_CREAT = 0o100
O_TRUNC = 0o1000
O_APPEND = 0o2000
O_NONBLOCK = 0o4000

# File "mode" kinds reported by stat/fstat.
S_IFREG = 0o100000
S_IFDIR = 0o040000
S_IFIFO = 0o010000
S_IFLNK = 0o120000
S_IFSOCK = 0o140000


def s_isfifo(mode: int) -> bool:
    return (mode & 0o170000) == S_IFIFO


def s_isreg(mode: int) -> bool:
    return (mode & 0o170000) == S_IFREG


def s_isdir(mode: int) -> bool:
    return (mode & 0o170000) == S_IFDIR


@dataclass
class SimFile:
    """A regular file."""

    path: str
    data: bytearray = field(default_factory=bytearray)
    mode: int = S_IFREG | 0o644
    read_only: bool = False

    @property
    def size(self) -> int:
        return len(self.data)


@dataclass
class SimSymlink:
    path: str
    target: str
    mode: int = S_IFLNK | 0o777


@dataclass
class Stat:
    """Result of ``stat``/``fstat``."""

    mode: int
    size: int
    inode: int

    def is_fifo(self) -> bool:
        return s_isfifo(self.mode)

    def is_dir(self) -> bool:
        return s_isdir(self.mode)


@dataclass
class OpenFile:
    """An open file description (shared by dup'ed descriptors)."""

    file: Optional[SimFile]
    flags: int
    offset: int = 0
    is_pipe: bool = False
    pipe_buffer: Optional[bytearray] = None
    is_socket: bool = False
    closed: bool = False

    @property
    def kind_mode(self) -> int:
        if self.is_pipe:
            return S_IFIFO | 0o600
        if self.is_socket:
            return S_IFSOCK | 0o600
        assert self.file is not None
        return self.file.mode


@dataclass
class DirStream:
    """State behind an ``opendir`` handle."""

    path: str
    entries: List[str]
    position: int = 0
    closed: bool = False


class SimFileSystem:
    """The in-memory filesystem shared by all code of one simulated process."""

    MAX_OPEN_FILES = 1024

    def __init__(self) -> None:
        self._files: Dict[str, SimFile] = {}
        self._symlinks: Dict[str, SimSymlink] = {}
        self._dirs: set = {"/"}
        self._descriptors: Dict[int, OpenFile] = {}
        self._dir_streams: Dict[int, DirStream] = {}
        self._next_fd = 3  # 0/1/2 reserved for std streams
        self._next_dir_handle = 1
        self._next_inode = 1
        self._inodes: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # path helpers and direct population (used by target fixtures)
    # ------------------------------------------------------------------
    @staticmethod
    def _normalize(path: str) -> str:
        if not path:
            raise OSFault(Errno.ENOENT, "empty path")
        normalized = posixpath.normpath(path if path.startswith("/") else "/" + path)
        return normalized

    def add_file(self, path: str, data: bytes = b"", read_only: bool = False) -> SimFile:
        path = self._normalize(path)
        self.make_dirs(posixpath.dirname(path))
        sim_file = SimFile(path=path, data=bytearray(data), read_only=read_only)
        self._files[path] = sim_file
        self._inodes.setdefault(path, self._allocate_inode())
        return sim_file

    def add_symlink(self, path: str, target: str) -> None:
        path = self._normalize(path)
        self.make_dirs(posixpath.dirname(path))
        self._symlinks[path] = SimSymlink(path=path, target=target)
        self._inodes.setdefault(path, self._allocate_inode())

    def make_dirs(self, path: str) -> None:
        path = self._normalize(path)
        parts = [part for part in path.split("/") if part]
        current = "/"
        self._dirs.add(current)
        for part in parts:
            current = posixpath.join(current, part)
            self._dirs.add(current)
            self._inodes.setdefault(current, self._allocate_inode())

    def _allocate_inode(self) -> int:
        inode = self._next_inode
        self._next_inode += 1
        return inode

    def exists(self, path: str) -> bool:
        path = self._normalize(path)
        return path in self._files or path in self._dirs or path in self._symlinks

    def file_contents(self, path: str) -> bytes:
        path = self._normalize(path)
        if path not in self._files:
            raise OSFault(Errno.ENOENT, path)
        return bytes(self._files[path].data)

    def list_dir(self, path: str) -> List[str]:
        path = self._normalize(path)
        if path not in self._dirs:
            raise OSFault(Errno.ENOENT, path)
        entries = set()
        prefix = path.rstrip("/") + "/"
        if path == "/":
            prefix = "/"
        for candidate in list(self._files) + list(self._dirs) + list(self._symlinks):
            if candidate == path:
                continue
            if candidate.startswith(prefix):
                remainder = candidate[len(prefix):]
                if remainder and "/" not in remainder:
                    entries.add(remainder)
        return sorted(entries)

    # ------------------------------------------------------------------
    # descriptor-level API
    # ------------------------------------------------------------------
    def _allocate_fd(self, open_file: OpenFile) -> int:
        if len(self._descriptors) >= self.MAX_OPEN_FILES:
            raise OSFault(Errno.EMFILE, "too many open files")
        fd = self._next_fd
        self._next_fd += 1
        self._descriptors[fd] = open_file
        return fd

    def _descriptor(self, fd: int) -> OpenFile:
        open_file = self._descriptors.get(fd)
        if open_file is None or open_file.closed:
            raise OSFault(Errno.EBADF, f"fd {fd}")
        return open_file

    def open(self, path: str, flags: int = O_RDONLY) -> int:
        path = self._normalize(path)
        if path in self._symlinks:
            path = self._normalize(self._symlinks[path].target)
        existing = self._files.get(path)
        if existing is None:
            if path in self._dirs:
                raise OSFault(Errno.EISDIR, path)
            if not flags & O_CREAT:
                raise OSFault(Errno.ENOENT, path)
            parent = posixpath.dirname(path)
            if parent not in self._dirs:
                raise OSFault(Errno.ENOENT, parent)
            existing = self.add_file(path)
        if existing.read_only and flags & (O_WRONLY | O_RDWR | O_TRUNC):
            raise OSFault(Errno.EACCES, path)
        if flags & O_TRUNC:
            existing.data = bytearray()
        open_file = OpenFile(file=existing, flags=flags)
        if flags & O_APPEND:
            open_file.offset = existing.size
        return self._allocate_fd(open_file)

    def close(self, fd: int) -> None:
        open_file = self._descriptor(fd)
        open_file.closed = True
        del self._descriptors[fd]

    def read(self, fd: int, count: int) -> bytes:
        open_file = self._descriptor(fd)
        if count < 0:
            raise OSFault(Errno.EINVAL, "negative count")
        if open_file.is_pipe:
            assert open_file.pipe_buffer is not None
            if not open_file.pipe_buffer:
                if open_file.flags & O_NONBLOCK:
                    raise OSFault(Errno.EAGAIN, "pipe empty")
                return b""
            data = bytes(open_file.pipe_buffer[:count])
            del open_file.pipe_buffer[:count]
            return data
        if open_file.file is None:
            raise OSFault(Errno.EBADF, f"fd {fd}")
        if open_file.flags & O_WRONLY:
            raise OSFault(Errno.EBADF, "write-only descriptor")
        data = bytes(open_file.file.data[open_file.offset:open_file.offset + count])
        open_file.offset += len(data)
        return data

    def write(self, fd: int, data: bytes) -> int:
        open_file = self._descriptor(fd)
        if open_file.is_pipe:
            assert open_file.pipe_buffer is not None
            open_file.pipe_buffer.extend(data)
            return len(data)
        if open_file.file is None:
            raise OSFault(Errno.EBADF, f"fd {fd}")
        if open_file.file.read_only:
            raise OSFault(Errno.EACCES, open_file.file.path)
        if not open_file.flags & (O_WRONLY | O_RDWR):
            raise OSFault(Errno.EBADF, "read-only descriptor")
        end = open_file.offset + len(data)
        file_data = open_file.file.data
        if end > len(file_data):
            file_data.extend(b"\x00" * (end - len(file_data)))
        file_data[open_file.offset:end] = data
        open_file.offset = end
        return len(data)

    def lseek(self, fd: int, offset: int, whence: int = 0) -> int:
        open_file = self._descriptor(fd)
        if open_file.is_pipe or open_file.is_socket:
            raise OSFault(Errno.ESPIPE, "seek on pipe/socket")
        assert open_file.file is not None
        if whence == 0:
            new_offset = offset
        elif whence == 1:
            new_offset = open_file.offset + offset
        elif whence == 2:
            new_offset = open_file.file.size + offset
        else:
            raise OSFault(Errno.EINVAL, f"whence {whence}")
        if new_offset < 0:
            raise OSFault(Errno.EINVAL, "negative offset")
        open_file.offset = new_offset
        return new_offset

    def fstat(self, fd: int) -> Stat:
        open_file = self._descriptor(fd)
        size = 0
        if open_file.is_pipe and open_file.pipe_buffer is not None:
            size = len(open_file.pipe_buffer)
        elif open_file.file is not None:
            size = open_file.file.size
        inode = 0
        if open_file.file is not None:
            inode = self._inodes.get(open_file.file.path, 0)
        return Stat(mode=open_file.kind_mode, size=size, inode=inode)

    def stat(self, path: str) -> Stat:
        path = self._normalize(path)
        if path in self._symlinks:
            path = self._normalize(self._symlinks[path].target)
        if path in self._files:
            f = self._files[path]
            return Stat(mode=f.mode, size=f.size, inode=self._inodes.get(path, 0))
        if path in self._dirs:
            return Stat(mode=S_IFDIR | 0o755, size=0, inode=self._inodes.get(path, 0))
        raise OSFault(Errno.ENOENT, path)

    def unlink(self, path: str) -> None:
        path = self._normalize(path)
        if path in self._symlinks:
            del self._symlinks[path]
            return
        if path not in self._files:
            if path in self._dirs:
                raise OSFault(Errno.EISDIR, path)
            raise OSFault(Errno.ENOENT, path)
        if self._files[path].read_only:
            raise OSFault(Errno.EACCES, path)
        del self._files[path]

    def readlink(self, path: str) -> str:
        path = self._normalize(path)
        link = self._symlinks.get(path)
        if link is None:
            if path in self._files or path in self._dirs:
                raise OSFault(Errno.EINVAL, f"{path} is not a symlink")
            raise OSFault(Errno.ENOENT, path)
        return link.target

    def mkdir(self, path: str) -> None:
        path = self._normalize(path)
        if self.exists(path):
            raise OSFault(Errno.EEXIST, path)
        parent = posixpath.dirname(path)
        if parent not in self._dirs:
            raise OSFault(Errno.ENOENT, parent)
        self._dirs.add(path)
        self._inodes.setdefault(path, self._allocate_inode())

    def fd_flags(self, fd: int) -> int:
        return self._descriptor(fd).flags

    def set_fd_flags(self, fd: int, flags: int) -> None:
        self._descriptor(fd).flags = flags

    def descriptor_is_open(self, fd: int) -> bool:
        open_file = self._descriptors.get(fd)
        return open_file is not None and not open_file.closed

    def open_descriptor_count(self) -> int:
        return len(self._descriptors)

    # ------------------------------------------------------------------
    # snapshot support (repro.vm.snapshot)
    # ------------------------------------------------------------------
    def capture_state(self) -> Dict[str, object]:
        """Structural copy of the whole filesystem (files, fds, streams)."""
        pipe_buffers: Dict[int, bytes] = {}
        inline_files: Dict[int, tuple] = {}
        descriptors: Dict[int, tuple] = {}
        for fd, open_file in self._descriptors.items():
            file_path = None
            inline_key = None
            if open_file.file is not None:
                if self._files.get(open_file.file.path) is open_file.file:
                    file_path = open_file.file.path
                else:
                    # Open-but-unlinked file: its contents only live behind
                    # descriptors.  Keyed by object identity so several
                    # descriptors of one unlinked file keep sharing a
                    # single SimFile after a restore.
                    inline_key = id(open_file.file)
                    inline_files.setdefault(
                        inline_key,
                        (
                            open_file.file.path,
                            bytes(open_file.file.data),
                            open_file.file.mode,
                            open_file.file.read_only,
                        ),
                    )
            pipe_key = None
            if open_file.pipe_buffer is not None:
                pipe_key = id(open_file.pipe_buffer)
                pipe_buffers.setdefault(pipe_key, bytes(open_file.pipe_buffer))
            descriptors[fd] = (
                file_path,
                inline_key,
                open_file.flags,
                open_file.offset,
                open_file.is_pipe,
                pipe_key,
                open_file.is_socket,
                open_file.closed,
            )
        return {
            "files": {
                path: (bytes(f.data), f.mode, f.read_only)
                for path, f in self._files.items()
            },
            "symlinks": {
                path: (link.target, link.mode) for path, link in self._symlinks.items()
            },
            "dirs": set(self._dirs),
            "inodes": dict(self._inodes),
            "descriptors": descriptors,
            "inline_files": inline_files,
            "pipe_buffers": pipe_buffers,
            "dir_streams": {
                handle: (stream.path, list(stream.entries), stream.position, stream.closed)
                for handle, stream in self._dir_streams.items()
            },
            "next_fd": self._next_fd,
            "next_dir_handle": self._next_dir_handle,
            "next_inode": self._next_inode,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Rebuild the filesystem from a :meth:`capture_state` snapshot."""
        self._files = {
            path: SimFile(path=path, data=bytearray(data), mode=mode, read_only=read_only)
            for path, (data, mode, read_only) in state["files"].items()
        }
        self._symlinks = {
            path: SimSymlink(path=path, target=target, mode=mode)
            for path, (target, mode) in state["symlinks"].items()
        }
        self._dirs = set(state["dirs"])
        self._inodes = dict(state["inodes"])
        shared_buffers = {
            key: bytearray(data) for key, data in state["pipe_buffers"].items()
        }
        shared_inline = {
            key: SimFile(path=path, data=bytearray(data), mode=mode,
                         read_only=read_only)
            for key, (path, data, mode, read_only) in state["inline_files"].items()
        }
        self._descriptors = {}
        for fd, entry in state["descriptors"].items():
            (file_path, inline_key, flags, offset, is_pipe, pipe_key,
             is_socket, closed) = entry
            sim_file = None
            if file_path is not None:
                sim_file = self._files[file_path]
            elif inline_key is not None:
                sim_file = shared_inline[inline_key]
            self._descriptors[fd] = OpenFile(
                file=sim_file,
                flags=flags,
                offset=offset,
                is_pipe=is_pipe,
                pipe_buffer=shared_buffers[pipe_key] if pipe_key is not None else None,
                is_socket=is_socket,
                closed=closed,
            )
        self._dir_streams = {
            handle: DirStream(path=path, entries=list(entries), position=position,
                              closed=closed)
            for handle, (path, entries, position, closed) in state["dir_streams"].items()
        }
        self._next_fd = state["next_fd"]
        self._next_dir_handle = state["next_dir_handle"]
        self._next_inode = state["next_inode"]

    # ------------------------------------------------------------------
    # pipes and sockets
    # ------------------------------------------------------------------
    def make_pipe(self, nonblocking: bool = False) -> Tuple[int, int]:
        """Create a pipe; returns (read_fd, write_fd) sharing one buffer."""
        buffer = bytearray()
        flags = O_NONBLOCK if nonblocking else 0
        read_end = OpenFile(file=None, flags=O_RDONLY | flags, is_pipe=True, pipe_buffer=buffer)
        write_end = OpenFile(file=None, flags=O_WRONLY | flags, is_pipe=True, pipe_buffer=buffer)
        return self._allocate_fd(read_end), self._allocate_fd(write_end)

    def make_socket_fd(self) -> int:
        return self._allocate_fd(OpenFile(file=None, flags=O_RDWR, is_socket=True))

    def is_socket(self, fd: int) -> bool:
        return self._descriptor(fd).is_socket

    # ------------------------------------------------------------------
    # directory streams
    # ------------------------------------------------------------------
    def opendir(self, path: str) -> int:
        path = self._normalize(path)
        if path not in self._dirs:
            if path in self._files:
                raise OSFault(Errno.ENOTDIR, path)
            raise OSFault(Errno.ENOENT, path)
        handle = self._next_dir_handle
        self._next_dir_handle += 1
        self._dir_streams[handle] = DirStream(path=path, entries=self.list_dir(path))
        return handle

    def readdir(self, handle: int) -> Optional[str]:
        stream = self._dir_streams.get(handle)
        if stream is None or stream.closed:
            raise OSFault(Errno.EBADF, f"dir handle {handle}")
        if stream.position >= len(stream.entries):
            return None
        entry = stream.entries[stream.position]
        stream.position += 1
        return entry

    def closedir(self, handle: int) -> None:
        stream = self._dir_streams.get(handle)
        if stream is None or stream.closed:
            raise OSFault(Errno.EBADF, f"dir handle {handle}")
        stream.closed = True
        del self._dir_streams[handle]


__all__ = [
    "DirStream",
    "O_APPEND",
    "O_CREAT",
    "O_NONBLOCK",
    "O_RDONLY",
    "O_RDWR",
    "O_TRUNC",
    "O_WRONLY",
    "OpenFile",
    "S_IFDIR",
    "S_IFIFO",
    "S_IFREG",
    "S_IFSOCK",
    "SimFile",
    "SimFileSystem",
    "Stat",
    "s_isdir",
    "s_isfifo",
    "s_isreg",
]
