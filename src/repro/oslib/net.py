"""A datagram network connecting simulated nodes.

PBFT replicas and the client exchange messages over this substrate using
``sendto``/``recvfrom``; the paper's Figure 3 and the DoS study are produced
by injecting faults into exactly those two calls, so the network itself is
reliable — unreliability comes from the injector, as in the paper.

Delivery cost is accounted against a :class:`~repro.oslib.clock.SimClock`
through per-message latency, which is what makes the throughput experiments
deterministic and fast (they run on simulated time, not wall-clock time).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.oslib.errno_codes import Errno
from repro.oslib.errors import OSFault


@dataclass(frozen=True)
class Datagram:
    """One message in flight or queued at a destination."""

    source: int
    destination: int
    payload: bytes
    sent_at: float


class Socket:
    """A bound datagram socket belonging to one simulated node."""

    def __init__(self, fd: int, owner: str) -> None:
        self.fd = fd
        self.owner = owner
        self.address: Optional[int] = None
        self.queue: Deque[Datagram] = deque()
        self.closed = False


class SimNetwork:
    """Shared datagram fabric for all nodes of a distributed experiment."""

    MAX_DATAGRAM = 65536

    def __init__(self, latency: float = 0.0005) -> None:
        #: Per-message delivery latency in simulated seconds.
        self.latency = latency
        self._sockets: Dict[int, Socket] = {}
        self._bound: Dict[int, Socket] = {}
        self._next_fd = 1000
        self._delivery_hooks: List[Callable[[Datagram], bool]] = []
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0

    # ------------------------------------------------------------------
    # socket lifecycle
    # ------------------------------------------------------------------
    def socket(self, owner: str = "?") -> int:
        fd = self._next_fd
        self._next_fd += 1
        self._sockets[fd] = Socket(fd=fd, owner=owner)
        return fd

    def _socket(self, fd: int) -> Socket:
        sock = self._sockets.get(fd)
        if sock is None or sock.closed:
            raise OSFault(Errno.EBADF, f"socket fd {fd}")
        return sock

    def bind(self, fd: int, address: int) -> None:
        sock = self._socket(fd)
        if address in self._bound and self._bound[address] is not sock:
            raise OSFault(Errno.EADDRINUSE, f"address {address}")
        sock.address = address
        self._bound[address] = sock

    def close(self, fd: int) -> None:
        sock = self._socket(fd)
        sock.closed = True
        if sock.address is not None and self._bound.get(sock.address) is sock:
            del self._bound[sock.address]
        del self._sockets[fd]

    # ------------------------------------------------------------------
    # observation hooks (used by experiments to count traffic)
    # ------------------------------------------------------------------
    def add_delivery_hook(self, hook: Callable[[Datagram], bool]) -> None:
        """Register a hook; returning ``False`` drops the datagram."""
        self._delivery_hooks.append(hook)

    def clear_delivery_hooks(self) -> None:
        self._delivery_hooks.clear()

    def has_delivery_hook(self, hook: Callable[[Datagram], bool]) -> bool:
        """True when an equal hook is already installed (idempotent installs)."""
        return hook in self._delivery_hooks

    def delivery_hook_count(self) -> int:
        return len(self._delivery_hooks)

    def promote_last(self, destination: int) -> bool:
        """Move the newest queued datagram for *destination* to the front.

        Models a datagram overtaking the ones already in flight (the
        ``net_reorder`` fault class).  Queue state is part of
        :meth:`capture_state`, so reorderings ride snapshots like any other
        simulated state.  Returns False when there is nothing to overtake.
        """
        sock = self._bound.get(destination)
        if sock is None or len(sock.queue) < 2:
            return False
        sock.queue.appendleft(sock.queue.pop())
        return True

    # ------------------------------------------------------------------
    # datagram operations
    # ------------------------------------------------------------------
    def sendto(self, fd: int, payload: bytes, destination: int, now: float = 0.0) -> int:
        sock = self._socket(fd)
        if len(payload) > self.MAX_DATAGRAM:
            raise OSFault(Errno.EMSGSIZE, f"{len(payload)} bytes")
        self.sent_count += 1
        datagram = Datagram(
            source=sock.address if sock.address is not None else -1,
            destination=destination,
            payload=bytes(payload),
            sent_at=now,
        )
        for hook in self._delivery_hooks:
            if not hook(datagram):
                self.dropped_count += 1
                return len(payload)  # UDP semantics: sender cannot tell
        target = self._bound.get(destination)
        if target is None:
            # No listener: silently dropped, again matching UDP semantics.
            self.dropped_count += 1
            return len(payload)
        target.queue.append(datagram)
        self.delivered_count += 1
        return len(payload)

    def recvfrom(self, fd: int) -> Tuple[bytes, int]:
        sock = self._socket(fd)
        if not sock.queue:
            raise OSFault(Errno.EAGAIN, "no datagram available")
        datagram = sock.queue.popleft()
        return datagram.payload, datagram.source

    def pending(self, fd: int) -> int:
        return len(self._socket(fd).queue)

    def queue_depths(self) -> Dict[int, int]:
        return {
            sock.address: len(sock.queue)
            for sock in self._sockets.values()
            if sock.address is not None
        }

    def reset_counters(self) -> None:
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0

    # ------------------------------------------------------------------
    # snapshot support (repro.vm.snapshot)
    # ------------------------------------------------------------------
    def capture_state(self) -> dict:
        """Structural copy of every socket, queue, and counter.

        Delivery hooks are observer callables owned by experiments; the hook
        *list* is snapshotted (so hooks registered after the capture are
        dropped on restore) but the callables themselves are shared.
        """
        return {
            "latency": self.latency,
            "next_fd": self._next_fd,
            "sent": self.sent_count,
            "delivered": self.delivered_count,
            "dropped": self.dropped_count,
            "hooks": list(self._delivery_hooks),
            "sockets": {
                fd: (sock.owner, sock.address, list(sock.queue), sock.closed)
                for fd, sock in self._sockets.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        self.latency = state["latency"]
        self._next_fd = state["next_fd"]
        self.sent_count = state["sent"]
        self.delivered_count = state["delivered"]
        self.dropped_count = state["dropped"]
        self._delivery_hooks = list(state["hooks"])
        self._sockets = {}
        self._bound = {}
        for fd, (owner, address, queue, closed) in state["sockets"].items():
            sock = Socket(fd=fd, owner=owner)
            sock.address = address
            sock.queue = deque(queue)  # Datagram is frozen: entries shareable
            sock.closed = closed
            self._sockets[fd] = sock
            if address is not None and not closed:
                self._bound[address] = sock


__all__ = ["Datagram", "SimNetwork", "Socket"]
