"""Pythonic libc facade for the Python-level simulated servers.

The compiled (mini-C) targets call libc through the VM; the larger simulated
servers — MySQL, Apache, the PBFT replicas — are written directly in Python
for tractability, but they must still make **every** environment interaction
through the program/library boundary so LFI can intercept it.  This facade
is that boundary: each method packages the call name and arguments, hands a
thunk performing the real operation to the fault-injection gate, and then
translates the resulting :class:`~repro.oslib.libc.LibcResult` back into a
convenient Python value.

When no gate is installed the facade behaves like an ordinary libc binding,
which is the "baseline (no LFI)" configuration of Tables 5 and 6.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.oslib import fs as fsmod
from repro.oslib.errno_codes import Errno
from repro.oslib.errors import MemoryFault, OSFault
from repro.oslib.libc import F_GETFL, F_GETLK, F_SETFL, F_SETLK, LibcResult, spec_for
from repro.oslib.os_model import SimOS


class _DirectGate:
    """Fallback gate that simply executes the real call (no interception)."""

    def call(
        self,
        name: str,
        args: Tuple[Any, ...],
        invoke: Callable[[], LibcResult],
        context: Optional[Dict[str, Any]] = None,
    ) -> LibcResult:
        return invoke()


class LibcFacade:
    """Route Python-level library calls through the injection gate."""

    def __init__(self, os: SimOS, gate: Optional[Any] = None, node: str = "") -> None:
        self.os = os
        self.gate = gate if gate is not None else _DirectGate()
        self.node = node or os.name
        self._errno: int = 0
        #: Program reads of ``errno`` (the :attr:`errno` property counts
        #: them), mirroring ``SimLibc.errno_reads`` for the VM targets: the
        #: prefix-sharing scheduler uses the counter to prove a suffix never
        #: observed errno, collapsing errno-only fault variants.
        self.errno_reads: int = 0
        self._next_handle = 0x1000
        self._malloc_handles: Dict[int, int] = {}
        self._file_handles: Dict[int, int] = {}
        self._dir_handles: Dict[int, int] = {}

    @property
    def errno(self) -> int:
        self.errno_reads += 1
        return self._errno

    @errno.setter
    def errno(self, value: int) -> None:
        self._errno = int(value)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def set_gate(self, gate: Optional[Any]) -> None:
        self.gate = gate if gate is not None else _DirectGate()

    def _alloc_handle(self) -> int:
        handle = self._next_handle
        self._next_handle += 1
        return handle

    def _call(
        self,
        name: str,
        args: Tuple[Any, ...],
        operation: Callable[[], Tuple[int, Dict[str, Any]]],
        context: Optional[Dict[str, Any]] = None,
    ) -> LibcResult:
        """Invoke *name* through the gate.

        ``operation`` performs the real work and returns ``(value, payload)``;
        OS failures are converted to the C error convention here, mirroring
        what :class:`~repro.oslib.libc.SimLibc` does for compiled programs.
        """
        spec = spec_for(name)

        def invoke() -> LibcResult:
            try:
                value, payload = operation()
                return LibcResult(value=value, errno=None, payload=payload)
            except OSFault as fault:
                if spec.errno_via_return:
                    return LibcResult(value=int(fault.errno), errno=None)
                return LibcResult(value=spec.default_error_value, errno=int(fault.errno))

        call_context = {"node": self.node, "os": self.os}
        if context:
            call_context.update(context)
        result = self.gate.call(name, args, invoke, context=call_context)
        if result.errno is not None:
            self.errno = int(result.errno)
        return result

    # ------------------------------------------------------------------
    # file descriptors
    # ------------------------------------------------------------------
    def open(self, path: str, flags: int = fsmod.O_RDONLY) -> int:
        result = self._call("open", (path, flags), lambda: (self.os.fs.open(path, flags), {}))
        return result.value

    def close(self, fd: int) -> int:
        def operation() -> Tuple[int, Dict[str, Any]]:
            self.os.fs.close(fd)
            return 0, {}

        return self._call("close", (fd,), operation).value

    def read(self, fd: int, count: int) -> Optional[bytes]:
        def operation() -> Tuple[int, Dict[str, Any]]:
            data = self.os.fs.read(fd, count)
            return len(data), {"data": data}

        def partial(clamped: int) -> LibcResult:
            data = self.os.fs.read(fd, clamped)
            return LibcResult(value=len(data), payload={"data": data})

        result = self._call("read", (fd, count), operation, context={"partial_io": partial})
        if result.value < 0:
            return None
        return result.payload.get("data", b"")

    def write(self, fd: int, data: bytes) -> int:
        def partial(clamped: int) -> LibcResult:
            return LibcResult(value=self.os.fs.write(fd, data[:clamped]))

        return self._call(
            "write",
            (fd, len(data)),
            lambda: (self.os.fs.write(fd, data), {}),
            context={"partial_io": partial},
        ).value

    def fstat(self, fd: int) -> Optional[fsmod.Stat]:
        def operation() -> Tuple[int, Dict[str, Any]]:
            return 0, {"stat": self.os.fs.fstat(fd)}

        result = self._call("fstat", (fd,), operation)
        if result.value != 0:
            return None
        return result.payload.get("stat")

    def stat(self, path: str) -> Optional[fsmod.Stat]:
        def operation() -> Tuple[int, Dict[str, Any]]:
            return 0, {"stat": self.os.fs.stat(path)}

        result = self._call("stat", (path, 0), operation)
        if result.value != 0:
            return None
        return result.payload.get("stat")

    def unlink(self, path: str) -> int:
        def operation() -> Tuple[int, Dict[str, Any]]:
            self.os.fs.unlink(path)
            return 0, {}

        return self._call("unlink", (path,), operation).value

    def fcntl(self, fd: int, cmd: int, arg: int = 0) -> int:
        def operation() -> Tuple[int, Dict[str, Any]]:
            if cmd == F_GETFL:
                return self.os.fs.fd_flags(fd), {}
            if cmd == F_SETFL:
                self.os.fs.set_fd_flags(fd, arg)
                return 0, {}
            if cmd in (F_GETLK, F_SETLK):
                if not self.os.fs.descriptor_is_open(fd):
                    raise OSFault(Errno.EBADF, f"fcntl on fd {fd}")
                return 0, {}
            raise OSFault(Errno.EINVAL, f"fcntl cmd {cmd}")

        return self._call("fcntl", (fd, cmd, arg), operation).value

    # ------------------------------------------------------------------
    # stdio-style handles
    # ------------------------------------------------------------------
    def fopen(self, path: str, mode: str = "r") -> int:
        def operation() -> Tuple[int, Dict[str, Any]]:
            flags = fsmod.O_RDONLY
            if "w" in mode:
                flags = fsmod.O_WRONLY | fsmod.O_CREAT | fsmod.O_TRUNC
            elif "a" in mode:
                flags = fsmod.O_WRONLY | fsmod.O_CREAT | fsmod.O_APPEND
            fd = self.os.fs.open(path, flags)
            handle = self._alloc_handle()
            self._file_handles[handle] = fd
            return handle, {}

        return self._call("fopen", (path, mode), operation).value

    def _handle_fd(self, handle: int) -> int:
        if handle == 0:
            # Passing a NULL FILE* to the stdio layer crashes in C; mirror
            # that so unchecked-fopen bugs (PBFT, Table 1) manifest the same
            # way for Python-level targets as for compiled ones.
            raise MemoryFault(0, "FILE* is NULL")
        if handle not in self._file_handles:
            raise OSFault(Errno.EBADF, f"FILE handle {handle}")
        return self._file_handles[handle]

    def fwrite(self, handle: int, data: bytes) -> int:
        def operation() -> Tuple[int, Dict[str, Any]]:
            return self.os.fs.write(self._handle_fd(handle), data), {}

        def partial(clamped: int) -> LibcResult:
            return LibcResult(value=self.os.fs.write(self._handle_fd(handle), data[:clamped]))

        return self._call(
            "fwrite", (0, 1, len(data), handle), operation,
            context={"partial_io": partial},
        ).value

    def fread(self, handle: int, count: int) -> Optional[bytes]:
        def operation() -> Tuple[int, Dict[str, Any]]:
            data = self.os.fs.read(self._handle_fd(handle), count)
            return len(data), {"data": data}

        def partial(clamped: int) -> LibcResult:
            data = self.os.fs.read(self._handle_fd(handle), clamped)
            return LibcResult(value=len(data), payload={"data": data})

        result = self._call(
            "fread", (0, 1, count, handle), operation,
            context={"partial_io": partial},
        )
        if result.value <= 0 and result.injected:
            return None
        return result.payload.get("data", b"")

    def fclose(self, handle: int) -> int:
        def operation() -> Tuple[int, Dict[str, Any]]:
            fd = self._handle_fd(handle)
            self.os.fs.close(fd)
            del self._file_handles[handle]
            return 0, {}

        return self._call("fclose", (handle,), operation).value

    # ------------------------------------------------------------------
    # directories
    # ------------------------------------------------------------------
    def opendir(self, path: str) -> int:
        def operation() -> Tuple[int, Dict[str, Any]]:
            native = self.os.fs.opendir(path)
            handle = self._alloc_handle()
            self._dir_handles[handle] = native
            return handle, {}

        return self._call("opendir", (path,), operation).value

    def readdir(self, handle: int) -> Optional[str]:
        def operation() -> Tuple[int, Dict[str, Any]]:
            if handle not in self._dir_handles:
                raise OSFault(Errno.EBADF, f"DIR handle {handle}")
            name = self.os.fs.readdir(self._dir_handles[handle])
            if name is None:
                return 0, {}
            return 1, {"name": name}

        result = self._call("readdir", (handle,), operation)
        if result.value == 0:
            return None
        return result.payload.get("name")

    def closedir(self, handle: int) -> int:
        def operation() -> Tuple[int, Dict[str, Any]]:
            if handle not in self._dir_handles:
                raise OSFault(Errno.EBADF, f"DIR handle {handle}")
            self.os.fs.closedir(self._dir_handles.pop(handle))
            return 0, {}

        return self._call("closedir", (handle,), operation).value

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def malloc(self, size: int) -> int:
        def operation() -> Tuple[int, Dict[str, Any]]:
            handle = self._alloc_handle()
            self._malloc_handles[handle] = size
            return handle, {}

        return self._call("malloc", (size,), operation).value

    def free(self, handle: int) -> None:
        def operation() -> Tuple[int, Dict[str, Any]]:
            self._malloc_handles.pop(handle, None)
            return 0, {}

        self._call("free", (handle,), operation)

    # ------------------------------------------------------------------
    # environment
    # ------------------------------------------------------------------
    def setenv(self, name: str, value: str, overwrite: bool = True) -> int:
        def operation() -> Tuple[int, Dict[str, Any]]:
            return self.os.env.setenv(name, value, overwrite), {}

        result = self._call("setenv", (name, value, int(overwrite)), operation)
        if result.value != 0:
            self.os.env.record_failed_update(name, value)
        return result.value

    def getenv(self, name: str) -> Optional[str]:
        def operation() -> Tuple[int, Dict[str, Any]]:
            value = self.os.env.getenv(name)
            if value is None:
                return 0, {}
            return 1, {"value": value}

        result = self._call("getenv", (name,), operation)
        if result.value == 0:
            return None
        return result.payload.get("value")

    # ------------------------------------------------------------------
    # sockets
    # ------------------------------------------------------------------
    def socket(self) -> int:
        return self._call("socket", (2, 2, 0), lambda: (self.os.network.socket(owner=self.node), {})).value

    def bind(self, fd: int, address: int) -> int:
        def operation() -> Tuple[int, Dict[str, Any]]:
            self.os.network.bind(fd, address)
            return 0, {}

        return self._call("bind", (fd, address, 0), operation).value

    def sendto(self, fd: int, payload: bytes, destination: int) -> int:
        def operation() -> Tuple[int, Dict[str, Any]]:
            sent = self.os.network.sendto(fd, payload, destination, now=self.os.clock.now)
            return sent, {}

        return self._call(
            "sendto", (fd, len(payload), len(payload), 0, destination, 0), operation
        ).value

    def recvfrom(self, fd: int) -> Optional[Tuple[bytes, int]]:
        def operation() -> Tuple[int, Dict[str, Any]]:
            payload, source = self.os.network.recvfrom(fd)
            return len(payload), {"data": payload, "source": source}

        result = self._call("recvfrom", (fd, 0, 65536, 0, 0, 0), operation)
        if result.value < 0 or "data" not in result.payload:
            return None
        return result.payload["data"], result.payload["source"]

    # ------------------------------------------------------------------
    # threads / sync
    # ------------------------------------------------------------------
    def mutex_lock(self, mutex_id: int) -> int:
        return self._call(
            "pthread_mutex_lock", (mutex_id,), lambda: (self.os.mutexes.lock(mutex_id), {})
        ).value

    def mutex_unlock(self, mutex_id: int) -> int:
        return self._call(
            "pthread_mutex_unlock", (mutex_id,), lambda: (self.os.mutexes.unlock(mutex_id), {})
        ).value

    def pthread_self(self) -> int:
        return self._call("pthread_self", (), lambda: (1, {})).value

    # ------------------------------------------------------------------
    # misc / apr
    # ------------------------------------------------------------------
    def puts(self, text: str) -> int:
        def operation() -> Tuple[int, Dict[str, Any]]:
            self.os.write_stdout(text + "\n")
            return len(text) + 1, {}

        return self._call("puts", (text,), operation).value

    def apr_file_read(self, fd: int, count: int) -> Tuple[int, bytes]:
        def operation() -> Tuple[int, Dict[str, Any]]:
            data = self.os.fs.read(fd, count)
            status = 0 if data or count == 0 else 70008
            return status, {"data": data}

        result = self._call("apr_file_read", (fd, 0, count), operation)
        return result.value, result.payload.get("data", b"")

    def apr_stat(self, path: str) -> Tuple[int, Optional[fsmod.Stat]]:
        def operation() -> Tuple[int, Dict[str, Any]]:
            return 0, {"stat": self.os.fs.stat(path)}

        result = self._call("apr_stat", (0, path, 0, 0), operation)
        return result.value, result.payload.get("stat")


__all__ = ["LibcFacade"]
