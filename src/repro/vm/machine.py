"""The virtual machine executing synthetic binaries.

Calling convention (matching what the mini-C code generator emits):

* arguments are pushed right-to-left, so at the moment of ``call`` the first
  argument sits at ``[sp]``, the second at ``[sp+1]`` and so on;
* the caller removes the arguments after the call (``add sp, argc``);
* the return value is delivered in ``r0``;
* local calls push a return address; library calls (``call @name``) never
  enter synthetic code — the VM reads the arguments straight off the stack,
  routes the call through the fault-injection gate (when installed) and the
  simulated libc, and writes the result into ``r0``, mirroring how the LFI
  stub either injects an error or tail-jumps to the original function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.frames import StackFrame
from repro.isa import layout
from repro.isa.binary import BinaryImage
from repro.isa.instructions import (
    DataRef,
    Imm,
    ImportRef,
    Instruction,
    Label,
    Mem,
    Opcode,
    Reg,
)
from repro.oslib.errors import MemoryFault, MutexAbort, OSFault, SimExit
from repro.oslib.libc import LIBC_FUNCTIONS, LibcResult, SimLibc
from repro.oslib.os_model import SimOS
from repro.vm.memory import Memory
from repro.vm.outcome import ExitKind, ExitStatus

#: Sentinel return address marking the bottom of the call stack.
_RETURN_SENTINEL = -1


class VMError(Exception):
    """An execution error that is the VM's fault rather than the program's."""


@dataclass
class Frame:
    """One activation record, kept for backtraces (call-stack triggers)."""

    function: str
    call_address: Optional[int]
    return_address: int


class Machine:
    """Executes one program image against one simulated OS."""

    def __init__(
        self,
        binary: BinaryImage,
        os: Optional[SimOS] = None,
        libc: Optional[SimLibc] = None,
        gate: Optional[Any] = None,
        coverage: Optional[Any] = None,
        max_steps: int = 5_000_000,
    ) -> None:
        self.binary = binary
        self.os = os if os is not None else SimOS(binary.name)
        self.libc = libc if libc is not None else SimLibc(self.os)
        self.gate = gate
        self.coverage = coverage
        self.max_steps = max_steps

        self.memory = Memory(binary.data_words)
        self.registers: Dict[str, int] = {name: 0 for name in
                                          ("r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "sp", "bp")}
        self.zero_flag = False
        self.sign_flag = False
        self.pc = 0
        self.steps = 0
        self.frames: List[Frame] = []
        self.library_call_counts: Dict[str, int] = {}
        self.trace: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def enable_trace(self) -> None:
        self.trace = []

    def run(self, entry: Optional[str] = None, args: Sequence[int] = ()) -> ExitStatus:
        """Run the program from *entry* until it exits, crashes, or times out."""
        entry_name = entry or self.binary.entry
        try:
            start = self.binary.entry_address(entry_name)
        except KeyError as exc:
            raise VMError(str(exc)) from exc

        self.registers["sp"] = layout.STACK_TOP
        self.registers["bp"] = layout.STACK_TOP
        for value in reversed(list(args)):
            self._push(int(value))
        self._push(_RETURN_SENTINEL)
        self.pc = start
        self.frames = [Frame(function=entry_name, call_address=None, return_address=_RETURN_SENTINEL)]

        try:
            return self._loop()
        except SimExit as exit_request:
            kind = ExitKind.ABORT if exit_request.aborted else (
                ExitKind.NORMAL if exit_request.code == 0 else ExitKind.ERROR_EXIT
            )
            return self._status(kind, code=exit_request.code, reason=exit_request.reason)
        except MutexAbort as abort:
            return self._status(ExitKind.ABORT, code=134, reason=str(abort))
        except MemoryFault as fault:
            return self._status(ExitKind.SEGFAULT, code=139, reason=str(fault))
        except ZeroDivisionError:
            return self._status(ExitKind.SEGFAULT, code=136, reason="division by zero (SIGFPE)")
        except OSFault as fault:
            # An OS fault escaping the libc layer is a VM-level problem.
            return self._status(ExitKind.VM_ERROR, code=70, reason=f"unhandled OS fault: {fault}")

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def _loop(self) -> ExitStatus:
        while True:
            if self.steps >= self.max_steps:
                return self._status(
                    ExitKind.MAX_STEPS, code=124, reason=f"exceeded {self.max_steps} steps"
                )
            if not self.binary.has_address(self.pc):
                return self._status(
                    ExitKind.SEGFAULT, code=139, reason=f"jump outside code segment ({self.pc:#x})"
                )
            instruction = self.binary.instructions[self.pc]
            self.steps += 1
            if self.coverage is not None:
                self.coverage.record(self.pc)
            if self.trace is not None:
                self.trace.append(self.pc)
            finished = self._execute(instruction)
            if finished is not None:
                return finished

    # ------------------------------------------------------------------
    # instruction execution
    # ------------------------------------------------------------------
    def _execute(self, instruction: Instruction) -> Optional[ExitStatus]:
        opcode = instruction.opcode
        operands = instruction.operands

        if opcode is Opcode.NOP:
            self.pc += 1
        elif opcode is Opcode.MOV:
            self._write(operands[0], self._value(operands[1]))
            self.pc += 1
        elif opcode is Opcode.LEA:
            self._write(operands[0], self._address_of(operands[1]))
            self.pc += 1
        elif opcode is Opcode.PUSH:
            self._push(self._value(operands[0]))
            self.pc += 1
        elif opcode is Opcode.POP:
            self._write(operands[0], self._pop())
            self.pc += 1
        elif opcode in _ARITHMETIC:
            self._write(operands[0], _ARITHMETIC[opcode](self._value(operands[0]), self._value(operands[1])))
            self.pc += 1
        elif opcode is Opcode.NEG:
            self._write(operands[0], -self._value(operands[0]))
            self.pc += 1
        elif opcode is Opcode.NOT:
            self._write(operands[0], 0 if self._value(operands[0]) else 1)
            self.pc += 1
        elif opcode is Opcode.CMP:
            difference = self._value(operands[0]) - self._value(operands[1])
            self.zero_flag = difference == 0
            self.sign_flag = difference < 0
            self.pc += 1
        elif opcode is Opcode.TEST:
            value = self._value(operands[0]) & self._value(operands[1])
            self.zero_flag = value == 0
            self.sign_flag = value < 0
            self.pc += 1
        elif opcode is Opcode.JMP:
            self.pc = self._branch_target(operands[0])
        elif opcode.is_conditional_jump:
            if self._condition(opcode):
                self.pc = self._branch_target(operands[0])
            else:
                self.pc += 1
        elif opcode is Opcode.CALL:
            self._call(instruction)
        elif opcode is Opcode.RET:
            return self._ret()
        elif opcode is Opcode.HALT:
            code = self.registers["r0"]
            kind = ExitKind.NORMAL if code == 0 else ExitKind.ERROR_EXIT
            return self._status(kind, code=code)
        else:  # pragma: no cover - defensive
            raise VMError(f"unhandled opcode {opcode}")
        return None

    def _condition(self, opcode: Opcode) -> bool:
        if opcode is Opcode.JE:
            return self.zero_flag
        if opcode is Opcode.JNE:
            return not self.zero_flag
        if opcode is Opcode.JL:
            return self.sign_flag
        if opcode is Opcode.JLE:
            return self.sign_flag or self.zero_flag
        if opcode is Opcode.JG:
            return not self.sign_flag and not self.zero_flag
        if opcode is Opcode.JGE:
            return not self.sign_flag
        raise VMError(f"not a conditional jump: {opcode}")

    # ------------------------------------------------------------------
    # operand helpers
    # ------------------------------------------------------------------
    def _value(self, operand) -> int:
        if isinstance(operand, Reg):
            return self.registers[operand.name]
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, Mem):
            return self.memory.load(self._address_of(operand))
        if isinstance(operand, Label):
            if operand.address is None:
                raise VMError(f"unresolved label {operand.name!r}")
            return operand.address
        if isinstance(operand, DataRef):
            if operand.address is None:
                raise VMError(f"unresolved data symbol {operand.name!r}")
            return operand.address
        raise VMError(f"cannot read operand {operand!r}")

    def _address_of(self, operand) -> int:
        if isinstance(operand, Mem):
            base = self.registers[operand.base] if operand.base is not None else 0
            return base + operand.offset
        if isinstance(operand, DataRef):
            if operand.address is None:
                raise VMError(f"unresolved data symbol {operand.name!r}")
            return operand.address
        raise VMError(f"operand {operand!r} has no address")

    def _write(self, operand, value: int) -> None:
        if isinstance(operand, Reg):
            self.registers[operand.name] = int(value)
            return
        if isinstance(operand, Mem):
            self.memory.store(self._address_of(operand), int(value))
            return
        raise VMError(f"cannot write to operand {operand!r}")

    def _branch_target(self, operand) -> int:
        if isinstance(operand, Label) and operand.address is not None:
            return operand.address
        return self._value(operand)

    def _push(self, value: int) -> None:
        self.registers["sp"] -= 1
        if self.registers["sp"] < layout.STACK_LIMIT:
            raise MemoryFault(self.registers["sp"], "stack overflow")
        self.memory.store(self.registers["sp"], int(value))

    def _pop(self) -> int:
        value = self.memory.load(self.registers["sp"])
        self.registers["sp"] += 1
        return value

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    def _call(self, instruction: Instruction) -> None:
        target = instruction.operands[0]
        if isinstance(target, ImportRef):
            self._library_call(target.name, instruction)
            self.pc += 1
            return
        if isinstance(target, Label):
            if target.address is None:
                raise VMError(f"unresolved call target {target.name!r}")
            self._push(self.pc + 1)
            self.frames.append(
                Frame(function=target.name, call_address=self.pc, return_address=self.pc + 1)
            )
            self.pc = target.address
            return
        raise VMError(f"unsupported call target {target!r}")

    def _ret(self) -> Optional[ExitStatus]:
        return_address = self._pop()
        if return_address == _RETURN_SENTINEL:
            code = self.registers["r0"]
            kind = ExitKind.NORMAL if code == 0 else ExitKind.ERROR_EXIT
            return self._status(kind, code=code)
        if self.frames:
            self.frames.pop()
        self.pc = return_address
        return None

    def _library_call(self, name: str, instruction: Instruction) -> None:
        spec = LIBC_FUNCTIONS.get(name)
        if spec is None:
            raise VMError(f"call to unknown library function {name!r}")
        argc = spec.argc
        sp = self.registers["sp"]
        args: Tuple[int, ...] = tuple(self.memory.load(sp + index) for index in range(argc))
        self.library_call_counts[name] = self.library_call_counts.get(name, 0) + 1

        call_address = self.pc
        invoke: Callable[[], LibcResult] = lambda: self.libc.call(name, args, self.memory)
        apply_fault = lambda return_value, errno: self.libc.apply_injected_fault(
            name, return_value, errno, self.memory
        )
        if self.gate is None:
            result = invoke()
        else:
            context = {
                "node": self.os.name,
                "module": self.binary.name,
                "machine": self,
                "call_address": call_address,
                "source": self.binary.source_of(call_address),
                "stack": lambda: self.backtrace(call_address),
                "state": self.read_program_state,
                "os": self.os,
            }
            result = self.gate.call(name, args, invoke, apply_fault=apply_fault, context=context)
        self.registers["r0"] = int(result.value)

    # ------------------------------------------------------------------
    # introspection used by triggers and reports
    # ------------------------------------------------------------------
    def backtrace(self, call_address: Optional[int] = None) -> List[StackFrame]:
        """Return the current call stack, innermost frame first."""
        frames: List[StackFrame] = []
        address = call_address
        for frame in reversed(self.frames):
            source = self.binary.source_of(address) if address is not None else None
            frames.append(
                StackFrame(
                    module=self.binary.name,
                    function=frame.function,
                    offset=address,
                    file=source.file if source else "",
                    line=source.line if source else None,
                )
            )
            address = frame.call_address
        return frames

    def read_program_state(self, name: str) -> Optional[int]:
        """Read a global variable by symbol name (program state triggers)."""
        address = self.binary.data_symbols.get(name)
        if address is None:
            return None
        return self.memory.peek(address)

    # ------------------------------------------------------------------
    def _status(self, kind: ExitKind, code: int = 0, reason: str = "") -> ExitStatus:
        source = self.binary.source_of(self.pc)
        if kind in (ExitKind.NORMAL, ExitKind.ERROR_EXIT) and self.os.exit_code is None:
            self.os.exit_code = code
        if kind in (ExitKind.SEGFAULT, ExitKind.ABORT):
            self.os.aborted = True
        return ExitStatus(
            kind=kind,
            code=code,
            reason=reason,
            steps=self.steps,
            pc=self.pc,
            source=str(source) if source else "",
            stdout=self.os.stdout_text(),
            stderr=self.os.stderr_text(),
        )


def _signed_div(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("integer division by zero")
    return int(a / b)  # C-style truncation towards zero


def _signed_mod(a: int, b: int) -> int:
    return a - _signed_div(a, b) * b


_ARITHMETIC = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.DIV: _signed_div,
    Opcode.MOD: _signed_mod,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
}


__all__ = ["Frame", "Machine", "VMError"]
