"""The virtual machine executing synthetic binaries.

Calling convention (matching what the mini-C code generator emits):

* arguments are pushed right-to-left, so at the moment of ``call`` the first
  argument sits at ``[sp]``, the second at ``[sp+1]`` and so on;
* the caller removes the arguments after the call (``add sp, argc``);
* the return value is delivered in ``r0``;
* local calls push a return address; library calls (``call @name``) never
  enter synthetic code — the VM reads the arguments straight off the stack,
  routes the call through the fault-injection gate (when installed) and the
  simulated libc, and writes the result into ``r0``, mirroring how the LFI
  stub either injects an error or tail-jumps to the original function.

Two execution engines share this machine state:

* ``engine="compiled"`` (the default) drives an array of per-instruction
  closures predecoded once per image by :mod:`repro.vm.dispatch` — operands
  resolved to register slots, immediates, and precomputed addresses at load
  time.  This is the fast path every campaign and experiment runs on.
* ``engine="reference"`` is the original decode-as-you-go interpreter,
  kept as the behavioural oracle: the differential suite asserts both
  engines produce identical exit status, traces, coverage, and injection
  logs on every program.

A machine is also a reusable *resident*: :mod:`repro.vm.snapshot` captures
and restores its full state (registers, pc/flags, copy-on-write memory,
OS, coverage, gate counters), :meth:`Machine.rebind` re-arms it with a new
gate and coverage tracker for the next fork, and :meth:`Machine.resume`
continues execution from a restored mid-run capture — the substrate of the
forkserver-style campaign execution.
"""

from __future__ import annotations

import os as _os_module
from types import MappingProxyType
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.frames import StackFrame
from repro.isa import layout
from repro.isa.binary import BinaryImage
from repro.isa.instructions import (
    DataRef,
    Imm,
    ImportRef,
    Instruction,
    Label,
    Mem,
    Opcode,
    Reg,
)
from repro.oslib.errors import MemoryFault, MutexAbort, OSFault, SimExit, WorldCrash
from repro.oslib.libc import LIBC_FUNCTIONS, LibcResult, SimLibc
from repro.oslib.os_model import SimOS
from repro.vm.dispatch import (
    ARITHMETIC as _ARITHMETIC,
    Frame,
    R0_SLOT,
    REG_SLOT,
    RETURN_SENTINEL as _RETURN_SENTINEL,
    RegisterFile,
    SP_SLOT,
    VMError,
    compiled_blocks,
    compiled_program,
)
from repro.vm.memory import Memory
from repro.vm.outcome import ExitKind, ExitStatus

#: Sentinel marking "no runtime seen yet" for the handled-import mask cache
#: (the runtime itself may legitimately be ``None``).
_NO_RUNTIME = object()

_ENGINES = ("compiled", "compiled-steps", "reference")


def resolve_engine(engine: Optional[str]) -> str:
    """Resolve an engine request to a concrete engine name.

    ``None`` falls back to the ``REPRO_ENGINE`` environment variable — the
    CI oracle leg runs the whole suite under ``REPRO_ENGINE=reference`` to
    keep the slow paths exercised — and then to the block-batched compiled
    engine.  ``"compiled-steps"`` selects the per-instruction compiled loop
    without superclosure fusion (the PR 5 dataplane baseline, kept both as a
    benchmark yardstick and as a second differential oracle).
    """
    return engine or _os_module.environ.get("REPRO_ENGINE") or "compiled"


class Machine:
    """Executes one program image against one simulated OS."""

    def __init__(
        self,
        binary: BinaryImage,
        os: Optional[SimOS] = None,
        libc: Optional[SimLibc] = None,
        gate: Optional[Any] = None,
        coverage: Optional[Any] = None,
        max_steps: int = 5_000_000,
        engine: Optional[str] = None,
    ) -> None:
        self.binary = binary
        self.os = os if os is not None else SimOS(binary.name)
        self.libc = libc if libc is not None else SimLibc(self.os)
        self.max_steps = max_steps
        self.engine = resolve_engine(engine)
        if self.engine not in _ENGINES:
            raise VMError(
                f"unknown engine {self.engine!r} (expected one of {_ENGINES})"
            )

        self.memory = Memory(binary.data_words)
        #: Fixed-slot register file (see dispatch.REG_SLOT for the layout);
        #: ``registers`` is a name-keyed view over the same slots.
        self.regs: List[int] = [0] * len(REG_SLOT)
        self.registers = RegisterFile(self.regs)
        self.zero_flag = False
        self.sign_flag = False
        self.pc = 0
        self.steps = 0
        self.frames: List[Frame] = []
        self.trace: Optional[List[int]] = None

        # Bound-method caches for the compiled engine's hot path.
        self._mem_load = self.memory.load
        self._mem_store = self.memory.store
        self._program = (
            compiled_program(binary) if self.engine != "reference" else None
        )
        if self.engine == "compiled":
            self._fused, self._lengths = compiled_blocks(binary)
        else:
            self._fused = None
            self._lengths = None
        #: Published by a trapping superclosure: how many of its instructions
        #: executed (including the trapping one) before the exception.
        self._block_executed = 0

        # Library-call bookkeeping.  When a gate with its own per-function
        # counters is installed the VM reads through to it instead of
        # double-counting; only the gate-less (and counter-less custom gate)
        # path counts locally.
        self._local_call_counts: Dict[str, int] = {}
        self.rebind(gate=gate, coverage=coverage)

    def rebind(self, gate: Optional[Any], coverage: Optional[Any]) -> None:
        """Attach a (possibly different) gate and coverage tracker.

        Used by the snapshot engine to reuse one resident machine across
        requests: each restored fork gets its own gate and tracker, and the
        gate-dependent caches (counting mode, fast-path eligibility, the
        handled-import mask) are recomputed here so they can never leak from
        one fork into the next.
        """
        self.gate = gate
        self.coverage = coverage
        gate_counts = getattr(gate, "call_counts", None) if gate is not None else None
        self._count_locally = not isinstance(gate_counts, dict)
        # The interception fast path only applies to the stock gate class:
        # a subclass (or duck-typed stand-in) may override ``call`` and must
        # therefore see every library call.
        self._gate_is_standard = (
            gate is not None and type(gate).__name__ == "LibraryCallGate"
            and type(gate).__module__ == "repro.core.injection.gate"
        )
        #: Handled-import mask: which of this image's imports the currently
        #: installed injection runtime intercepts.  Recomputed only when the
        #: runtime object changes (e.g. ``install_runtime`` between runs).
        self._mask_runtime: Any = _NO_RUNTIME
        self._handled_mask: frozenset = frozenset()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def library_call_counts(self) -> Mapping[str, int]:
        """Per-function library call counts (read-only view).

        Reads through to the gate's counters when a counting gate is
        installed (the gate is the single source of truth for interception
        accounting); falls back to the VM's own counts otherwise.  The view
        is read-only so callers cannot corrupt gate accounting shared
        across the runs of a campaign.
        """
        gate = self.gate
        if gate is not None:
            counts = getattr(gate, "call_counts", None)
            if isinstance(counts, dict):
                return MappingProxyType(counts)
        return MappingProxyType(self._local_call_counts)

    def enable_trace(self) -> None:
        self.trace = []

    def run(self, entry: Optional[str] = None, args: Sequence[int] = ()) -> ExitStatus:
        """Run the program from *entry* until it exits, crashes, or times out."""
        entry_name = entry or self.binary.entry
        try:
            start = self.binary.entry_address(entry_name)
        except KeyError as exc:
            raise VMError(str(exc)) from exc

        self.regs[SP_SLOT] = layout.STACK_TOP
        self.regs[REG_SLOT["bp"]] = layout.STACK_TOP
        for value in reversed(list(args)):
            self._push(int(value))
        self._push(_RETURN_SENTINEL)
        self.pc = start
        self.frames = [Frame(function=entry_name, call_address=None, return_address=_RETURN_SENTINEL)]
        return self._run_to_exit()

    def resume(self) -> ExitStatus:
        """Continue executing from the current machine state until exit.

        The snapshot engine's mid-run resume path: after restoring a
        :class:`~repro.vm.snapshot.MidRunCapture` (registers, pc, frames,
        memory delta) the run picks up exactly where the capture was taken
        — no entry setup, no argument pushing.
        """
        return self._run_to_exit()

    def _run_to_exit(self) -> ExitStatus:
        try:
            if self._fused is not None:
                if self.coverage is None and self.trace is None:
                    # Coverage-off hot loop: no tracker, no trace — the
                    # whole record/append machinery compiles out.
                    return self._loop_blocks_plain()
                if self.coverage is None or hasattr(self.coverage, "record_block"):
                    return self._loop_blocks_instrumented()
                # Duck-typed tracker without the batch-record API: fall
                # back to the per-step loop so it sees every instruction.
                return self._loop_compiled()
            if self._program is not None:
                return self._loop_compiled()
            return self._loop()
        except SimExit as exit_request:
            kind = ExitKind.ABORT if exit_request.aborted else (
                ExitKind.NORMAL if exit_request.code == 0 else ExitKind.ERROR_EXIT
            )
            return self._status(kind, code=exit_request.code, reason=exit_request.reason)
        except MutexAbort as abort:
            return self._status(ExitKind.ABORT, code=134, reason=str(abort))
        except MemoryFault as fault:
            return self._status(ExitKind.SEGFAULT, code=139, reason=str(fault))
        except ZeroDivisionError:
            return self._status(ExitKind.SEGFAULT, code=136, reason="division by zero (SIGFPE)")
        except WorldCrash as crash:
            # Crash-consistency injection: the world was killed mid-call.
            # 137 = SIGKILL; the simulated fs keeps whatever (possibly torn)
            # state it had, ready for a recovery replay.
            return self._status(ExitKind.WORLD_CRASH, code=137, reason=str(crash))
        except OSFault as fault:
            # An OS fault escaping the libc layer is a VM-level problem.
            return self._status(ExitKind.VM_ERROR, code=70, reason=f"unhandled OS fault: {fault}")

    # ------------------------------------------------------------------
    # block-batched main loops (superclosure dispatch)
    # ------------------------------------------------------------------
    def _loop_blocks_plain(self) -> ExitStatus:
        """Coverage-off hot loop: whole basic blocks per dispatch, no
        record/trace branches anywhere.  This is what campaign runs without
        a tracker — including every prefix replica — execute on."""
        program = self._program
        fused = self._fused
        lengths = self._lengths
        size = len(program)
        max_steps = self.max_steps
        pc = self.pc
        steps = self.steps
        try:
            while True:
                if steps >= max_steps:
                    self.pc = pc
                    self.steps = steps
                    return self._status(
                        ExitKind.MAX_STEPS, code=124, reason=f"exceeded {max_steps} steps"
                    )
                if pc < 0 or pc >= size:
                    self.pc = pc
                    self.steps = steps
                    return self._status(
                        ExitKind.SEGFAULT, code=139,
                        reason=f"jump outside code segment ({pc:#x})",
                    )
                fn = fused[pc]
                if fn is not None:
                    length = lengths[pc]
                    if steps + length <= max_steps:
                        self.pc = pc
                        try:
                            pc = fn(self)
                        except BaseException:
                            # The superclosure published pc/_block_executed
                            # for the instructions that actually ran.
                            steps += self._block_executed
                            raise
                        steps += length
                        continue
                    # Budget expires inside this block: drain it on the
                    # per-instruction path so MAX_STEPS lands exactly where
                    # the oracle would put it.
                self.pc = pc
                steps += 1
                self.steps = steps
                result = program[pc](self)
                if type(result) is int:
                    pc = result
                    continue
                kind, code, reason = result
                return self._status(kind, code=code, reason=reason)
        finally:
            self.steps = steps

    def _loop_blocks_instrumented(self) -> ExitStatus:
        """Block-batched loop with coverage/trace: one ``record_block`` (and
        one trace extend) per superclosure instead of per instruction."""
        program = self._program
        fused = self._fused
        lengths = self._lengths
        size = len(program)
        max_steps = self.max_steps
        coverage = self.coverage
        record = coverage.record if coverage is not None else None
        record_block = coverage.record_block if coverage is not None else None
        if coverage is not None:
            reserve = getattr(coverage, "reserve", None)
            if reserve is not None:
                reserve(size)
        trace = self.trace
        append = trace.append if trace is not None else None
        pc = self.pc
        steps = self.steps
        try:
            while True:
                if steps >= max_steps:
                    self.pc = pc
                    self.steps = steps
                    return self._status(
                        ExitKind.MAX_STEPS, code=124, reason=f"exceeded {max_steps} steps"
                    )
                if pc < 0 or pc >= size:
                    self.pc = pc
                    self.steps = steps
                    return self._status(
                        ExitKind.SEGFAULT, code=139,
                        reason=f"jump outside code segment ({pc:#x})",
                    )
                fn = fused[pc]
                if fn is not None:
                    length = lengths[pc]
                    if steps + length <= max_steps:
                        self.pc = pc
                        try:
                            next_pc = fn(self)
                        except BaseException:
                            executed = self._block_executed
                            steps += executed
                            if record_block is not None:
                                record_block(pc, executed)
                            if append is not None:
                                trace.extend(range(pc, pc + executed))
                            raise
                        steps += length
                        if record_block is not None:
                            record_block(pc, length)
                        if append is not None:
                            trace.extend(range(pc, pc + length))
                        pc = next_pc
                        continue
                self.pc = pc
                steps += 1
                self.steps = steps
                if record is not None:
                    record(pc)
                if append is not None:
                    append(pc)
                result = program[pc](self)
                if type(result) is int:
                    pc = result
                    continue
                kind, code, reason = result
                return self._status(kind, code=code, reason=reason)
        finally:
            self.steps = steps

    # ------------------------------------------------------------------
    # compiled main loop (per-step closure-threaded dispatch)
    # ------------------------------------------------------------------
    def _loop_compiled(self) -> ExitStatus:
        program = self._program
        size = len(program)
        max_steps = self.max_steps
        coverage = self.coverage
        record = coverage.record if coverage is not None else None
        if record is not None:
            reserve = getattr(coverage, "reserve", None)
            if reserve is not None:
                reserve(size)
        trace = self.trace
        append = trace.append if trace is not None else None
        pc = self.pc
        steps = self.steps
        try:
            while True:
                self.pc = pc
                if steps >= max_steps:
                    self.steps = steps
                    return self._status(
                        ExitKind.MAX_STEPS, code=124, reason=f"exceeded {max_steps} steps"
                    )
                if pc < 0 or pc >= size:
                    self.steps = steps
                    return self._status(
                        ExitKind.SEGFAULT, code=139,
                        reason=f"jump outside code segment ({pc:#x})",
                    )
                steps += 1
                # Mirrored into the instance (like ``pc`` above) so a
                # mid-run snapshot taken inside a library call sees the
                # true executed-instruction count.
                self.steps = steps
                if record is not None:
                    record(pc)
                if append is not None:
                    append(pc)
                result = program[pc](self)
                if type(result) is int:
                    pc = result
                    continue
                self.steps = steps
                kind, code, reason = result
                return self._status(kind, code=code, reason=reason)
        finally:
            # Traps (memory faults, SimExit, ...) unwind through here before
            # run()'s handlers build the final status from machine state.
            self.steps = steps

    # ------------------------------------------------------------------
    # reference main loop (decode-as-you-go oracle)
    # ------------------------------------------------------------------
    def _loop(self) -> ExitStatus:
        while True:
            if self.steps >= self.max_steps:
                return self._status(
                    ExitKind.MAX_STEPS, code=124, reason=f"exceeded {self.max_steps} steps"
                )
            if not self.binary.has_address(self.pc):
                return self._status(
                    ExitKind.SEGFAULT, code=139, reason=f"jump outside code segment ({self.pc:#x})"
                )
            instruction = self.binary.instructions[self.pc]
            self.steps += 1
            if self.coverage is not None:
                self.coverage.record(self.pc)
            if self.trace is not None:
                self.trace.append(self.pc)
            finished = self._execute(instruction)
            if finished is not None:
                return finished

    # ------------------------------------------------------------------
    # instruction execution (reference engine)
    # ------------------------------------------------------------------
    def _execute(self, instruction: Instruction) -> Optional[ExitStatus]:
        opcode = instruction.opcode
        operands = instruction.operands

        if opcode is Opcode.NOP:
            self.pc += 1
        elif opcode is Opcode.MOV:
            self._write(operands[0], self._value(operands[1]))
            self.pc += 1
        elif opcode is Opcode.LEA:
            self._write(operands[0], self._address_of(operands[1]))
            self.pc += 1
        elif opcode is Opcode.PUSH:
            self._push(self._value(operands[0]))
            self.pc += 1
        elif opcode is Opcode.POP:
            self._write(operands[0], self._pop())
            self.pc += 1
        elif opcode in _ARITHMETIC:
            self._write(operands[0], _ARITHMETIC[opcode](self._value(operands[0]), self._value(operands[1])))
            self.pc += 1
        elif opcode is Opcode.NEG:
            self._write(operands[0], -self._value(operands[0]))
            self.pc += 1
        elif opcode is Opcode.NOT:
            self._write(operands[0], 0 if self._value(operands[0]) else 1)
            self.pc += 1
        elif opcode is Opcode.CMP:
            difference = self._value(operands[0]) - self._value(operands[1])
            self.zero_flag = difference == 0
            self.sign_flag = difference < 0
            self.pc += 1
        elif opcode is Opcode.TEST:
            value = self._value(operands[0]) & self._value(operands[1])
            self.zero_flag = value == 0
            self.sign_flag = value < 0
            self.pc += 1
        elif opcode is Opcode.JMP:
            self.pc = self._branch_target(operands[0])
        elif opcode.is_conditional_jump:
            if self._condition(opcode):
                self.pc = self._branch_target(operands[0])
            else:
                self.pc += 1
        elif opcode is Opcode.CALL:
            self._call(instruction)
        elif opcode is Opcode.RET:
            return self._ret()
        elif opcode is Opcode.HALT:
            code = self.regs[R0_SLOT]
            kind = ExitKind.NORMAL if code == 0 else ExitKind.ERROR_EXIT
            return self._status(kind, code=code)
        else:  # pragma: no cover - defensive
            raise VMError(f"unhandled opcode {opcode}")
        return None

    def _condition(self, opcode: Opcode) -> bool:
        if opcode is Opcode.JE:
            return self.zero_flag
        if opcode is Opcode.JNE:
            return not self.zero_flag
        if opcode is Opcode.JL:
            return self.sign_flag
        if opcode is Opcode.JLE:
            return self.sign_flag or self.zero_flag
        if opcode is Opcode.JG:
            return not self.sign_flag and not self.zero_flag
        if opcode is Opcode.JGE:
            return not self.sign_flag
        raise VMError(f"not a conditional jump: {opcode}")

    # ------------------------------------------------------------------
    # operand helpers (reference engine)
    # ------------------------------------------------------------------
    def _value(self, operand) -> int:
        if isinstance(operand, Reg):
            return self.regs[REG_SLOT[operand.name]]
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, Mem):
            address = self._address_of(operand)
            if address == layout.ERRNO_ADDRESS:
                self.libc.errno_reads += 1
            return self.memory.load(address)
        if isinstance(operand, Label):
            if operand.address is None:
                raise VMError(f"unresolved label {operand.name!r}")
            return operand.address
        if isinstance(operand, DataRef):
            if operand.address is None:
                raise VMError(f"unresolved data symbol {operand.name!r}")
            return operand.address
        raise VMError(f"cannot read operand {operand!r}")

    def _address_of(self, operand) -> int:
        if isinstance(operand, Mem):
            base = self.regs[REG_SLOT[operand.base]] if operand.base is not None else 0
            return base + operand.offset
        if isinstance(operand, DataRef):
            if operand.address is None:
                raise VMError(f"unresolved data symbol {operand.name!r}")
            return operand.address
        raise VMError(f"operand {operand!r} has no address")

    def _write(self, operand, value: int) -> None:
        if isinstance(operand, Reg):
            self.regs[REG_SLOT[operand.name]] = int(value)
            return
        if isinstance(operand, Mem):
            self.memory.store(self._address_of(operand), int(value))
            return
        raise VMError(f"cannot write to operand {operand!r}")

    def _branch_target(self, operand) -> int:
        if isinstance(operand, Label) and operand.address is not None:
            return operand.address
        return self._value(operand)

    def _push(self, value: int) -> None:
        sp = self.regs[SP_SLOT] - 1
        self.regs[SP_SLOT] = sp
        if sp < layout.STACK_LIMIT:
            raise MemoryFault(sp, "stack overflow")
        self.memory.store(sp, int(value))

    def _pop(self) -> int:
        sp = self.regs[SP_SLOT]
        value = self.memory.load(sp)
        self.regs[SP_SLOT] = sp + 1
        return value

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    def _call(self, instruction: Instruction) -> None:
        target = instruction.operands[0]
        if isinstance(target, ImportRef):
            self._library_call(target.name)
            self.pc += 1
            return
        if isinstance(target, Label):
            if target.address is None:
                raise VMError(f"unresolved call target {target.name!r}")
            self._push(self.pc + 1)
            self.frames.append(
                Frame(function=target.name, call_address=self.pc, return_address=self.pc + 1)
            )
            self.pc = target.address
            return
        raise VMError(f"unsupported call target {target!r}")

    def _ret(self) -> Optional[ExitStatus]:
        return_address = self._pop()
        if return_address == _RETURN_SENTINEL:
            code = self.regs[R0_SLOT]
            kind = ExitKind.NORMAL if code == 0 else ExitKind.ERROR_EXIT
            return self._status(kind, code=code)
        if self.frames:
            self.frames.pop()
        self.pc = return_address
        return None

    def _library_call(self, name: str) -> None:
        spec = LIBC_FUNCTIONS.get(name)
        if spec is None:
            raise VMError(f"call to unknown library function {name!r}")
        sp = self.regs[SP_SLOT]
        args: Tuple[int, ...] = tuple(
            self.memory.load(sp + index) for index in range(spec.argc)
        )
        if self.gate is None:
            counts = self._local_call_counts
            counts[name] = counts.get(name, 0) + 1
            result = self.libc.call(name, args, self.memory)
        else:
            result = self._gated_library_call(name, args, self.pc)
        self.regs[R0_SLOT] = int(result.value)

    def _refresh_handled_mask(self, runtime: Any) -> frozenset:
        """Recompute which of this image's imports *runtime* intercepts."""
        self._mask_runtime = runtime
        if runtime is None:
            self._handled_mask = frozenset()
        else:
            called = getattr(self.binary, "_import_call_names", None)
            if called is None:
                called = frozenset(self.binary.imports)
            intercepted = getattr(runtime, "intercepted_functions", None)
            if intercepted is None:
                # Duck-typed runtime exposing only handles()/decide(): treat
                # every import as handled so each call takes the full gate
                # path, exactly as the reference engine would route it.
                self._handled_mask = called
            else:
                self._handled_mask = frozenset(intercepted()) & called
        return self._handled_mask

    def _gated_library_call(self, name: str, args: Tuple[int, ...], call_address: int) -> LibcResult:
        """Route one library call through the installed gate (slow path)."""
        if self._count_locally:
            counts = self._local_call_counts
            counts[name] = counts.get(name, 0) + 1
        libc = self.libc
        memory = self.memory
        invoke = lambda: libc.call(name, args, memory)
        apply_fault = lambda return_value, errno: libc.apply_injected_fault(
            name, return_value, errno, memory
        )
        context = {
            "node": self.os.name,
            "module": self.binary.name,
            "machine": self,
            "call_address": call_address,
            "source": self.binary.source_of(call_address),
            "stack": lambda: self.backtrace(call_address),
            "state": self.read_program_state,
            "os": self.os,
        }
        return self.gate.call(name, args, invoke, apply_fault=apply_fault, context=context)

    # ------------------------------------------------------------------
    # introspection used by triggers and reports
    # ------------------------------------------------------------------
    def backtrace(self, call_address: Optional[int] = None) -> List[StackFrame]:
        """Return the current call stack, innermost frame first."""
        frames: List[StackFrame] = []
        address = call_address
        for frame in reversed(self.frames):
            source = self.binary.source_of(address) if address is not None else None
            frames.append(
                StackFrame(
                    module=self.binary.name,
                    function=frame.function,
                    offset=address,
                    file=source.file if source else "",
                    line=source.line if source else None,
                )
            )
            address = frame.call_address
        return frames

    def read_program_state(self, name: str) -> Optional[int]:
        """Read a global variable by symbol name (program state triggers)."""
        address = self.binary.data_symbols.get(name)
        if address is None:
            return None
        return self.memory.peek(address)

    # ------------------------------------------------------------------
    def _status(self, kind: ExitKind, code: int = 0, reason: str = "") -> ExitStatus:
        source = self.binary.source_of(self.pc)
        if kind in (ExitKind.NORMAL, ExitKind.ERROR_EXIT) and self.os.exit_code is None:
            self.os.exit_code = code
        if kind in (ExitKind.SEGFAULT, ExitKind.ABORT):
            self.os.aborted = True
        return ExitStatus(
            kind=kind,
            code=code,
            reason=reason,
            steps=self.steps,
            pc=self.pc,
            source=str(source) if source else "",
            stdout=self.os.stdout_text(),
            stderr=self.os.stderr_text(),
        )


__all__ = ["Frame", "Machine", "VMError", "resolve_engine"]
