"""Virtual machine that executes synthetic binaries.

The VM plays the role of the hardware + dynamic loader in the paper's
setting: it runs target programs compiled to the synthetic ISA, routes every
``call @libfunc`` through the fault-injection gate (the LD_PRELOAD shim
analog), keeps the call stack that call-stack triggers inspect, mirrors
``errno`` into program-visible memory, and turns invalid memory accesses,
aborts and explicit exits into the process outcomes that the LFI controller
monitors (normal exit, crash, abort).
"""

from repro.vm.machine import Machine
from repro.vm.memory import Memory
from repro.vm.outcome import ExitKind, ExitStatus

__all__ = ["ExitKind", "ExitStatus", "Machine", "Memory"]
