"""Virtual machine that executes synthetic binaries.

The VM plays the role of the hardware + dynamic loader in the paper's
setting: it runs target programs compiled to the synthetic ISA, routes every
``call @libfunc`` through the fault-injection gate (the LD_PRELOAD shim
analog), keeps the call stack that call-stack triggers inspect, mirrors
``errno`` into program-visible memory, and turns invalid memory accesses,
aborts and explicit exits into the process outcomes that the LFI controller
monitors (normal exit, crash, abort).

Execution engines: ``Machine(..., engine="compiled")`` (the default) runs a
program predecoded by :mod:`repro.vm.dispatch` into an array of
per-instruction closures, cached on the image so campaigns compile each
binary once per process; ``engine="reference"`` is the original interpreter
kept as a behavioural oracle for differential testing.

Snapshot/restore: :mod:`repro.vm.snapshot` adds forkserver-style execution
on top — :class:`MachineSnapshot` captures full run state (registers, pc,
flags, copy-on-write memory, OS, coverage, gate counters) and restores it
in O(dirty words), and :class:`BootTemplate` keeps a resident machine whose
boot snapshot replaces per-request target rebuilds.
"""

from repro.vm.dispatch import (
    RegisterFile,
    compile_blocks,
    compile_program,
    compiled_blocks,
    compiled_program,
)
from repro.vm.machine import Frame, Machine, VMError, resolve_engine
from repro.vm.memory import Memory
from repro.vm.outcome import ExitKind, ExitStatus
from repro.vm.snapshot import (
    BootTemplate,
    MachineSnapshot,
    MidRunCapture,
    capture_gate_state,
    graft_gate_state,
)

__all__ = [
    "BootTemplate",
    "ExitKind",
    "ExitStatus",
    "Frame",
    "Machine",
    "MachineSnapshot",
    "Memory",
    "MidRunCapture",
    "RegisterFile",
    "VMError",
    "capture_gate_state",
    "compile_blocks",
    "compile_program",
    "compiled_blocks",
    "compiled_program",
    "graft_gate_state",
    "resolve_engine",
]
