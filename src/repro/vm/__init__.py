"""Virtual machine that executes synthetic binaries.

The VM plays the role of the hardware + dynamic loader in the paper's
setting: it runs target programs compiled to the synthetic ISA, routes every
``call @libfunc`` through the fault-injection gate (the LD_PRELOAD shim
analog), keeps the call stack that call-stack triggers inspect, mirrors
``errno`` into program-visible memory, and turns invalid memory accesses,
aborts and explicit exits into the process outcomes that the LFI controller
monitors (normal exit, crash, abort).

Execution engines: ``Machine(..., engine="compiled")`` (the default) runs a
program predecoded by :mod:`repro.vm.dispatch` into an array of
per-instruction closures, cached on the image so campaigns compile each
binary once per process; ``engine="reference"`` is the original interpreter
kept as a behavioural oracle for differential testing.
"""

from repro.vm.dispatch import RegisterFile, compile_program, compiled_program
from repro.vm.machine import Frame, Machine, VMError
from repro.vm.memory import Memory
from repro.vm.outcome import ExitKind, ExitStatus

__all__ = [
    "ExitKind",
    "ExitStatus",
    "Frame",
    "Machine",
    "Memory",
    "RegisterFile",
    "VMError",
    "compile_program",
    "compiled_program",
]
