"""Predecoded, closure-threaded execution engine for the VM.

The reference interpreter in :mod:`repro.vm.machine` re-decodes every
instruction on every step: an ``isinstance`` chain per operand and an
opcode if/elif ladder per instruction.  That decode cost is pure overhead —
the instruction stream never changes after the assembler lays it out — and
it is the throughput ceiling for everything built on top of the VM: the
parallel campaign executor, the fault-space exploration engine, and the
overhead experiments all schedule thousands of runs through :class:`Machine`.

This module removes the per-step decode by compiling each
:class:`~repro.isa.instructions.Instruction` **once, at load time**, into a
specialized Python closure:

* register operands become list-slot indices (``m.regs[3]``),
* immediates, resolved labels, and data symbols become captured constants,
* the fall-through program counter is folded in as ``addr + 1``,
* arithmetic is bound to a concrete operator at compile time, and
* library calls capture their callee name and arity, so the interception
  fast path can skip context/lambda construction entirely when no
  injection runtime handles the function.

A compiled step closure receives the machine and returns either the next
program counter (an ``int``) or an **exit triple** ``(ExitKind, code,
reason)``; traps (memory faults, division by zero, ``SimExit``) still
propagate as exceptions, exactly as in the reference engine.

The compiled program is cached on the :class:`~repro.isa.binary.BinaryImage`
itself (:func:`compiled_program`), so images shared through the process-wide
artifact cache or :class:`~repro.targets.base.CompiledTarget`'s binary cache
are compiled once per process no matter how many runs a campaign schedules.

Behavioural contract: a compiled program must be **observably identical** to
the reference interpreter — same :class:`~repro.vm.outcome.ExitStatus`
(including step counts and fault reasons), same trace, coverage, library
call counts, and injection log.  ``tests/test_vm_dispatch.py`` enforces this
differentially, including on randomly generated mini-C programs.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple, Union

from repro.isa import layout
from repro.isa.binary import BinaryImage
from repro.isa.instructions import (
    DataRef,
    Imm,
    ImportRef,
    Instruction,
    Label,
    Mem,
    Opcode,
    Reg,
)
from repro.oslib.errors import MemoryFault
from repro.oslib.libc import LIBC_FUNCTIONS
from repro.vm.outcome import ExitKind

#: Register file layout: a fixed list of slots replaces the name-keyed dict.
REGISTER_NAMES: Tuple[str, ...] = (
    "r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "sp", "bp",
)
REG_SLOT = {name: slot for slot, name in enumerate(REGISTER_NAMES)}
R0_SLOT = REG_SLOT["r0"]
SP_SLOT = REG_SLOT["sp"]
BP_SLOT = REG_SLOT["bp"]

#: Sentinel return address marking the bottom of the call stack.
RETURN_SENTINEL = -1

_STACK_LIMIT = layout.STACK_LIMIT

#: What a compiled step returns: the next pc, or an (kind, code, reason)
#: exit triple the main loop turns into an ExitStatus.
ExitTriple = Tuple[ExitKind, int, str]
StepFn = Callable[[Any], Union[int, ExitTriple]]


class VMError(Exception):
    """An execution error that is the VM's fault rather than the program's."""


@dataclass
class Frame:
    """One activation record, kept for backtraces (call-stack triggers)."""

    function: str
    call_address: Optional[int]
    return_address: int


class RegisterFile:
    """Dict-like view over a machine's slot-indexed register list.

    Kept for API compatibility with the old ``Dict[str, int]`` register
    file: reads and writes go straight through to the underlying slots.
    """

    __slots__ = ("_slots",)

    def __init__(self, slots: List[int]) -> None:
        self._slots = slots

    def __getitem__(self, name: str) -> int:
        return self._slots[REG_SLOT[name]]

    def __setitem__(self, name: str, value: int) -> None:
        self._slots[REG_SLOT[name]] = int(value)

    def __contains__(self, name: object) -> bool:
        return name in REG_SLOT

    def __iter__(self):
        return iter(REGISTER_NAMES)

    def __len__(self) -> int:
        return len(REGISTER_NAMES)

    def keys(self) -> Tuple[str, ...]:
        return REGISTER_NAMES

    def values(self) -> List[int]:
        return list(self._slots)

    def items(self) -> List[Tuple[str, int]]:
        slots = self._slots
        return [(name, slots[REG_SLOT[name]]) for name in REGISTER_NAMES]

    def as_dict(self) -> dict:
        return dict(self.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegisterFile({self.as_dict()})"


def _signed_div(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("integer division by zero")
    return int(a / b)  # C-style truncation towards zero


def _signed_mod(a: int, b: int) -> int:
    return a - _signed_div(a, b) * b


ARITHMETIC = {
    Opcode.ADD: operator.add,
    Opcode.SUB: operator.sub,
    Opcode.MUL: operator.mul,
    Opcode.DIV: _signed_div,
    Opcode.MOD: _signed_mod,
    Opcode.AND: operator.and_,
    Opcode.OR: operator.or_,
    Opcode.XOR: operator.xor,
}


# ----------------------------------------------------------------------
# operand compilation
# ----------------------------------------------------------------------
def _raiser(message: str) -> StepFn:
    """A step/reader that defers an error to execution time.

    The reference interpreter only reports unresolved operands or unknown
    callees when the instruction actually executes; compiling them into
    raising closures preserves that behaviour for dead code.
    """

    def raise_error(m, *_ignored):
        raise VMError(message)

    return raise_error


def _compile_reader(op) -> Callable[[Any], int]:
    """Compile an operand into a value reader (the `_value` analog)."""
    if isinstance(op, Reg):
        slot = REG_SLOT[op.name]
        return lambda m: m.regs[slot]
    if isinstance(op, Imm):
        value = op.value
        return lambda m: value
    if isinstance(op, Mem):
        if op.base is None:
            address = op.offset
            if address == layout.ERRNO_ADDRESS:
                # Specialized at predecode time, so the errno-read counter
                # (see SimLibc.errno_reads) costs nothing on any other load.
                def read_errno(m):
                    m.libc.errno_reads += 1
                    return m._mem_load(address)

                return read_errno
            return lambda m: m._mem_load(address)
        base = REG_SLOT[op.base]
        offset = op.offset
        if offset:
            return lambda m: m._mem_load(m.regs[base] + offset)
        return lambda m: m._mem_load(m.regs[base])
    if isinstance(op, Label):
        if op.address is None:
            return _raiser(f"unresolved label {op.name!r}")
        address = op.address
        return lambda m: address
    if isinstance(op, DataRef):
        if op.address is None:
            return _raiser(f"unresolved data symbol {op.name!r}")
        address = op.address
        return lambda m: address
    return _raiser(f"cannot read operand {op!r}")


def _compile_address(op) -> Callable[[Any], int]:
    """Compile an operand into an address reader (the `_address_of` analog)."""
    if isinstance(op, Mem):
        if op.base is None:
            offset = op.offset
            return lambda m: offset
        base = REG_SLOT[op.base]
        offset = op.offset
        if offset:
            return lambda m: m.regs[base] + offset
        return lambda m: m.regs[base]
    if isinstance(op, DataRef):
        if op.address is None:
            return _raiser(f"unresolved data symbol {op.name!r}")
        address = op.address
        return lambda m: address
    return _raiser(f"operand {op!r} has no address")


def _compile_writer(op) -> Callable[[Any, int], None]:
    """Compile an operand into a value writer (the `_write` analog)."""
    if isinstance(op, Reg):
        slot = REG_SLOT[op.name]

        def write_reg(m, value):
            m.regs[slot] = value

        return write_reg
    if isinstance(op, Mem):
        address_of = _compile_address(op)

        def write_mem(m, value):
            m._mem_store(address_of(m), value)

        return write_mem
    return _raiser(f"cannot write to operand {op!r}")


def _branch_reader(op) -> Callable[[Any], int]:
    """Compile a branch-target operand (resolved labels fold to constants)."""
    if isinstance(op, Label) and op.address is not None:
        address = op.address
        return lambda m: address
    return _compile_reader(op)


# ----------------------------------------------------------------------
# per-opcode compilation
# ----------------------------------------------------------------------
def _compile_mov(ins: Instruction, next_pc: int) -> StepFn:
    dst, src = ins.operands[0], ins.operands[1]
    if isinstance(dst, Reg):
        d = REG_SLOT[dst.name]
        if isinstance(src, Imm):
            value = src.value

            def mov_ri(m):
                m.regs[d] = value
                return next_pc

            return mov_ri
        if isinstance(src, Reg):
            s = REG_SLOT[src.name]

            def mov_rr(m):
                regs = m.regs
                regs[d] = regs[s]
                return next_pc

            return mov_rr
        if isinstance(src, Mem) and src.base is not None:
            base = REG_SLOT[src.base]
            offset = src.offset

            def mov_rm(m):
                regs = m.regs
                regs[d] = m._mem_load(regs[base] + offset)
                return next_pc

            return mov_rm
        read = _compile_reader(src)

        def mov_rx(m):
            m.regs[d] = read(m)
            return next_pc

        return mov_rx
    if isinstance(dst, Mem):
        read = _compile_reader(src)
        if dst.base is not None:
            base = REG_SLOT[dst.base]
            offset = dst.offset

            def mov_mx(m):
                value = read(m)
                m._mem_store(m.regs[base] + offset, value)
                return next_pc

            return mov_mx
        address = dst.offset

        def mov_ax(m):
            m._mem_store(address, read(m))
            return next_pc

        return mov_ax
    return _raiser(f"cannot write to operand {dst!r}")


def _compile_lea(ins: Instruction, next_pc: int) -> StepFn:
    dst, src = ins.operands[0], ins.operands[1]
    address_of = _compile_address(src)
    if isinstance(dst, Reg):
        d = REG_SLOT[dst.name]

        def lea_r(m):
            m.regs[d] = address_of(m)
            return next_pc

        return lea_r
    write = _compile_writer(dst)

    def lea_x(m):
        write(m, address_of(m))
        return next_pc

    return lea_x


def _compile_push(ins: Instruction, next_pc: int) -> StepFn:
    src = ins.operands[0]
    if isinstance(src, Imm):
        value = src.value

        def push_imm(m):
            regs = m.regs
            sp = regs[SP_SLOT] - 1
            regs[SP_SLOT] = sp
            if sp < _STACK_LIMIT:
                raise MemoryFault(sp, "stack overflow")
            m._mem_store(sp, value)
            return next_pc

        return push_imm
    if isinstance(src, Reg):
        s = REG_SLOT[src.name]

        def push_reg(m):
            regs = m.regs
            value = regs[s]
            sp = regs[SP_SLOT] - 1
            regs[SP_SLOT] = sp
            if sp < _STACK_LIMIT:
                raise MemoryFault(sp, "stack overflow")
            m._mem_store(sp, value)
            return next_pc

        return push_reg
    read = _compile_reader(src)

    def push_x(m):
        value = read(m)
        regs = m.regs
        sp = regs[SP_SLOT] - 1
        regs[SP_SLOT] = sp
        if sp < _STACK_LIMIT:
            raise MemoryFault(sp, "stack overflow")
        m._mem_store(sp, value)
        return next_pc

    return push_x


def _compile_pop(ins: Instruction, next_pc: int) -> StepFn:
    dst = ins.operands[0]
    if isinstance(dst, Reg):
        d = REG_SLOT[dst.name]

        def pop_reg(m):
            regs = m.regs
            sp = regs[SP_SLOT]
            value = m._mem_load(sp)
            regs[SP_SLOT] = sp + 1
            regs[d] = value
            return next_pc

        return pop_reg
    write = _compile_writer(dst)

    def pop_x(m):
        regs = m.regs
        sp = regs[SP_SLOT]
        value = m._mem_load(sp)
        regs[SP_SLOT] = sp + 1
        write(m, value)
        return next_pc

    return pop_x


def _compile_arithmetic(ins: Instruction, next_pc: int) -> StepFn:
    opcode = ins.opcode
    dst, src = ins.operands[0], ins.operands[1]
    if isinstance(dst, Reg):
        d = REG_SLOT[dst.name]
        if opcode is Opcode.ADD and isinstance(src, Imm):
            value = src.value

            def add_ri(m):
                m.regs[d] += value
                return next_pc

            return add_ri
        if opcode is Opcode.SUB and isinstance(src, Imm):
            value = src.value

            def sub_ri(m):
                m.regs[d] -= value
                return next_pc

            return sub_ri
        apply = ARITHMETIC[opcode]
        if isinstance(src, Reg):
            s = REG_SLOT[src.name]

            def arith_rr(m):
                regs = m.regs
                regs[d] = apply(regs[d], regs[s])
                return next_pc

            return arith_rr
        read = _compile_reader(src)

        def arith_rx(m):
            regs = m.regs
            regs[d] = apply(regs[d], read(m))
            return next_pc

        return arith_rx
    apply = ARITHMETIC[opcode]
    read_dst = _compile_reader(dst)
    read_src = _compile_reader(src)
    write = _compile_writer(dst)

    def arith_xx(m):
        write(m, apply(read_dst(m), read_src(m)))
        return next_pc

    return arith_xx


def _compile_compare(ins: Instruction, next_pc: int) -> StepFn:
    a, b = ins.operands[0], ins.operands[1]
    if ins.opcode is Opcode.CMP:
        if isinstance(a, Reg) and isinstance(b, Imm):
            sa = REG_SLOT[a.name]
            value = b.value

            def cmp_ri(m):
                difference = m.regs[sa] - value
                m.zero_flag = difference == 0
                m.sign_flag = difference < 0
                return next_pc

            return cmp_ri
        if isinstance(a, Reg) and isinstance(b, Reg):
            sa = REG_SLOT[a.name]
            sb = REG_SLOT[b.name]

            def cmp_rr(m):
                regs = m.regs
                difference = regs[sa] - regs[sb]
                m.zero_flag = difference == 0
                m.sign_flag = difference < 0
                return next_pc

            return cmp_rr
        read_a = _compile_reader(a)
        read_b = _compile_reader(b)

        def cmp_xx(m):
            difference = read_a(m) - read_b(m)
            m.zero_flag = difference == 0
            m.sign_flag = difference < 0
            return next_pc

        return cmp_xx
    read_a = _compile_reader(a)
    read_b = _compile_reader(b)

    def test_xx(m):
        value = read_a(m) & read_b(m)
        m.zero_flag = value == 0
        m.sign_flag = value < 0
        return next_pc

    return test_xx


def _compile_jump(ins: Instruction, next_pc: int) -> StepFn:
    opcode = ins.opcode
    target_op = ins.operands[0]
    if opcode is Opcode.JMP:
        if isinstance(target_op, Label) and target_op.address is not None:
            target = target_op.address
            return lambda m: target
        read_target = _branch_reader(target_op)
        return lambda m: read_target(m)
    if isinstance(target_op, Label) and target_op.address is not None:
        target = target_op.address
        if opcode is Opcode.JE:
            return lambda m: target if m.zero_flag else next_pc
        if opcode is Opcode.JNE:
            return lambda m: next_pc if m.zero_flag else target
        if opcode is Opcode.JL:
            return lambda m: target if m.sign_flag else next_pc
        if opcode is Opcode.JLE:
            return lambda m: target if (m.sign_flag or m.zero_flag) else next_pc
        if opcode is Opcode.JG:
            return lambda m: next_pc if (m.sign_flag or m.zero_flag) else target
        if opcode is Opcode.JGE:
            return lambda m: next_pc if m.sign_flag else target
    read_target = _branch_reader(target_op)
    condition = _CONDITIONS[opcode]

    def jcc_dynamic(m):
        if condition(m):
            return read_target(m)
        return next_pc

    return jcc_dynamic


_CONDITIONS = {
    Opcode.JE: lambda m: m.zero_flag,
    Opcode.JNE: lambda m: not m.zero_flag,
    Opcode.JL: lambda m: m.sign_flag,
    Opcode.JLE: lambda m: m.sign_flag or m.zero_flag,
    Opcode.JG: lambda m: not m.sign_flag and not m.zero_flag,
    Opcode.JGE: lambda m: not m.sign_flag,
}


def _compile_local_call(target: Label, addr: int) -> StepFn:
    if target.address is None:
        return _raiser(f"unresolved call target {target.name!r}")
    function = target.name
    target_pc = target.address
    return_address = addr + 1

    def call_local(m):
        regs = m.regs
        sp = regs[SP_SLOT] - 1
        regs[SP_SLOT] = sp
        if sp < _STACK_LIMIT:
            raise MemoryFault(sp, "stack overflow")
        m._mem_store(sp, return_address)
        m.frames.append(
            Frame(function=function, call_address=addr, return_address=return_address)
        )
        return target_pc

    return call_local


def _compile_import_call(name: str, addr: int) -> StepFn:
    next_pc = addr + 1
    spec = LIBC_FUNCTIONS.get(name)
    if spec is None:
        return _raiser(f"call to unknown library function {name!r}")
    argc = spec.argc

    def call_import(m):
        regs = m.regs
        if argc:
            load = m._mem_load
            sp = regs[SP_SLOT]
            if argc == 1:
                args = (load(sp),)
            elif argc == 2:
                args = (load(sp), load(sp + 1))
            elif argc == 3:
                args = (load(sp), load(sp + 1), load(sp + 2))
            else:
                args = tuple(load(sp + index) for index in range(argc))
        else:
            args = ()
        gate = m.gate
        if gate is None:
            counts = m._local_call_counts
            counts[name] = counts.get(name, 0) + 1
            result = m.libc.call(name, args, m.memory)
        elif m._gate_is_standard:
            runtime = gate.runtime
            if runtime is not None and name in (
                m._handled_mask
                if runtime is m._mask_runtime
                else m._refresh_handled_mask(runtime)
            ):
                result = m._gated_library_call(name, args, addr)
            else:
                # Interception fast path: the runtime will not inject into
                # this function, so skip context/lambda construction — only
                # the gate's own count-then-pass-through bookkeeping runs.
                gate.count_call(name)
                result = m.libc.call(name, args, m.memory)
        else:
            result = m._gated_library_call(name, args, addr)
        regs[R0_SLOT] = int(result.value)
        return next_pc

    return call_import


def _compile_instruction(ins: Instruction, addr: int) -> StepFn:
    opcode = ins.opcode
    next_pc = addr + 1

    if opcode is Opcode.NOP:
        return lambda m: next_pc
    if opcode is Opcode.MOV:
        return _compile_mov(ins, next_pc)
    if opcode is Opcode.LEA:
        return _compile_lea(ins, next_pc)
    if opcode is Opcode.PUSH:
        return _compile_push(ins, next_pc)
    if opcode is Opcode.POP:
        return _compile_pop(ins, next_pc)
    if opcode in ARITHMETIC:
        return _compile_arithmetic(ins, next_pc)
    if opcode is Opcode.NEG:
        dst = ins.operands[0]
        if isinstance(dst, Reg):
            d = REG_SLOT[dst.name]

            def neg_r(m):
                regs = m.regs
                regs[d] = -regs[d]
                return next_pc

            return neg_r
        read = _compile_reader(dst)
        write = _compile_writer(dst)

        def neg_x(m):
            write(m, -read(m))
            return next_pc

        return neg_x
    if opcode is Opcode.NOT:
        dst = ins.operands[0]
        if isinstance(dst, Reg):
            d = REG_SLOT[dst.name]

            def not_r(m):
                regs = m.regs
                regs[d] = 0 if regs[d] else 1
                return next_pc

            return not_r
        read = _compile_reader(dst)
        write = _compile_writer(dst)

        def not_x(m):
            write(m, 0 if read(m) else 1)
            return next_pc

        return not_x
    if opcode in (Opcode.CMP, Opcode.TEST):
        return _compile_compare(ins, next_pc)
    if opcode is Opcode.JMP or opcode.is_conditional_jump:
        return _compile_jump(ins, next_pc)
    if opcode is Opcode.CALL:
        target = ins.operands[0] if ins.operands else None
        if isinstance(target, ImportRef):
            return _compile_import_call(target.name, addr)
        if isinstance(target, Label):
            return _compile_local_call(target, addr)
        return _raiser(f"unsupported call target {target!r}")
    if opcode is Opcode.RET:

        def ret(m):
            regs = m.regs
            sp = regs[SP_SLOT]
            return_address = m._mem_load(sp)
            regs[SP_SLOT] = sp + 1
            if return_address == RETURN_SENTINEL:
                code = regs[R0_SLOT]
                kind = ExitKind.NORMAL if code == 0 else ExitKind.ERROR_EXIT
                return (kind, code, "")
            frames = m.frames
            if frames:
                frames.pop()
            return return_address

        return ret
    if opcode is Opcode.HALT:

        def halt(m):
            code = m.regs[R0_SLOT]
            kind = ExitKind.NORMAL if code == 0 else ExitKind.ERROR_EXIT
            return (kind, code, "")

        return halt
    return _raiser(f"unhandled opcode {opcode}")  # pragma: no cover - defensive


# ----------------------------------------------------------------------
# whole-program compilation + per-image cache
# ----------------------------------------------------------------------
def compile_program(binary: BinaryImage) -> List[StepFn]:
    """Compile every instruction of *binary* into a step-closure array.

    Also records the set of import names the instruction stream actually
    calls on the image (``_import_call_names``): the machine's handled-import
    mask intersects against it, and deriving it from the instructions —
    rather than trusting ``binary.imports`` — keeps the interception fast
    path safe even for hand-constructed images with an incomplete import
    table.
    """
    program: List[StepFn] = []
    import_names = set()
    for addr, ins in enumerate(binary.instructions):
        if (
            ins.opcode is Opcode.CALL
            and ins.operands
            and isinstance(ins.operands[0], ImportRef)
        ):
            import_names.add(ins.operands[0].name)
        try:
            step = _compile_instruction(ins, addr)
        except (IndexError, KeyError) as error:
            # Malformed hand-built instructions (missing operands, unknown
            # register names) fail in the reference engine only when they
            # execute; defer the same exception to execution time so dead
            # malformed code stays as harmless as it is under the oracle.
            # Anything else is a compiler defect and must fail fast here.
            step = _deferred_exception(type(error), error.args)
        program.append(step)
    binary._import_call_names = frozenset(import_names)
    return program


def _deferred_exception(exc_type, exc_args) -> StepFn:
    def raise_at_execution(m):
        raise exc_type(*exc_args)

    return raise_at_execution


def compiled_program(binary: BinaryImage) -> List[StepFn]:
    """The compiled program for *binary*, built at most once per image.

    The closure array is cached on the image itself, so every sharing layer
    — the process-wide artifact cache, :class:`CompiledTarget`'s binary
    cache, campaign workers reusing one image — gets the predecoded program
    for free.  ``BinaryImage`` stores its instruction stream as a tuple, so
    the cache cannot go stale; the length guard is belt-and-braces for
    exotic images built outside the tool chain.
    """
    program = getattr(binary, "_compiled_program", None)
    if program is None or len(program) != len(binary.instructions):
        program = compile_program(binary)
        binary._compiled_program = program
    return program


__all__ = [
    "ARITHMETIC",
    "Frame",
    "REGISTER_NAMES",
    "REG_SLOT",
    "RETURN_SENTINEL",
    "RegisterFile",
    "VMError",
    "compile_program",
    "compiled_program",
]
