"""Predecoded, closure-threaded execution engine for the VM.

The reference interpreter in :mod:`repro.vm.machine` re-decodes every
instruction on every step: an ``isinstance`` chain per operand and an
opcode if/elif ladder per instruction.  That decode cost is pure overhead —
the instruction stream never changes after the assembler lays it out — and
it is the throughput ceiling for everything built on top of the VM: the
parallel campaign executor, the fault-space exploration engine, and the
overhead experiments all schedule thousands of runs through :class:`Machine`.

This module removes the per-step decode by compiling each
:class:`~repro.isa.instructions.Instruction` **once, at load time**, into a
specialized Python closure:

* register operands become list-slot indices (``m.regs[3]``),
* immediates, resolved labels, and data symbols become captured constants,
* the fall-through program counter is folded in as ``addr + 1``,
* arithmetic is bound to a concrete operator at compile time, and
* library calls capture their callee name and arity, so the interception
  fast path can skip context/lambda construction entirely when no
  injection runtime handles the function.

A compiled step closure receives the machine and returns either the next
program counter (an ``int``) or an **exit triple** ``(ExitKind, code,
reason)``; traps (memory faults, division by zero, ``SimExit``) still
propagate as exceptions, exactly as in the reference engine.

On top of the per-instruction closures, :func:`compile_blocks` fuses
straight-line **basic blocks into superclosures**: one generated function
per block (source codegen + ``exec``), with

* common instruction shapes (MOV/arithmetic/PUSH/POP/LEA/jumps) inlined as
  statements over hoisted locals (``regs``, ``load``, ``store``) — no
  per-instruction call, no per-instruction pc/steps bookkeeping;
* CMP/Jcc pairs collapsed into a single conditional branch, with the flag
  materialization **elided entirely** when a bounded liveness scan proves
  no other instruction reads the flags (disabled globally if the program
  has computed jumps, which could land on a Jcc whose CMP was fused away);
* uninlinable shapes (library calls are never fused; errno loads,
  unresolved symbols, Mem-destination arithmetic) falling back to the
  per-instruction closure inside the block;
* trap attribution recovered *only when a trap propagates*: the generated
  handler maps the traceback line number of the failing statement back to
  its instruction offset, so the happy path carries zero bookkeeping.

Block boundaries come from :meth:`BinaryImage.block_leaders` (symbols,
function starts, and every resolved label target), so no fused block spans
a jump target; computed jumps that land mid-block simply take the
single-step path.

Both the compiled program and the fused blocks are cached on the
:class:`~repro.isa.binary.BinaryImage` itself (:func:`compiled_program`,
:func:`compiled_blocks`), so images shared through the process-wide
artifact cache or :class:`~repro.targets.base.CompiledTarget`'s binary
cache are compiled once per process no matter how many runs a campaign
schedules.

Behavioural contract: a compiled program must be **observably identical** to
the reference interpreter — same :class:`~repro.vm.outcome.ExitStatus`
(including step counts and fault reasons), same trace, coverage, library
call counts, and injection log.  ``tests/test_vm_dispatch.py`` and
``tests/test_dataplane.py`` enforce this differentially, including on
randomly generated mini-C programs.
"""

from __future__ import annotations

import operator
import sys
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple, Union

from repro.isa import layout
from repro.isa.binary import BinaryImage
from repro.isa.instructions import (
    DataRef,
    Imm,
    ImportRef,
    Instruction,
    Label,
    Mem,
    Opcode,
    Reg,
)
from repro.oslib.errors import MemoryFault
from repro.oslib.libc import LIBC_FUNCTIONS
from repro.vm.outcome import ExitKind

#: Register file layout: a fixed list of slots replaces the name-keyed dict.
REGISTER_NAMES: Tuple[str, ...] = (
    "r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "sp", "bp",
)
REG_SLOT = {name: slot for slot, name in enumerate(REGISTER_NAMES)}
R0_SLOT = REG_SLOT["r0"]
SP_SLOT = REG_SLOT["sp"]
BP_SLOT = REG_SLOT["bp"]

#: Sentinel return address marking the bottom of the call stack.
RETURN_SENTINEL = -1

_STACK_LIMIT = layout.STACK_LIMIT

#: What a compiled step returns: the next pc, or an (kind, code, reason)
#: exit triple the main loop turns into an ExitStatus.
ExitTriple = Tuple[ExitKind, int, str]
StepFn = Callable[[Any], Union[int, ExitTriple]]


class VMError(Exception):
    """An execution error that is the VM's fault rather than the program's."""


@dataclass
class Frame:
    """One activation record, kept for backtraces (call-stack triggers)."""

    function: str
    call_address: Optional[int]
    return_address: int


class RegisterFile:
    """Dict-like view over a machine's slot-indexed register list.

    Kept for API compatibility with the old ``Dict[str, int]`` register
    file: reads and writes go straight through to the underlying slots.
    """

    __slots__ = ("_slots",)

    def __init__(self, slots: List[int]) -> None:
        self._slots = slots

    def __getitem__(self, name: str) -> int:
        return self._slots[REG_SLOT[name]]

    def __setitem__(self, name: str, value: int) -> None:
        self._slots[REG_SLOT[name]] = int(value)

    def __contains__(self, name: object) -> bool:
        return name in REG_SLOT

    def __iter__(self):
        return iter(REGISTER_NAMES)

    def __len__(self) -> int:
        return len(REGISTER_NAMES)

    def keys(self) -> Tuple[str, ...]:
        return REGISTER_NAMES

    def values(self) -> List[int]:
        return list(self._slots)

    def items(self) -> List[Tuple[str, int]]:
        slots = self._slots
        return [(name, slots[REG_SLOT[name]]) for name in REGISTER_NAMES]

    def as_dict(self) -> dict:
        return dict(self.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegisterFile({self.as_dict()})"


def _signed_div(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("integer division by zero")
    # C-style truncation towards zero, in exact integer arithmetic:
    # ``int(a / b)`` goes through a float, which rounds wrongly past 2**53
    # and overflows outright past float range (values a mini-C loop of
    # repeated squarings reaches easily).
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _signed_mod(a: int, b: int) -> int:
    return a - _signed_div(a, b) * b


ARITHMETIC = {
    Opcode.ADD: operator.add,
    Opcode.SUB: operator.sub,
    Opcode.MUL: operator.mul,
    Opcode.DIV: _signed_div,
    Opcode.MOD: _signed_mod,
    Opcode.AND: operator.and_,
    Opcode.OR: operator.or_,
    Opcode.XOR: operator.xor,
}


# ----------------------------------------------------------------------
# operand compilation
# ----------------------------------------------------------------------
def _raiser(message: str) -> StepFn:
    """A step/reader that defers an error to execution time.

    The reference interpreter only reports unresolved operands or unknown
    callees when the instruction actually executes; compiling them into
    raising closures preserves that behaviour for dead code.
    """

    def raise_error(m, *_ignored):
        raise VMError(message)

    return raise_error


def _compile_reader(op) -> Callable[[Any], int]:
    """Compile an operand into a value reader (the `_value` analog)."""
    if isinstance(op, Reg):
        slot = REG_SLOT[op.name]
        return lambda m: m.regs[slot]
    if isinstance(op, Imm):
        value = op.value
        return lambda m: value
    if isinstance(op, Mem):
        if op.base is None:
            address = op.offset
            if address == layout.ERRNO_ADDRESS:
                # Specialized at predecode time, so the errno-read counter
                # (see SimLibc.errno_reads) costs nothing on any other load.
                def read_errno(m):
                    m.libc.errno_reads += 1
                    return m._mem_load(address)

                return read_errno
            return lambda m: m._mem_load(address)
        base = REG_SLOT[op.base]
        offset = op.offset
        if offset:
            return lambda m: m._mem_load(m.regs[base] + offset)
        return lambda m: m._mem_load(m.regs[base])
    if isinstance(op, Label):
        if op.address is None:
            return _raiser(f"unresolved label {op.name!r}")
        address = op.address
        return lambda m: address
    if isinstance(op, DataRef):
        if op.address is None:
            return _raiser(f"unresolved data symbol {op.name!r}")
        address = op.address
        return lambda m: address
    return _raiser(f"cannot read operand {op!r}")


def _compile_address(op) -> Callable[[Any], int]:
    """Compile an operand into an address reader (the `_address_of` analog)."""
    if isinstance(op, Mem):
        if op.base is None:
            offset = op.offset
            return lambda m: offset
        base = REG_SLOT[op.base]
        offset = op.offset
        if offset:
            return lambda m: m.regs[base] + offset
        return lambda m: m.regs[base]
    if isinstance(op, DataRef):
        if op.address is None:
            return _raiser(f"unresolved data symbol {op.name!r}")
        address = op.address
        return lambda m: address
    return _raiser(f"operand {op!r} has no address")


def _compile_writer(op) -> Callable[[Any, int], None]:
    """Compile an operand into a value writer (the `_write` analog)."""
    if isinstance(op, Reg):
        slot = REG_SLOT[op.name]

        def write_reg(m, value):
            m.regs[slot] = value

        return write_reg
    if isinstance(op, Mem):
        address_of = _compile_address(op)

        def write_mem(m, value):
            m._mem_store(address_of(m), value)

        return write_mem
    return _raiser(f"cannot write to operand {op!r}")


def _branch_reader(op) -> Callable[[Any], int]:
    """Compile a branch-target operand (resolved labels fold to constants)."""
    if isinstance(op, Label) and op.address is not None:
        address = op.address
        return lambda m: address
    return _compile_reader(op)


# ----------------------------------------------------------------------
# per-opcode compilation
# ----------------------------------------------------------------------
def _compile_mov(ins: Instruction, next_pc: int) -> StepFn:
    dst, src = ins.operands[0], ins.operands[1]
    if isinstance(dst, Reg):
        d = REG_SLOT[dst.name]
        if isinstance(src, Imm):
            value = src.value

            def mov_ri(m):
                m.regs[d] = value
                return next_pc

            return mov_ri
        if isinstance(src, Reg):
            s = REG_SLOT[src.name]

            def mov_rr(m):
                regs = m.regs
                regs[d] = regs[s]
                return next_pc

            return mov_rr
        if isinstance(src, Mem) and src.base is not None:
            base = REG_SLOT[src.base]
            offset = src.offset

            def mov_rm(m):
                regs = m.regs
                regs[d] = m._mem_load(regs[base] + offset)
                return next_pc

            return mov_rm
        read = _compile_reader(src)

        def mov_rx(m):
            m.regs[d] = read(m)
            return next_pc

        return mov_rx
    if isinstance(dst, Mem):
        read = _compile_reader(src)
        if dst.base is not None:
            base = REG_SLOT[dst.base]
            offset = dst.offset

            def mov_mx(m):
                value = read(m)
                m._mem_store(m.regs[base] + offset, value)
                return next_pc

            return mov_mx
        address = dst.offset

        def mov_ax(m):
            m._mem_store(address, read(m))
            return next_pc

        return mov_ax
    return _raiser(f"cannot write to operand {dst!r}")


def _compile_lea(ins: Instruction, next_pc: int) -> StepFn:
    dst, src = ins.operands[0], ins.operands[1]
    address_of = _compile_address(src)
    if isinstance(dst, Reg):
        d = REG_SLOT[dst.name]

        def lea_r(m):
            m.regs[d] = address_of(m)
            return next_pc

        return lea_r
    write = _compile_writer(dst)

    def lea_x(m):
        write(m, address_of(m))
        return next_pc

    return lea_x


def _compile_push(ins: Instruction, next_pc: int) -> StepFn:
    src = ins.operands[0]
    if isinstance(src, Imm):
        value = src.value

        def push_imm(m):
            regs = m.regs
            sp = regs[SP_SLOT] - 1
            regs[SP_SLOT] = sp
            if sp < _STACK_LIMIT:
                raise MemoryFault(sp, "stack overflow")
            m._mem_store(sp, value)
            return next_pc

        return push_imm
    if isinstance(src, Reg):
        s = REG_SLOT[src.name]

        def push_reg(m):
            regs = m.regs
            value = regs[s]
            sp = regs[SP_SLOT] - 1
            regs[SP_SLOT] = sp
            if sp < _STACK_LIMIT:
                raise MemoryFault(sp, "stack overflow")
            m._mem_store(sp, value)
            return next_pc

        return push_reg
    read = _compile_reader(src)

    def push_x(m):
        value = read(m)
        regs = m.regs
        sp = regs[SP_SLOT] - 1
        regs[SP_SLOT] = sp
        if sp < _STACK_LIMIT:
            raise MemoryFault(sp, "stack overflow")
        m._mem_store(sp, value)
        return next_pc

    return push_x


def _compile_pop(ins: Instruction, next_pc: int) -> StepFn:
    dst = ins.operands[0]
    if isinstance(dst, Reg):
        d = REG_SLOT[dst.name]

        def pop_reg(m):
            regs = m.regs
            sp = regs[SP_SLOT]
            value = m._mem_load(sp)
            regs[SP_SLOT] = sp + 1
            regs[d] = value
            return next_pc

        return pop_reg
    write = _compile_writer(dst)

    def pop_x(m):
        regs = m.regs
        sp = regs[SP_SLOT]
        value = m._mem_load(sp)
        regs[SP_SLOT] = sp + 1
        write(m, value)
        return next_pc

    return pop_x


def _compile_arithmetic(ins: Instruction, next_pc: int) -> StepFn:
    opcode = ins.opcode
    dst, src = ins.operands[0], ins.operands[1]
    if isinstance(dst, Reg):
        d = REG_SLOT[dst.name]
        if opcode is Opcode.ADD and isinstance(src, Imm):
            value = src.value

            def add_ri(m):
                m.regs[d] += value
                return next_pc

            return add_ri
        if opcode is Opcode.SUB and isinstance(src, Imm):
            value = src.value

            def sub_ri(m):
                m.regs[d] -= value
                return next_pc

            return sub_ri
        apply = ARITHMETIC[opcode]
        if isinstance(src, Reg):
            s = REG_SLOT[src.name]

            def arith_rr(m):
                regs = m.regs
                regs[d] = apply(regs[d], regs[s])
                return next_pc

            return arith_rr
        read = _compile_reader(src)

        def arith_rx(m):
            regs = m.regs
            regs[d] = apply(regs[d], read(m))
            return next_pc

        return arith_rx
    apply = ARITHMETIC[opcode]
    read_dst = _compile_reader(dst)
    read_src = _compile_reader(src)
    write = _compile_writer(dst)

    def arith_xx(m):
        write(m, apply(read_dst(m), read_src(m)))
        return next_pc

    return arith_xx


def _compile_compare(ins: Instruction, next_pc: int) -> StepFn:
    a, b = ins.operands[0], ins.operands[1]
    if ins.opcode is Opcode.CMP:
        if isinstance(a, Reg) and isinstance(b, Imm):
            sa = REG_SLOT[a.name]
            value = b.value

            def cmp_ri(m):
                difference = m.regs[sa] - value
                m.zero_flag = difference == 0
                m.sign_flag = difference < 0
                return next_pc

            return cmp_ri
        if isinstance(a, Reg) and isinstance(b, Reg):
            sa = REG_SLOT[a.name]
            sb = REG_SLOT[b.name]

            def cmp_rr(m):
                regs = m.regs
                difference = regs[sa] - regs[sb]
                m.zero_flag = difference == 0
                m.sign_flag = difference < 0
                return next_pc

            return cmp_rr
        read_a = _compile_reader(a)
        read_b = _compile_reader(b)

        def cmp_xx(m):
            difference = read_a(m) - read_b(m)
            m.zero_flag = difference == 0
            m.sign_flag = difference < 0
            return next_pc

        return cmp_xx
    read_a = _compile_reader(a)
    read_b = _compile_reader(b)

    def test_xx(m):
        value = read_a(m) & read_b(m)
        m.zero_flag = value == 0
        m.sign_flag = value < 0
        return next_pc

    return test_xx


def _compile_jump(ins: Instruction, next_pc: int) -> StepFn:
    opcode = ins.opcode
    target_op = ins.operands[0]
    if opcode is Opcode.JMP:
        if isinstance(target_op, Label) and target_op.address is not None:
            target = target_op.address
            return lambda m: target
        read_target = _branch_reader(target_op)
        return lambda m: read_target(m)
    if isinstance(target_op, Label) and target_op.address is not None:
        target = target_op.address
        if opcode is Opcode.JE:
            return lambda m: target if m.zero_flag else next_pc
        if opcode is Opcode.JNE:
            return lambda m: next_pc if m.zero_flag else target
        if opcode is Opcode.JL:
            return lambda m: target if m.sign_flag else next_pc
        if opcode is Opcode.JLE:
            return lambda m: target if (m.sign_flag or m.zero_flag) else next_pc
        if opcode is Opcode.JG:
            return lambda m: next_pc if (m.sign_flag or m.zero_flag) else target
        if opcode is Opcode.JGE:
            return lambda m: next_pc if m.sign_flag else target
    read_target = _branch_reader(target_op)
    condition = _CONDITIONS[opcode]

    def jcc_dynamic(m):
        if condition(m):
            return read_target(m)
        return next_pc

    return jcc_dynamic


_CONDITIONS = {
    Opcode.JE: lambda m: m.zero_flag,
    Opcode.JNE: lambda m: not m.zero_flag,
    Opcode.JL: lambda m: m.sign_flag,
    Opcode.JLE: lambda m: m.sign_flag or m.zero_flag,
    Opcode.JG: lambda m: not m.sign_flag and not m.zero_flag,
    Opcode.JGE: lambda m: not m.sign_flag,
}


def _compile_local_call(target: Label, addr: int) -> StepFn:
    if target.address is None:
        return _raiser(f"unresolved call target {target.name!r}")
    function = target.name
    target_pc = target.address
    return_address = addr + 1

    def call_local(m):
        regs = m.regs
        sp = regs[SP_SLOT] - 1
        regs[SP_SLOT] = sp
        if sp < _STACK_LIMIT:
            raise MemoryFault(sp, "stack overflow")
        m._mem_store(sp, return_address)
        m.frames.append(
            Frame(function=function, call_address=addr, return_address=return_address)
        )
        return target_pc

    return call_local


def _compile_import_call(name: str, addr: int) -> StepFn:
    next_pc = addr + 1
    spec = LIBC_FUNCTIONS.get(name)
    if spec is None:
        return _raiser(f"call to unknown library function {name!r}")
    argc = spec.argc

    def call_import(m):
        regs = m.regs
        if argc:
            load = m._mem_load
            sp = regs[SP_SLOT]
            if argc == 1:
                args = (load(sp),)
            elif argc == 2:
                args = (load(sp), load(sp + 1))
            elif argc == 3:
                args = (load(sp), load(sp + 1), load(sp + 2))
            else:
                args = tuple(load(sp + index) for index in range(argc))
        else:
            args = ()
        gate = m.gate
        if gate is None:
            counts = m._local_call_counts
            counts[name] = counts.get(name, 0) + 1
            result = m.libc.call(name, args, m.memory)
        elif m._gate_is_standard:
            runtime = gate.runtime
            if runtime is not None and name in (
                m._handled_mask
                if runtime is m._mask_runtime
                else m._refresh_handled_mask(runtime)
            ):
                result = m._gated_library_call(name, args, addr)
            else:
                # Interception fast path: the runtime will not inject into
                # this function, so skip context/lambda construction — only
                # the gate's own count-then-pass-through bookkeeping runs.
                gate.count_call(name)
                result = m.libc.call(name, args, m.memory)
        else:
            result = m._gated_library_call(name, args, addr)
        regs[R0_SLOT] = int(result.value)
        return next_pc

    return call_import


def _compile_instruction(ins: Instruction, addr: int) -> StepFn:
    opcode = ins.opcode
    next_pc = addr + 1

    if opcode is Opcode.NOP:
        return lambda m: next_pc
    if opcode is Opcode.MOV:
        return _compile_mov(ins, next_pc)
    if opcode is Opcode.LEA:
        return _compile_lea(ins, next_pc)
    if opcode is Opcode.PUSH:
        return _compile_push(ins, next_pc)
    if opcode is Opcode.POP:
        return _compile_pop(ins, next_pc)
    if opcode in ARITHMETIC:
        return _compile_arithmetic(ins, next_pc)
    if opcode is Opcode.NEG:
        dst = ins.operands[0]
        if isinstance(dst, Reg):
            d = REG_SLOT[dst.name]

            def neg_r(m):
                regs = m.regs
                regs[d] = -regs[d]
                return next_pc

            return neg_r
        read = _compile_reader(dst)
        write = _compile_writer(dst)

        def neg_x(m):
            write(m, -read(m))
            return next_pc

        return neg_x
    if opcode is Opcode.NOT:
        dst = ins.operands[0]
        if isinstance(dst, Reg):
            d = REG_SLOT[dst.name]

            def not_r(m):
                regs = m.regs
                regs[d] = 0 if regs[d] else 1
                return next_pc

            return not_r
        read = _compile_reader(dst)
        write = _compile_writer(dst)

        def not_x(m):
            write(m, 0 if read(m) else 1)
            return next_pc

        return not_x
    if opcode in (Opcode.CMP, Opcode.TEST):
        return _compile_compare(ins, next_pc)
    if opcode is Opcode.JMP or opcode.is_conditional_jump:
        return _compile_jump(ins, next_pc)
    if opcode is Opcode.CALL:
        target = ins.operands[0] if ins.operands else None
        if isinstance(target, ImportRef):
            return _compile_import_call(target.name, addr)
        if isinstance(target, Label):
            return _compile_local_call(target, addr)
        return _raiser(f"unsupported call target {target!r}")
    if opcode is Opcode.RET:

        def ret(m):
            regs = m.regs
            sp = regs[SP_SLOT]
            return_address = m._mem_load(sp)
            regs[SP_SLOT] = sp + 1
            if return_address == RETURN_SENTINEL:
                code = regs[R0_SLOT]
                kind = ExitKind.NORMAL if code == 0 else ExitKind.ERROR_EXIT
                return (kind, code, "")
            frames = m.frames
            if frames:
                frames.pop()
            return return_address

        return ret
    if opcode is Opcode.HALT:

        def halt(m):
            code = m.regs[R0_SLOT]
            kind = ExitKind.NORMAL if code == 0 else ExitKind.ERROR_EXIT
            return (kind, code, "")

        return halt
    return _raiser(f"unhandled opcode {opcode}")  # pragma: no cover - defensive


# ----------------------------------------------------------------------
# whole-program compilation + per-image cache
# ----------------------------------------------------------------------
def compile_program(binary: BinaryImage) -> List[StepFn]:
    """Compile every instruction of *binary* into a step-closure array.

    Also records the set of import names the instruction stream actually
    calls on the image (``_import_call_names``): the machine's handled-import
    mask intersects against it, and deriving it from the instructions —
    rather than trusting ``binary.imports`` — keeps the interception fast
    path safe even for hand-constructed images with an incomplete import
    table.
    """
    program: List[StepFn] = []
    import_names = set()
    for addr, ins in enumerate(binary.instructions):
        if (
            ins.opcode is Opcode.CALL
            and ins.operands
            and isinstance(ins.operands[0], ImportRef)
        ):
            import_names.add(ins.operands[0].name)
        try:
            step = _compile_instruction(ins, addr)
        except (IndexError, KeyError) as error:
            # Malformed hand-built instructions (missing operands, unknown
            # register names) fail in the reference engine only when they
            # execute; defer the same exception to execution time so dead
            # malformed code stays as harmless as it is under the oracle.
            # Anything else is a compiler defect and must fail fast here.
            step = _deferred_exception(type(error), error.args)
        program.append(step)
    binary._import_call_names = frozenset(import_names)
    return program


def _deferred_exception(exc_type, exc_args) -> StepFn:
    def raise_at_execution(m):
        raise exc_type(*exc_args)

    return raise_at_execution


# ----------------------------------------------------------------------
# superclosures: basic-block fusion over the compiled program
# ----------------------------------------------------------------------
#: Opcodes safe to fuse into a straight-line superclosure: no control
#: transfer, no library-call gate, no observer can fire while one runs.
#: CALL is deliberately excluded — mid-run captures taken inside a gated
#: library call read ``machine.pc``/``machine.steps``, which a fused block
#: only maintains at block granularity.
_FUSIBLE_OPCODES = frozenset(
    {
        Opcode.NOP,
        Opcode.MOV,
        Opcode.LEA,
        Opcode.PUSH,
        Opcode.POP,
        Opcode.NEG,
        Opcode.NOT,
        Opcode.CMP,
        Opcode.TEST,
    }
) | frozenset(ARITHMETIC)

_CONDITIONAL_JUMPS = frozenset(_CONDITIONS)

#: Cap on sub-closures per superclosure; keeps the generated functions small
#: enough that a mid-block trap's budget fallback stays cheap.
_MAX_BLOCK = 24

#: Branch decision as a predicate over the CMP difference (or TEST mask):
#: ``difference = a - b`` makes every Jcc a comparison against zero, which
#: is what lets a fused CMP+Jcc skip materializing the flags when dead.
_TAKEN_ON_VALUE = {
    Opcode.JE: lambda value: value == 0,
    Opcode.JNE: lambda value: value != 0,
    Opcode.JL: lambda value: value < 0,
    Opcode.JLE: lambda value: value <= 0,
    Opcode.JG: lambda value: value > 0,
    Opcode.JGE: lambda value: value >= 0,
}


def _resolved_jump_target(ins: Instruction) -> Optional[int]:
    if ins.operands:
        target = ins.operands[0]
        if isinstance(target, Label) and target.address is not None:
            return target.address
    return None


def _has_computed_jump(instructions) -> bool:
    """Whether any jump target is only known at run time.

    A computed jump can land in the middle of a fused block, where execution
    falls back to the per-instruction path — and would then read whatever
    flags the last *materialized* CMP left behind.  Dead-flag elision is only
    sound when every entry into a flag-reading instruction is statically
    known, so one computed jump anywhere disables elision for the image.
    """
    for ins in instructions:
        opcode = ins.opcode
        if opcode is Opcode.JMP or opcode in _CONDITIONAL_JUMPS:
            if _resolved_jump_target(ins) is None:
                return True
    return False


def _flags_live_after(instructions, successors, budget: int = 64) -> bool:
    """Whether CMP/TEST flags may still be read on any path from *successors*.

    Conservative forward scan: a path dies when it reaches a CMP/TEST (flags
    redefined before any read); flags are live on a path that reaches a
    conditional jump.  CALL/RET/HALT and anything unrecognized are barriers
    counted as live — a mid-run capture taken inside a library call snapshots
    the architectural flags, so eliding a flag store across a call would be
    observable on the snapshot path.
    """
    pending = list(successors)
    seen = set()
    size = len(instructions)
    while pending:
        address = pending.pop()
        if address in seen:
            continue
        seen.add(address)
        if len(seen) > budget or not 0 <= address < size:
            return True
        opcode = instructions[address].opcode
        if opcode in (Opcode.CMP, Opcode.TEST):
            continue
        if opcode in _CONDITIONAL_JUMPS:
            return True
        if opcode is Opcode.JMP:
            target = _resolved_jump_target(instructions[address])
            if target is None:
                return True
            pending.append(target)
            continue
        if opcode in _FUSIBLE_OPCODES:
            pending.append(address + 1)
            continue
        return True
    return False


def _compile_cmp_jcc(
    cmp_ins: Instruction, jcc_ins: Instruction, jcc_addr: int, flags_live: bool
) -> Optional[StepFn]:
    """Fuse a CMP/TEST with the conditional jump consuming its flags.

    Returns ``None`` when the jump target is not a resolved label (the
    generic per-instruction closures handle that case).  With dead flags the
    pair collapses to a single branch on the comparison value; with live
    flags the pair still saves a dispatch round trip but materializes the
    flags exactly as the oracle would.
    """
    target = _resolved_jump_target(jcc_ins)
    if target is None or len(cmp_ins.operands) < 2:
        return None
    opcode = jcc_ins.opcode
    next_pc = jcc_addr + 1
    a, b = cmp_ins.operands[0], cmp_ins.operands[1]
    if cmp_ins.opcode is Opcode.CMP and not flags_live:
        # The hottest shapes — loop counters and guard compares — get fully
        # specialized branches with no flag stores and no lambda chain.
        if isinstance(a, Reg) and isinstance(b, Imm):
            sa = REG_SLOT[a.name]
            value = b.value
            if opcode is Opcode.JE:
                return lambda m: target if m.regs[sa] == value else next_pc
            if opcode is Opcode.JNE:
                return lambda m: target if m.regs[sa] != value else next_pc
            if opcode is Opcode.JL:
                return lambda m: target if m.regs[sa] < value else next_pc
            if opcode is Opcode.JLE:
                return lambda m: target if m.regs[sa] <= value else next_pc
            if opcode is Opcode.JG:
                return lambda m: target if m.regs[sa] > value else next_pc
            if opcode is Opcode.JGE:
                return lambda m: target if m.regs[sa] >= value else next_pc
        if isinstance(a, Reg) and isinstance(b, Reg):
            sa = REG_SLOT[a.name]
            sb = REG_SLOT[b.name]
            if opcode is Opcode.JE:
                return lambda m: target if m.regs[sa] == m.regs[sb] else next_pc
            if opcode is Opcode.JNE:
                return lambda m: target if m.regs[sa] != m.regs[sb] else next_pc
            if opcode is Opcode.JL:
                return lambda m: target if m.regs[sa] < m.regs[sb] else next_pc
            if opcode is Opcode.JLE:
                return lambda m: target if m.regs[sa] <= m.regs[sb] else next_pc
            if opcode is Opcode.JG:
                return lambda m: target if m.regs[sa] > m.regs[sb] else next_pc
            if opcode is Opcode.JGE:
                return lambda m: target if m.regs[sa] >= m.regs[sb] else next_pc
    read_a = _compile_reader(a)
    read_b = _compile_reader(b)
    taken = _TAKEN_ON_VALUE[opcode]
    if cmp_ins.opcode is Opcode.TEST:
        if flags_live:

            def test_jcc_live(m):
                value = read_a(m) & read_b(m)
                m.zero_flag = value == 0
                m.sign_flag = value < 0
                return target if taken(value) else next_pc

            return test_jcc_live

        def test_jcc(m):
            return target if taken(read_a(m) & read_b(m)) else next_pc

        return test_jcc
    if flags_live:

        def cmp_jcc_live(m):
            difference = read_a(m) - read_b(m)
            m.zero_flag = difference == 0
            m.sign_flag = difference < 0
            return target if taken(difference) else next_pc

        return cmp_jcc_live

    def cmp_jcc(m):
        return target if taken(read_a(m) - read_b(m)) else next_pc

    return cmp_jcc


_ARITH_SYMBOLS = {
    Opcode.ADD: "+",
    Opcode.SUB: "-",
    Opcode.MUL: "*",
    Opcode.AND: "&",
    Opcode.OR: "|",
    Opcode.XOR: "^",
}

_JCC_FLAG_EXPR = {
    Opcode.JE: "m.zero_flag",
    Opcode.JNE: "not m.zero_flag",
    Opcode.JL: "m.sign_flag",
    Opcode.JLE: "m.sign_flag or m.zero_flag",
    Opcode.JG: "not (m.sign_flag or m.zero_flag)",
    Opcode.JGE: "not m.sign_flag",
}

_JCC_CMP_OP = {
    Opcode.JE: "==",
    Opcode.JNE: "!=",
    Opcode.JL: "<",
    Opcode.JLE: "<=",
    Opcode.JG: ">",
    Opcode.JGE: ">=",
}


def _value_expr(op) -> Optional[str]:
    """Source expression reading *op* inside a superclosure, or ``None``
    when only the closure path can read it (errno loads keep their
    predecode-specialized read counter; unresolved symbols keep their
    deferred execution-time error)."""
    if isinstance(op, Reg):
        return f"regs[{REG_SLOT[op.name]}]"
    if isinstance(op, Imm):
        return repr(op.value)
    if isinstance(op, Label):
        return repr(op.address) if op.address is not None else None
    if isinstance(op, DataRef):
        return repr(op.address) if op.address is not None else None
    if isinstance(op, Mem):
        if op.base is None:
            if op.offset == layout.ERRNO_ADDRESS:
                return None
            return f"load({op.offset})"
        base = REG_SLOT[op.base]
        if op.offset:
            return f"load(regs[{base}] + {op.offset})"
        return f"load(regs[{base}])"
    return None


def _address_expr(op) -> Optional[str]:
    if isinstance(op, Mem):
        if op.base is None:
            return repr(op.offset)
        base = REG_SLOT[op.base]
        if op.offset:
            return f"regs[{base}] + {op.offset}"
        return f"regs[{base}]"
    if isinstance(op, DataRef):
        return repr(op.address) if op.address is not None else None
    return None


def _emit_instruction(ins: Instruction) -> Optional[List[str]]:
    """Emit *ins* as superclosure source statements, or ``None`` to fall
    back to calling its per-instruction closure.

    The emitted code assumes the generated function's hoisted locals
    (``regs``/``load``/``store``) and must fault **before** mutating any
    state an earlier statement did not already mutate — trap attribution
    re-executes nothing, so partial effects must match the per-step oracle.
    """
    try:
        return _emit_instruction_unchecked(ins)
    except (IndexError, KeyError):
        # Malformed hand-built instructions (missing operands, unknown
        # register names): the per-instruction closure already defers the
        # matching error to execution time — route through it.
        return None


def _emit_instruction_unchecked(ins: Instruction) -> Optional[List[str]]:
    opcode = ins.opcode
    ops = ins.operands
    if opcode is Opcode.NOP:
        return []
    if opcode is Opcode.MOV:
        dst, src = ops[0], ops[1]
        src_expr = _value_expr(src)
        if src_expr is None:
            return None
        if isinstance(dst, Reg):
            return [f"regs[{REG_SLOT[dst.name]}] = {src_expr}"]
        if isinstance(dst, Mem):
            address = _address_expr(dst)
            if address is None:
                return None
            return [f"store({address}, {src_expr})"]
        return None
    if opcode is Opcode.LEA:
        dst, src = ops[0], ops[1]
        address = _address_expr(src)
        if address is None or not isinstance(dst, Reg):
            return None
        return [f"regs[{REG_SLOT[dst.name]}] = {address}"]
    if opcode is Opcode.PUSH:
        src = ops[0]
        expr = _value_expr(src)
        if expr is None:
            return None
        lines = []
        if isinstance(src, Mem):
            # A faulting operand load must leave sp untouched.
            lines.append(f"_v = {expr}")
            expr = "_v"
        lines += [
            f"sp = regs[{SP_SLOT}] - 1",
            f"regs[{SP_SLOT}] = sp",
            f"if sp < {_STACK_LIMIT}:",
            "    raise _MemoryFault(sp, 'stack overflow')",
            f"store(sp, {expr})",
        ]
        return lines
    if opcode is Opcode.POP:
        dst = ops[0]
        if not isinstance(dst, Reg):
            return None
        return [
            f"sp = regs[{SP_SLOT}]",
            "_v = load(sp)",
            f"regs[{SP_SLOT}] = sp + 1",
            f"regs[{REG_SLOT[dst.name]}] = _v",
        ]
    if opcode in ARITHMETIC:
        dst, src = ops[0], ops[1]
        if not isinstance(dst, Reg):
            return None
        slot = REG_SLOT[dst.name]
        src_expr = _value_expr(src)
        if src_expr is None:
            return None
        symbol = _ARITH_SYMBOLS.get(opcode)
        if symbol is not None:
            return [f"regs[{slot}] {symbol}= {src_expr}"]
        helper = "_sdiv" if opcode is Opcode.DIV else "_smod"
        return [f"regs[{slot}] = {helper}(regs[{slot}], {src_expr})"]
    if opcode is Opcode.NEG:
        dst = ops[0]
        if not isinstance(dst, Reg):
            return None
        slot = REG_SLOT[dst.name]
        return [f"regs[{slot}] = -regs[{slot}]"]
    if opcode is Opcode.NOT:
        dst = ops[0]
        if not isinstance(dst, Reg):
            return None
        slot = REG_SLOT[dst.name]
        return [f"regs[{slot}] = 0 if regs[{slot}] else 1"]
    if opcode in (Opcode.CMP, Opcode.TEST):
        a_expr = _value_expr(ops[0])
        b_expr = _value_expr(ops[1])
        if a_expr is None or b_expr is None:
            return None
        combine = "-" if opcode is Opcode.CMP else "&"
        return [
            f"_v = ({a_expr}) {combine} ({b_expr})",
            "m.zero_flag = _v == 0",
            "m.sign_flag = _v < 0",
        ]
    return None


def _emit_jump(ins: Instruction, addr: int) -> Optional[List[str]]:
    """Emit a block-terminating JMP/Jcc with a statically resolved target."""
    target = _resolved_jump_target(ins)
    if target is None:
        return None
    if ins.opcode is Opcode.JMP:
        return [f"return {target}"]
    return [f"return {target} if {_JCC_FLAG_EXPR[ins.opcode]} else {addr + 1}"]


def _emit_cmp_jcc(
    cmp_ins: Instruction, jcc_ins: Instruction, jcc_addr: int, flags_live: bool
) -> Optional[List[str]]:
    """Emit a fused CMP/TEST + Jcc terminator.

    With dead flags the pair collapses to one comparison and a branch —
    no flag stores at all; with live flags the stores stay, matching the
    oracle bit for bit on the snapshot paths that capture flags.
    """
    target = _resolved_jump_target(jcc_ins)
    if target is None or len(cmp_ins.operands) < 2:
        return None
    a_expr = _value_expr(cmp_ins.operands[0])
    b_expr = _value_expr(cmp_ins.operands[1])
    if a_expr is None or b_expr is None:
        return None
    compare = _JCC_CMP_OP[jcc_ins.opcode]
    next_pc = jcc_addr + 1
    if cmp_ins.opcode is Opcode.CMP and not flags_live:
        return [f"return {target} if ({a_expr}) {compare} ({b_expr}) else {next_pc}"]
    combine = "-" if cmp_ins.opcode is Opcode.CMP else "&"
    lines = [f"_v = ({a_expr}) {combine} ({b_expr})"]
    if flags_live:
        lines += ["m.zero_flag = _v == 0", "m.sign_flag = _v < 0"]
    lines.append(f"return {target} if _v {compare} 0 else {next_pc}")
    return lines


#: A block item: inlined source statements, or a per-instruction closure to
#: call.  Items are indexed by instruction offset within the block (a fused
#: CMP+Jcc is the last item and covers two instructions; a trap inside it can
#: only come from the CMP half, so offset attribution stays exact).
BlockItem = Tuple[str, Any]


def _generate_superclosure(items: List[BlockItem], base: int, fall_through: int) -> StepFn:
    """Generate one function executing a whole basic block.

    The happy path hoists ``m.regs``/``m._mem_load``/``m._mem_store`` into
    locals once and runs the inlined instruction bodies with **zero**
    per-instruction bookkeeping.  When anything traps, the handler recovers
    which instruction raised from the traceback's line number (the exception
    propagated through this frame, so ``tb_lineno`` is the line of the
    failing statement) and publishes the trap point as ``m.pc`` /
    ``m._block_executed`` so the machine loop can attribute steps, coverage,
    and trace exactly as the per-step oracle would.
    """
    namespace: dict = {
        "_sdiv": _signed_div,
        "_smod": _signed_mod,
        "_MemoryFault": MemoryFault,
        "_exc_info": sys.exc_info,
    }
    lines = [
        "def _fused(m):",
        "    regs = m.regs",
        "    load = m._mem_load",
        "    store = m._mem_store",
        "    try:",
    ]
    line_map: dict = {}
    last_index = len(items) - 1
    returned = False
    for index, (kind, payload) in enumerate(items):
        start = len(lines) + 1
        if kind == "call":
            name = f"_s{index}"
            namespace[name] = payload
            if index == last_index:
                lines.append(f"        return {name}(m)")
                returned = True
            else:
                lines.append(f"        {name}(m)")
        else:
            for statement in payload:
                lines.append("        " + statement)
            if payload and payload[-1].lstrip().startswith("return"):
                returned = True
        for line_number in range(start, len(lines) + 1):
            line_map[line_number] = index
    if not returned:
        lines.append(f"        return {fall_through}")
    lines += [
        "    except BaseException:",
        "        index = _lines[_exc_info()[2].tb_lineno]",
        f"        m.pc = {base} + index",
        "        m._block_executed = index + 1",
        "        raise",
    ]
    namespace["_lines"] = line_map
    exec(compile("\n".join(lines), f"<superclosure@{base:#x}>", "exec"), namespace)
    return namespace["_fused"]


def compile_blocks(
    binary: BinaryImage, program: List[StepFn]
) -> Tuple[List[Optional[StepFn]], List[int]]:
    """Fuse straight-line runs of *program* into superclosures.

    Returns ``(fused, lengths)`` arrays indexed by address: ``fused[a]`` is
    a superclosure covering ``lengths[a]`` consecutive instructions starting
    at ``a``, or ``None`` where execution must take the per-instruction
    path.  Blocks never span a leader (so statically-known jumps always land
    on a block start), never contain CALL/RET/HALT, and may end with a jump
    — preferentially a CMP+Jcc pair fused into a single branch closure.
    """
    instructions = binary.instructions
    leaders = binary.block_leaders()
    size = len(instructions)
    fused: List[Optional[StepFn]] = [None] * size
    lengths = [0] * size
    computed_jumps = _has_computed_jump(instructions)
    position = 0
    while position < size:
        start = position
        run: List[BlockItem] = []
        while (
            position < size
            and len(run) < _MAX_BLOCK
            and (position == start or position not in leaders)
            and instructions[position].opcode in _FUSIBLE_OPCODES
        ):
            body = _emit_instruction(instructions[position])
            run.append(
                ("inline", body) if body is not None else ("call", program[position])
            )
            position += 1
        if not run:
            position += 1
            continue
        items = run
        block_length = len(run)
        if position < size and position not in leaders and len(run) < _MAX_BLOCK:
            terminator = instructions[position]
            t_opcode = terminator.opcode
            if t_opcode in _CONDITIONAL_JUMPS and instructions[position - 1].opcode in (
                Opcode.CMP,
                Opcode.TEST,
            ):
                target = _resolved_jump_target(terminator)
                flags_live = computed_jumps or target is None or _flags_live_after(
                    instructions, (target, position + 1)
                )
                try:
                    pair_lines = _emit_cmp_jcc(
                        instructions[position - 1], terminator, position, flags_live
                    )
                    pair = (
                        None
                        if pair_lines is not None
                        else _compile_cmp_jcc(
                            instructions[position - 1], terminator, position, flags_live
                        )
                    )
                except (IndexError, KeyError):
                    # Malformed operands: defer to the per-instruction
                    # closures, which raise the matching error at run time.
                    pair_lines = pair = None
                if pair_lines is not None:
                    items = run[:-1] + [("inline", pair_lines)]
                elif pair is not None:
                    items = run[:-1] + [("call", pair)]
                else:
                    items = run + [("call", program[position])]
                block_length += 1
                position += 1
            elif t_opcode is Opcode.JMP or t_opcode in _CONDITIONAL_JUMPS:
                jump_lines = _emit_jump(terminator, position)
                items = run + [
                    ("inline", jump_lines)
                    if jump_lines is not None
                    else ("call", program[position])
                ]
                block_length += 1
                position += 1
        if block_length >= 2:
            fused[start] = _generate_superclosure(items, start, start + block_length)
            lengths[start] = block_length
    return fused, lengths


def compiled_blocks(
    binary: BinaryImage,
) -> Tuple[List[Optional[StepFn]], List[int]]:
    """The superclosure arrays for *binary*, built at most once per image.

    Cached alongside :func:`compiled_program`'s closure array and tied to it
    by identity, so a recompiled program (length change, cache eviction)
    invalidates the blocks too.
    """
    program = compiled_program(binary)
    cached = getattr(binary, "_compiled_blocks", None)
    if cached is None or cached[2] is not program:
        fused, lengths = compile_blocks(binary, program)
        cached = (fused, lengths, program)
        binary._compiled_blocks = cached
    return cached[0], cached[1]


def compiled_program(binary: BinaryImage) -> List[StepFn]:
    """The compiled program for *binary*, built at most once per image.

    The closure array is cached on the image itself, so every sharing layer
    — the process-wide artifact cache, :class:`CompiledTarget`'s binary
    cache, campaign workers reusing one image — gets the predecoded program
    for free.  ``BinaryImage`` stores its instruction stream as a tuple, so
    the cache cannot go stale; the length guard is belt-and-braces for
    exotic images built outside the tool chain.
    """
    program = getattr(binary, "_compiled_program", None)
    if program is None or len(program) != len(binary.instructions):
        program = compile_program(binary)
        binary._compiled_program = program
    return program


__all__ = [
    "ARITHMETIC",
    "Frame",
    "REGISTER_NAMES",
    "REG_SLOT",
    "RETURN_SENTINEL",
    "RegisterFile",
    "VMError",
    "compile_blocks",
    "compile_program",
    "compiled_blocks",
    "compiled_program",
]
