"""Word-addressed memory with a guarded NULL page and copy-on-write forks.

Loads and stores in the NULL page raise
:class:`~repro.oslib.errors.MemoryFault`, which the VM reports as a
segmentation fault — this is the mechanism behind every "crash due to
unchecked NULL return" bug in the paper's Table 1.

Two backing stores sit behind one address space:

* a flat array for the hot top of the stack segment (where every ``push``,
  ``pop``, spilled local, and library-call argument read lands), and
* a sparse dict for everything else (data segment, heap, and the cold
  remainder of a very deep stack).

The split is invisible to callers: the VM always passes plain ``int``
addresses and values, so the old defensive ``int()`` coercions on the hot
path are gone (``peek``/``poke``, the debugger-facing entry points, still
coerce).

Copy-on-write checkpoints (the substrate of the forkserver-style snapshot
engine in :mod:`repro.vm.snapshot`): after :meth:`Memory.checkpoint` the
current contents become a shared base image and subsequent stores record
the overwritten word in a per-fork overlay journal — the first write to an
address saves its base value, later writes to the same address are free.
:meth:`Memory.rewind` plays the journal backwards, so restoring a fork
costs **O(dirty words)**, not O(image): a run that touched 200 words undoes
200 entries no matter how large the data segment or stack window are.
Checkpoints nest (boot snapshot below per-step snapshots); rewinding to a
level discards every level above it and leaves that level active for the
next fork.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.isa import layout
from repro.oslib.errors import MemoryFault

#: Addresses below this are the guarded NULL page (negatives included:
#: ``address < _NULL_LIMIT`` is exactly ``layout.is_null_page(address)``).
_NULL_LIMIT = layout.NULL_GUARD_LIMIT

#: The array-backed window: the top 16K words of the stack segment.  Mini-C
#: programs use a few hundred words of stack; anything deeper silently falls
#: back to the sparse dict.
_STACK_TOP = layout.STACK_TOP
_STACK_WINDOW = 1 << 14
_STACK_BASE = _STACK_TOP - _STACK_WINDOW

#: Journal marker for "this address did not exist in the base image".
_ABSENT = object()


class _JournalFrame:
    """Per-checkpoint overlay: first-touch original values since the mark."""

    __slots__ = ("words", "stack", "load_count", "store_count")

    def __init__(self, load_count: int, store_count: int) -> None:
        self.words: Dict[int, object] = {}
        self.stack: Dict[int, int] = {}
        self.load_count = load_count
        self.store_count = store_count


class Memory:
    """Sparse word-addressed memory with an array-backed stack window."""

    def __init__(self, initial: Optional[Dict[int, int]] = None) -> None:
        self._words: Dict[int, int] = dict(initial or {})
        self._stack = [0] * _STACK_WINDOW
        self.load_count = 0
        self.store_count = 0
        #: Checkpoint journal (innermost last); ``None`` undo refs when no
        #: checkpoint is active keep the non-snapshot store path branch-cheap.
        self._journal: List[_JournalFrame] = []
        self._word_undo: Optional[Dict[int, object]] = None
        self._stack_undo: Optional[Dict[int, int]] = None
        if self._words:
            # Initial images normally only populate the data segment, but
            # route any stack-window words to the array so both stores never
            # disagree about one address.
            for address in [a for a in self._words if _STACK_BASE <= a < _STACK_TOP]:
                self._stack[address - _STACK_BASE] = self._words.pop(address)

    def load(self, address: int) -> int:
        if _STACK_BASE <= address < _STACK_TOP:
            self.load_count += 1
            return self._stack[address - _STACK_BASE]
        if address < _NULL_LIMIT:
            raise MemoryFault(address, "load from unmapped (NULL page) address")
        self.load_count += 1
        return self._words.get(address, 0)

    def store(self, address: int, value: int) -> None:
        if _STACK_BASE <= address < _STACK_TOP:
            self.store_count += 1
            index = address - _STACK_BASE
            undo = self._stack_undo
            if undo is not None and index not in undo:
                undo[index] = self._stack[index]
            self._stack[index] = value
            return
        if address < _NULL_LIMIT:
            raise MemoryFault(address, "store to unmapped (NULL page) address")
        self.store_count += 1
        undo = self._word_undo
        if undo is not None and address not in undo:
            undo[address] = self._words.get(address, _ABSENT)
        self._words[address] = value

    # Unchecked variants used by debuggers/tests to peek without counting.
    def peek(self, address: int, default: int = 0) -> int:
        address = int(address)
        if _STACK_BASE <= address < _STACK_TOP:
            # The whole stack window is mapped, so the stored word — zero
            # included — is the answer; ``default`` only stands in for
            # genuinely unmapped sparse addresses (keeps ``peek`` consistent
            # with ``load``, which returns 0 for untouched stack slots).
            return self._stack[address - _STACK_BASE]
        return self._words.get(address, default)

    def poke(self, address: int, value: int) -> None:
        address = int(address)
        if _STACK_BASE <= address < _STACK_TOP:
            index = address - _STACK_BASE
            undo = self._stack_undo
            if undo is not None and index not in undo:
                undo[index] = self._stack[index]
            self._stack[index] = int(value)
            return
        undo = self._word_undo
        if undo is not None and address not in undo:
            undo[address] = self._words.get(address, _ABSENT)
        self._words[address] = int(value)

    def read_string(self, address: int, limit: int = 4096) -> str:
        chars = []
        for offset in range(limit):
            word = self.load(address + offset)
            if word == 0:
                break
            chars.append(chr(word & 0x10FFFF))
        return "".join(chars)

    def write_string(self, address: int, text: str) -> None:
        for index, char in enumerate(text):
            self.store(address + index, ord(char))
        self.store(address + len(text), 0)

    # ------------------------------------------------------------------
    # copy-on-write checkpoints
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Mark the current contents as a shared base image; return the level.

        Subsequent stores journal the first-touch original of each address
        (the per-fork overlay); :meth:`rewind` with the returned level puts
        the memory back to this exact state in O(dirty words).
        """
        frame = _JournalFrame(self.load_count, self.store_count)
        self._journal.append(frame)
        self._word_undo = frame.words
        self._stack_undo = frame.stack
        return len(self._journal) - 1

    def rewind(self, level: int = 0) -> int:
        """Restore the state captured by ``checkpoint()`` number *level*.

        Checkpoints above *level* are discarded; *level* itself stays active
        so the next fork can rewind to it again.  Returns the number of
        dirty words undone (observability for the snapshot benchmarks).
        """
        journal = self._journal
        if not 0 <= level < len(journal):
            raise ValueError(
                f"no memory checkpoint at level {level} (have {len(journal)})"
            )
        dirty = 0
        words = self._words
        stack = self._stack
        for frame in reversed(journal[level:]):
            dirty += len(frame.words) + len(frame.stack)
            for index, value in frame.stack.items():
                stack[index] = value
            for address, value in frame.words.items():
                if value is _ABSENT:
                    words.pop(address, None)
                else:
                    words[address] = value
        keep = journal[level]
        del journal[level + 1 :]
        keep.words.clear()
        keep.stack.clear()
        self.load_count = keep.load_count
        self.store_count = keep.store_count
        self._word_undo = keep.words
        self._stack_undo = keep.stack
        return dirty

    def delta_since(self, level: int = 0) -> Dict[int, int]:
        """Current values of every address written since checkpoint *level*.

        The journal frames above *level* name exactly the dirty addresses;
        the returned mapping pairs each with its **current** contents, so a
        mid-run machine state can be re-materialized later — after the base
        checkpoint has been rewound for other forks — by replaying the
        delta over the base image (again O(dirty words)).
        """
        if not 0 <= level < len(self._journal):
            raise ValueError(
                f"no memory checkpoint at level {level} (have {len(self._journal)})"
            )
        delta: Dict[int, int] = {}
        for frame in self._journal[level:]:
            for address in frame.words:
                delta[address] = self._words[address]
            for index in frame.stack:
                delta[_STACK_BASE + index] = self._stack[index]
        return delta

    @property
    def checkpoint_depth(self) -> int:
        return len(self._journal)

    def dirty_word_count(self) -> int:
        """Words the active fork has overwritten since its checkpoint."""
        if self._word_undo is None:
            return 0
        return len(self._word_undo) + len(self._stack_undo or ())

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[int, int]:
        merged = dict(self._words)
        for index, value in enumerate(self._stack):
            if value:
                merged[_STACK_BASE + index] = value
        return merged

    def __len__(self) -> int:
        return len(self._words) + sum(1 for value in self._stack if value)


__all__ = ["Memory"]
