"""Word-addressed memory with a guarded NULL page.

Loads and stores in the NULL page raise
:class:`~repro.oslib.errors.MemoryFault`, which the VM reports as a
segmentation fault — this is the mechanism behind every "crash due to
unchecked NULL return" bug in the paper's Table 1.

Two backing stores sit behind one address space:

* a flat array for the hot top of the stack segment (where every ``push``,
  ``pop``, spilled local, and library-call argument read lands), and
* a sparse dict for everything else (data segment, heap, and the cold
  remainder of a very deep stack).

The split is invisible to callers: the VM always passes plain ``int``
addresses and values, so the old defensive ``int()`` coercions on the hot
path are gone (``peek``/``poke``, the debugger-facing entry points, still
coerce).  One caveat of the array backing: a stack slot explicitly written
with ``0`` is indistinguishable from one never touched, so ``snapshot()``
and ``len()`` only report *non-zero* stack words, and ``peek`` returns its
``default`` for a stack slot holding ``0``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.isa import layout
from repro.oslib.errors import MemoryFault

#: Addresses below this are the guarded NULL page (negatives included:
#: ``address < _NULL_LIMIT`` is exactly ``layout.is_null_page(address)``).
_NULL_LIMIT = layout.NULL_GUARD_LIMIT

#: The array-backed window: the top 16K words of the stack segment.  Mini-C
#: programs use a few hundred words of stack; anything deeper silently falls
#: back to the sparse dict.
_STACK_TOP = layout.STACK_TOP
_STACK_WINDOW = 1 << 14
_STACK_BASE = _STACK_TOP - _STACK_WINDOW


class Memory:
    """Sparse word-addressed memory with an array-backed stack window."""

    def __init__(self, initial: Optional[Dict[int, int]] = None) -> None:
        self._words: Dict[int, int] = dict(initial or {})
        self._stack = [0] * _STACK_WINDOW
        self.load_count = 0
        self.store_count = 0
        if self._words:
            # Initial images normally only populate the data segment, but
            # route any stack-window words to the array so both stores never
            # disagree about one address.
            for address in [a for a in self._words if _STACK_BASE <= a < _STACK_TOP]:
                self._stack[address - _STACK_BASE] = self._words.pop(address)

    def load(self, address: int) -> int:
        if _STACK_BASE <= address < _STACK_TOP:
            self.load_count += 1
            return self._stack[address - _STACK_BASE]
        if address < _NULL_LIMIT:
            raise MemoryFault(address, "load from unmapped (NULL page) address")
        self.load_count += 1
        return self._words.get(address, 0)

    def store(self, address: int, value: int) -> None:
        if _STACK_BASE <= address < _STACK_TOP:
            self.store_count += 1
            self._stack[address - _STACK_BASE] = value
            return
        if address < _NULL_LIMIT:
            raise MemoryFault(address, "store to unmapped (NULL page) address")
        self.store_count += 1
        self._words[address] = value

    # Unchecked variants used by debuggers/tests to peek without counting.
    def peek(self, address: int, default: int = 0) -> int:
        address = int(address)
        if _STACK_BASE <= address < _STACK_TOP:
            value = self._stack[address - _STACK_BASE]
            return value if value else default
        return self._words.get(address, default)

    def poke(self, address: int, value: int) -> None:
        address = int(address)
        if _STACK_BASE <= address < _STACK_TOP:
            self._stack[address - _STACK_BASE] = int(value)
            return
        self._words[address] = int(value)

    def read_string(self, address: int, limit: int = 4096) -> str:
        chars = []
        for offset in range(limit):
            word = self.load(address + offset)
            if word == 0:
                break
            chars.append(chr(word & 0x10FFFF))
        return "".join(chars)

    def write_string(self, address: int, text: str) -> None:
        for index, char in enumerate(text):
            self.store(address + index, ord(char))
        self.store(address + len(text), 0)

    def snapshot(self) -> Dict[int, int]:
        merged = dict(self._words)
        for index, value in enumerate(self._stack):
            if value:
                merged[_STACK_BASE + index] = value
        return merged

    def __len__(self) -> int:
        return len(self._words) + sum(1 for value in self._stack if value)


__all__ = ["Memory"]
