"""Word-addressed memory with a guarded NULL page.

Loads and stores in the NULL page raise
:class:`~repro.oslib.errors.MemoryFault`, which the VM reports as a
segmentation fault — this is the mechanism behind every "crash due to
unchecked NULL return" bug in the paper's Table 1.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.isa import layout
from repro.oslib.errors import MemoryFault


class Memory:
    """Sparse word-addressed memory."""

    def __init__(self, initial: Optional[Dict[int, int]] = None) -> None:
        self._words: Dict[int, int] = dict(initial or {})
        self.load_count = 0
        self.store_count = 0

    def load(self, address: int) -> int:
        address = int(address)
        if layout.is_null_page(address):
            raise MemoryFault(address, "load from unmapped (NULL page) address")
        self.load_count += 1
        return self._words.get(address, 0)

    def store(self, address: int, value: int) -> None:
        address = int(address)
        if layout.is_null_page(address):
            raise MemoryFault(address, "store to unmapped (NULL page) address")
        self.store_count += 1
        self._words[address] = int(value)

    # Unchecked variants used by debuggers/tests to peek without counting.
    def peek(self, address: int, default: int = 0) -> int:
        return self._words.get(int(address), default)

    def poke(self, address: int, value: int) -> None:
        self._words[int(address)] = int(value)

    def read_string(self, address: int, limit: int = 4096) -> str:
        chars = []
        for offset in range(limit):
            word = self.load(address + offset)
            if word == 0:
                break
            chars.append(chr(word & 0x10FFFF))
        return "".join(chars)

    def write_string(self, address: int, text: str) -> None:
        for index, char in enumerate(text):
            self.store(address + index, ord(char))
        self.store(address + len(text), 0)

    def snapshot(self) -> Dict[int, int]:
        return dict(self._words)

    def __len__(self) -> int:
        return len(self._words)


__all__ = ["Memory"]
