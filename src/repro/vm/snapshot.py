"""Forkserver-style snapshot/restore of full VM run state.

LFI campaigns run the same workload once per fault scenario, and every run
repeats an identical prefix — target boot, fixture setup, every instruction
up to the armed trigger — before the injection diverges.  This module makes
that prefix a one-time cost, the same amortization a forkserver gives a
fuzzing harness:

* :class:`MachineSnapshot` captures the **complete** observable state of a
  run — registers, pc, flags, call frames, step counter, trace, memory
  (copy-on-write: the :class:`~repro.vm.memory.Memory` journal makes the
  restore O(dirty words), not O(image)), the whole
  :class:`~repro.oslib.os_model.SimOS` (filesystem, heap, network, clock,
  environment, mutexes, streams, counters), libc errno, and — when present
  — coverage counts and gate/injection-runtime state.  ``restore()``
  produces a machine observably identical to a freshly built one, which the
  differential suite (``tests/test_snapshot.py``) pins down.
* :class:`BootTemplate` keeps one resident machine per (target, workload)
  whose boot snapshot is restored per request instead of rebuilding the OS
  fixture, libc, and machine from scratch —
  :func:`repro.core.profiler.cache.cached_boot_template` memoizes these
  process-wide.
* :func:`capture_gate_state` / :func:`graft_gate_state` snapshot the
  library-call gate (counters, injection log, lazily instantiated trigger
  state) so the prefix-sharing campaign scheduler
  (:mod:`repro.core.controller.prefix`) can hand a shared prefix's
  interception state to each scenario's own gate before running only the
  post-trigger suffix.

Everything here is duck-typed against the gate/runtime/coverage interfaces
rather than importing them: the VM layer stays importable without the
controller stack, and a custom gate that does not expose the standard state
is simply reported as uncapturable (``capture_gate_state`` returns ``None``)
so callers fall back to the reference rebuild path.
"""

from __future__ import annotations

import copy
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.vm.dispatch import Frame
from repro.vm.machine import Machine, _NO_RUNTIME

#: Gate attributes that must exist for its state to be capturable.
_GATE_COUNTERS = (
    "total_calls",
    "intercepted_calls",
    "injected_calls",
    "observed_injections",
)


# ----------------------------------------------------------------------
# gate / injection-runtime state
# ----------------------------------------------------------------------
def capture_gate_state(gate: Any) -> Optional[Dict[str, Any]]:
    """Snapshot a library-call gate's mutable state, or ``None``.

    ``None`` means the gate (or its runtime) does not expose the standard
    interface and cannot be captured — callers must then treat the run as
    unshareable and fall back to fresh execution.
    """
    if gate is None:
        return None
    call_counts = getattr(gate, "call_counts", None)
    log = getattr(gate, "log", None)
    if not isinstance(call_counts, dict) or log is None:
        return None
    if any(not hasattr(gate, name) for name in _GATE_COUNTERS):
        return None
    runtime = getattr(gate, "runtime", None)
    runtime_state: Optional[Dict[str, Any]] = None
    if runtime is not None:
        instances = getattr(runtime, "_instances", None)
        if not isinstance(instances, dict):
            return None
        runtime_state = {
            "instances": copy.deepcopy(instances),
            "trigger_evaluations": getattr(runtime, "trigger_evaluations", 0),
            "decisions": getattr(runtime, "decisions", 0),
            "injections": getattr(runtime, "injections", 0),
        }
    return {
        "call_counts": dict(call_counts),
        "counters": {name: getattr(gate, name) for name in _GATE_COUNTERS},
        "log": {
            "records": copy.deepcopy(log.records),
            "injection_count": log.injection_count,
            "passthrough_count": log.passthrough_count,
            "next_index": log._next_index,
        },
        "runtime": runtime_state,
    }


def graft_gate_state(state: Dict[str, Any], gate: Any) -> None:
    """Install a captured gate state onto *gate* (possibly a different one).

    The prefix-sharing scheduler runs a scenario group's common prefix once
    and then grafts the resulting interception state — per-function call
    counts, log contents, trigger-instance counters — onto each member
    scenario's freshly built gate, whose runtime differs from the probe's
    only in the fault it will inject.  Trigger instances are deep-copied per
    graft so members never share mutable trigger state.
    """
    gate.call_counts.clear()
    gate.call_counts.update(state["call_counts"])
    for name, value in state["counters"].items():
        setattr(gate, name, value)
    log_state = state["log"]
    log = gate.log
    log.records[:] = copy.deepcopy(log_state["records"])
    log.injection_count = log_state["injection_count"]
    log.passthrough_count = log_state["passthrough_count"]
    log._next_index = log_state["next_index"]
    runtime_state = state["runtime"]
    runtime = getattr(gate, "runtime", None)
    if runtime_state is not None and runtime is not None:
        runtime._instances = copy.deepcopy(runtime_state["instances"])
        runtime.trigger_evaluations = runtime_state["trigger_evaluations"]
        runtime.decisions = runtime_state["decisions"]
        runtime.injections = runtime_state["injections"]


# ----------------------------------------------------------------------
# the machine snapshot
# ----------------------------------------------------------------------
class MachineSnapshot:
    """Full-state capture of a resident :class:`~repro.vm.machine.Machine`.

    The snapshot is bound to the machine it was taken from: memory is
    captured as a copy-on-write checkpoint inside the machine's own
    :class:`~repro.vm.memory.Memory` (restore = journal rewind, O(dirty
    words)), and ``restore()`` rewrites that same machine in place —
    every reference to the machine, its OS, and its libc stays valid.
    """

    def __init__(
        self,
        machine: Machine,
        include_gate: bool = True,
        include_coverage: bool = True,
    ) -> None:
        self.machine = machine
        self.memory_level = machine.memory.checkpoint()
        self.regs: List[int] = list(machine.regs)
        self.zero_flag = machine.zero_flag
        self.sign_flag = machine.sign_flag
        self.pc = machine.pc
        self.steps = machine.steps
        self.frames: List[Tuple[str, Optional[int], int]] = [
            (frame.function, frame.call_address, frame.return_address)
            for frame in machine.frames
        ]
        self.trace: Optional[List[int]] = (
            list(machine.trace) if machine.trace is not None else None
        )
        self.local_call_counts = dict(machine._local_call_counts)
        self.os_state = machine.os.capture_state()
        self.libc_errno = machine.libc.errno
        self.libc_errno_reads = getattr(machine.libc, "errno_reads", None)
        self.libc_assert_messages = list(machine.libc.assert_messages)
        self.coverage_state = (
            machine.coverage.capture_state()
            if include_coverage and hasattr(machine.coverage, "capture_state")
            else None
        )
        self.gate_state = capture_gate_state(machine.gate) if include_gate else None

    @classmethod
    def capture(cls, machine: Machine, **kwargs) -> "MachineSnapshot":
        return cls(machine, **kwargs)

    # ------------------------------------------------------------------
    def restore_execution_state(self) -> Machine:
        """Restore the machine core only: memory, registers, pc, frames.

        This is the per-fork hot path (one journal rewind plus a few list
        copies); OS/libc/gate/coverage state is left alone so a caller can
        restore those at a coarser cadence (once per request rather than
        once per workload step).
        """
        machine = self.machine
        machine.memory.rewind(self.memory_level)
        machine.regs[:] = self.regs
        machine.zero_flag = self.zero_flag
        machine.sign_flag = self.sign_flag
        machine.pc = self.pc
        machine.steps = self.steps
        machine.frames = [
            Frame(function=function, call_address=call_address, return_address=return_address)
            for function, call_address, return_address in self.frames
        ]
        machine.trace = list(self.trace) if self.trace is not None else None
        machine._local_call_counts = dict(self.local_call_counts)
        machine._mask_runtime = _NO_RUNTIME
        machine._handled_mask = frozenset()
        return machine

    def restore(self) -> Machine:
        """Full restore: machine core, OS, libc, and captured gate/coverage.

        Produces a machine observably identical to a freshly built one (or,
        for mid-run snapshots, to one that executed exactly the captured
        prefix) — the contract the differential suite enforces.
        """
        machine = self.restore_execution_state()
        machine.os.restore_state(self.os_state)
        machine.libc.errno = self.libc_errno
        if self.libc_errno_reads is not None:
            machine.libc.errno_reads = self.libc_errno_reads
        machine.libc.assert_messages[:] = list(self.libc_assert_messages)
        if self.coverage_state is not None and machine.coverage is not None:
            machine.coverage.restore_state(self.coverage_state)
        if self.gate_state is not None and machine.gate is not None:
            graft_gate_state(self.gate_state, machine.gate)
        return machine


# ----------------------------------------------------------------------
# mid-run captures (instruction-level prefix sharing)
# ----------------------------------------------------------------------
#: Sentinel distinguishing "graft the capture's own gate state" from an
#: explicit ``gate_state=None`` (graft nothing).
_DEFAULT_GATE_STATE = object()


class MidRunCapture:
    """Machine state at an arbitrary mid-run point, restorable repeatedly.

    Where :class:`MachineSnapshot` anchors a live journal checkpoint (and
    therefore dies when an outer checkpoint is rewound), a mid-run capture
    materializes the **delta** against a base checkpoint: the current value
    of every word dirtied since boot (O(dirty words), by construction of
    the copy-on-write journal).  Restoring rewinds to the base and replays
    the delta, so the same capture can be restored any number of times, in
    any order with other forks of the same resident machine.

    This is what lets the prefix-sharing scheduler capture the machine at
    the exact moment a scenario's trigger fires — mid-instruction-stream,
    inside a library call — and later resume each sibling scenario from
    that point with its own fault, skipping every instruction of the
    common prefix.
    """

    def __init__(self, machine: Machine, base_level: int = 0) -> None:
        memory = machine.memory
        self.machine = machine
        self.base_level = base_level
        self.memory_delta = memory.delta_since(base_level)
        self.mem_load_count = memory.load_count
        self.mem_store_count = memory.store_count
        self.regs: List[int] = list(machine.regs)
        self.zero_flag = machine.zero_flag
        self.sign_flag = machine.sign_flag
        self.pc = machine.pc
        self.steps = machine.steps
        self.frames: List[Tuple[str, Optional[int], int]] = [
            (frame.function, frame.call_address, frame.return_address)
            for frame in machine.frames
        ]
        self.trace: Optional[List[int]] = (
            list(machine.trace) if machine.trace is not None else None
        )
        self.local_call_counts = dict(machine._local_call_counts)
        self.os_state = machine.os.capture_state()
        self.libc_errno = machine.libc.errno
        self.libc_errno_reads = getattr(machine.libc, "errno_reads", None)
        self.libc_assert_messages = list(machine.libc.assert_messages)
        self.coverage_state = (
            machine.coverage.capture_state()
            if hasattr(machine.coverage, "capture_state")
            else None
        )
        self.gate_state = capture_gate_state(machine.gate)

    def restore(
        self, gate: Any, coverage: Any, gate_state: Any = _DEFAULT_GATE_STATE
    ) -> Machine:
        """Put the resident machine back at the capture point, for *gate*.

        The fork's own gate receives the captured interception state via
        :func:`graft_gate_state`; a fresh coverage tracker (when given) is
        loaded with the captured counts.  ``gate_state`` substitutes a
        different captured gate state for the graft — the prefix-sharing
        scheduler passes the *pre-call* state when a later-rank member will
        re-execute the intercepted call through its own gate instead of
        replaying the probe's injection.
        """
        machine = self.machine
        memory = machine.memory
        memory.rewind(self.base_level)
        for address, value in self.memory_delta.items():
            memory.poke(address, value)
        memory.load_count = self.mem_load_count
        memory.store_count = self.mem_store_count
        machine.regs[:] = self.regs
        machine.zero_flag = self.zero_flag
        machine.sign_flag = self.sign_flag
        machine.pc = self.pc
        machine.steps = self.steps
        machine.frames = [
            Frame(function=function, call_address=call_address, return_address=return_address)
            for function, call_address, return_address in self.frames
        ]
        machine.trace = list(self.trace) if self.trace is not None else None
        machine.os.restore_state(self.os_state)
        machine.libc.errno = self.libc_errno
        if self.libc_errno_reads is not None:
            machine.libc.errno_reads = self.libc_errno_reads
        machine.libc.assert_messages[:] = list(self.libc_assert_messages)
        if coverage is not None and self.coverage_state is not None:
            coverage.restore_state(self.coverage_state)
        if gate_state is _DEFAULT_GATE_STATE:
            gate_state = self.gate_state
        if gate is not None and gate_state is not None:
            graft_gate_state(gate_state, gate)
        machine.rebind(gate=gate, coverage=coverage)
        machine._local_call_counts = dict(self.local_call_counts)
        return machine


# ----------------------------------------------------------------------
# boot templates (the forkserver residents)
# ----------------------------------------------------------------------
class BootTemplate:
    """One resident machine plus its boot snapshot, reused across requests.

    The template is built once per (target, workload): OS fixture, libc,
    machine construction, and instruction predecoding are all paid a single
    time, then every request restores the boot snapshot (O(dirty words))
    instead of rebuilding.  Templates are **not** concurrency-safe — a
    campaign thread takes the template with :meth:`try_acquire` and anyone
    who loses the race falls back to the fresh-build path, which is
    observably identical by construction.
    """

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.snapshot = MachineSnapshot.capture(machine)
        self.restores = 0
        self._lock = threading.Lock()

    def try_acquire(self) -> bool:
        return self._lock.acquire(blocking=False)

    def release(self) -> None:
        self._lock.release()

    def restore_boot(self) -> Machine:
        """Rewind OS, libc, and machine to the boot state (request start)."""
        self.restores += 1
        return self.snapshot.restore()

    def fork_step(self, gate: Any, coverage: Any) -> Machine:
        """Hand out the resident machine for one workload step.

        Memory and the machine core rewind to boot (fresh-machine
        semantics: each workload step starts from a pristine data segment
        and stack, exactly like constructing a new :class:`Machine`), while
        OS/libc state carries across steps as it does in a real test-suite
        process.
        """
        machine = self.snapshot.restore_execution_state()
        machine.rebind(gate=gate, coverage=coverage)
        return machine


__all__ = [
    "BootTemplate",
    "MachineSnapshot",
    "MidRunCapture",
    "capture_gate_state",
    "graft_gate_state",
]
