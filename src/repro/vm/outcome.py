"""Process outcome reported by the VM after running a program.

The LFI controller monitors whether the program under test "terminates
normally or with an error exit code" (§2); crashes and aborts are the
high-impact outcomes the evaluation counts as bugs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class ExitKind(enum.Enum):
    NORMAL = "normal"
    ERROR_EXIT = "error-exit"
    SEGFAULT = "segfault"
    ABORT = "abort"
    MAX_STEPS = "max-steps"
    VM_ERROR = "vm-error"
    #: The simulated machine was killed mid-run (crash-consistency faults).
    #: A failure, but deliberately *not* a crash: the program did nothing
    #: wrong — the world died under it, and recovery/oracle checks still run.
    WORLD_CRASH = "world-crash"

    @property
    def is_failure(self) -> bool:
        return self not in (ExitKind.NORMAL,)

    @property
    def is_crash(self) -> bool:
        return self in (ExitKind.SEGFAULT, ExitKind.ABORT, ExitKind.VM_ERROR)


@dataclass
class ExitStatus:
    """Final state of one simulated process execution."""

    kind: ExitKind
    code: int = 0
    reason: str = ""
    steps: int = 0
    pc: Optional[int] = None
    source: str = ""
    stdout: str = ""
    stderr: str = ""
    details: dict = field(default_factory=dict)

    @property
    def crashed(self) -> bool:
        return self.kind.is_crash

    @property
    def failed(self) -> bool:
        return self.kind.is_failure

    def describe(self) -> str:
        location = f" at pc={self.pc:#x}" if self.pc is not None else ""
        if self.source:
            location += f" ({self.source})"
        return f"{self.kind.value} (code={self.code}){location}: {self.reason}".rstrip(": ")


__all__ = ["ExitKind", "ExitStatus"]
