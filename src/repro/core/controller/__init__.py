"""The LFI controller (§2).

The controller coordinates the testing process: it interprets injection
scenarios, wires the trigger runtime into the library-call gate, invokes the
target's workload, monitors whether the program terminates normally or with
an error, collects the injection log, and turns crashes/aborts observed
under injection into bug candidates.
"""

from repro.core.controller.campaign import CampaignResult, ScenarioOutcome, TestCampaign
from repro.core.controller.controller import LFIController
from repro.core.controller.prefix import (
    iter_shared_runs,
    run_scenarios_shared,
    scenario_group_key,
    sharing_supported,
)
from repro.core.controller.executor import (
    ExecutionBackend,
    ExecutionTask,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    resolve_backend,
    run_requests,
)
from repro.core.controller.monitor import Outcome, OutcomeKind, RunResult, classify_exception
from repro.core.controller.report import BugCandidate, build_bug_report
from repro.core.controller.target import TargetAdapter, WorkloadRequest

__all__ = [
    "BugCandidate",
    "CampaignResult",
    "ExecutionBackend",
    "ExecutionTask",
    "LFIController",
    "Outcome",
    "OutcomeKind",
    "ProcessPoolBackend",
    "RunResult",
    "ScenarioOutcome",
    "SerialBackend",
    "TargetAdapter",
    "TestCampaign",
    "ThreadPoolBackend",
    "WorkloadRequest",
    "build_bug_report",
    "classify_exception",
    "iter_shared_runs",
    "resolve_backend",
    "run_requests",
    "run_scenarios_shared",
    "scenario_group_key",
    "sharing_supported",
]
