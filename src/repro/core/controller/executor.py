"""Execution backends for scenario x workload batches.

LFI's evaluation (§7) is embarrassingly parallel: every injection scenario
runs against a *fresh* instance of the target, so nothing but wall-clock
time couples one run to the next.  The executor makes that parallelism an
explicit, swappable policy:

* :class:`SerialBackend` — run tasks inline, in submission order (the
  historical behaviour, and the reference semantics);
* :class:`ThreadPoolBackend` — a ``concurrent.futures`` thread pool, useful
  when target runs block on anything other than the interpreter;
* :class:`ProcessPoolBackend` — a process pool (fork-based where the
  platform allows it) that scales CPU-bound campaigns with cores.

Two properties make parallel campaigns **bit-identical** to serial ones:

1. **Deterministic ordering** — results are returned sorted by *submission*
   index, never by completion order.  A campaign's ``outcomes`` list is
   therefore independent of scheduling.
2. **Per-run seed threading** — when a campaign seed is given, each task's
   seed is derived from ``(campaign seed, submission index)`` via
   :func:`derive_run_seed` *before* the task is handed to the backend, so a
   run's randomness does not depend on which worker picks it up or when.

Backends are context managers; pools are created lazily on first use and
can be shared across campaigns (the experiment harnesses create one backend
per table and reuse it for every target).

Three task shapes exist.  :class:`ExecutionTask` is one scenario run — the
plain per-scenario fan-out.  :class:`GroupTask` is one whole **prefix
group** (see :mod:`repro.core.controller.prefix`): the worker runs the
group's probe once and resumes every sibling locally, so prefix sharing and
pool parallelism compose instead of cancelling — ``run_groups`` /
``run_groups_iter`` are the group-per-task entry points.
:class:`GroupBatchTask` is the run-to-completion shape: the campaign's
groups are sharded round-robin into one batch per worker up front
(:func:`shard_group_tasks`) and each worker drains its batch back-to-back —
warm boot template, one result message — instead of paying a pool round
trip per group; ``run_group_batches`` / ``run_group_batches_iter`` are its
entry points.
"""

from __future__ import annotations

import heapq
import math
import os
from abc import ABC, abstractmethod
from concurrent import futures
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.controller.costmodel import (
    SUFFIX_COST_FRACTION,
    CostModel,
    default_cost_model,
)
from repro.core.controller.monitor import RunResult
from repro.core.controller.target import TargetAdapter, WorkloadRequest

#: Spec values accepted wherever a ``parallelism=`` knob is exposed.
ParallelismSpec = Union[None, int, str, "ExecutionBackend"]


# ----------------------------------------------------------------------
# tasks and seed threading
# ----------------------------------------------------------------------
@dataclass
class ExecutionTask:
    """One workload run: a target, a request, and its submission index."""

    index: int
    target: TargetAdapter
    request: WorkloadRequest
    #: Per-run seed (already derived from the campaign seed and ``index``);
    #: ``None`` leaves the request untouched.
    seed: Optional[int] = None


def derive_run_seed(base_seed: Optional[int], index: int) -> Optional[int]:
    """Derive the seed for the *index*-th submitted run of a campaign.

    The derivation depends only on the campaign seed and the submission
    index — never on worker identity or completion order — which is what
    keeps parallel campaigns bit-identical to serial ones.
    """
    if base_seed is None:
        return None
    # splitmix64-style finalizer: decorrelates adjacent indices.
    value = (base_seed * 0x9E3779B97F4A7C15 + index * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 27
    return value & 0x7FFFFFFF


def execute_task(task: ExecutionTask) -> RunResult:
    """Run one task (module-level so process pools can import it)."""
    request = task.request
    if task.seed is not None:
        options = dict(request.options)
        options.setdefault("run_seed", task.seed)
        request = replace(request, options=options)
    return task.target.run(request)


@dataclass
class GroupTask:
    """One prefix group scheduled as a single backend task.

    The group-per-task fan-out unit: the whole scenario group — probe plus
    resumable siblings — executes inside one worker, so prefix sharing
    (:mod:`repro.core.controller.prefix`) composes with the pool backends
    instead of forcing a serial campaign.  ``entries`` carries the members'
    original submission indices (with per-run seeds already derived), which
    is what keeps pooled-shared results reassemblable into submission order
    and bit-identical to the serial shared path.
    """

    index: int
    target: TargetAdapter
    workload: str
    entries: List[Tuple[int, Any, Optional[int]]]
    collect_coverage: bool = False
    options: Dict[str, Any] = field(default_factory=dict)
    observe_only: bool = False


def execute_group(task: GroupTask) -> Dict[int, RunResult]:
    """Run one prefix group (module-level so process pools can import it)."""
    # Imported lazily: the prefix scheduler sits above the executor in the
    # module graph (campaigns import both), so the executor must not import
    # it at module load.
    from repro.core.controller.prefix import run_entry_group

    return run_entry_group(
        task.target,
        task.workload,
        task.entries,
        collect_coverage=task.collect_coverage,
        options=dict(task.options),
        observe_only=task.observe_only,
    )


@dataclass
class GroupBatchTask:
    """A batch of prefix groups one worker drains run-to-completion.

    The dataplane fan-out unit: where :class:`GroupTask` costs one pool
    round trip (submit, pickle the target, return the results, pick up the
    next task) *per group*, a batch ships many groups in a single task and
    the worker runs them back-to-back — warm boot template, warm predecoded
    program, one result message.  Groups in a batch keep their submission
    order, so per-run seeds and member indices are untouched and the merged
    results stay bit-identical to the group-per-task path.
    """

    index: int
    groups: List[GroupTask] = field(default_factory=list)


def execute_group_batch(batch: GroupBatchTask) -> Dict[int, RunResult]:
    """Drain one batch of groups (module-level for process pools)."""
    merged: Dict[int, RunResult] = {}
    for group in batch.groups:
        merged.update(execute_group(group))
    return merged


def shard_group_tasks(
    tasks: Sequence[GroupTask], shards: int
) -> List[GroupBatchTask]:
    """Interleave *tasks* round-robin into at most *shards* batches.

    The static ("round-robin") scheduling policy.  Round-robin rather than
    contiguous slicing: campaign builders emit groups in fault-space
    order, which correlates neighbouring groups' sizes, so contiguous
    shards would load-balance poorly.  Interleaving by sorted group index
    keeps the assignment deterministic (independent of completion order)
    while spreading heavy neighbourhoods across workers.  Every returned
    batch is non-empty — with more workers than groups the surplus
    workers get no batch at all rather than a no-op dispatch.
    """
    ordered = sorted(tasks, key=lambda task: task.index)
    if not ordered:
        return []
    shards = max(1, min(shards, len(ordered)))
    batches = [GroupBatchTask(index=index) for index in range(shards)]
    for position, task in enumerate(ordered):
        batches[position % shards].groups.append(task)
    return [batch for batch in batches if batch.groups]


# ----------------------------------------------------------------------
# cost-adaptive group scheduling
# ----------------------------------------------------------------------
# The suffix/probe cost ratio is no longer a constant: the process-wide
# CostModel (repro.core.controller.costmodel) measures per-group
# probe/suffix runtimes online — fed from _run_entry_group_direct — with
# the historical 0.35 as the prior a fresh model reproduces exactly.
# SUFFIX_COST_FRACTION is re-exported above for callers wanting the raw
# prior.

#: Accepted ``group_sched`` / ``REPRO_GROUP_SCHED`` policy names.
GROUP_SCHEDULE_POLICIES = ("adaptive", "static")


def resolve_group_schedule(policy: Optional[str] = None) -> str:
    """Normalise a group-scheduling policy name (``None`` = environment).

    ``adaptive`` (the default) is cost-model-driven splitting + LPT
    packing (:func:`plan_group_batches`); ``static`` (aliases
    ``round-robin``/``rr``) is the historical :func:`shard_group_tasks`
    interleaving.  ``REPRO_GROUP_SCHED`` sets the process default.
    """
    if policy is None:
        policy = os.environ.get("REPRO_GROUP_SCHED") or "adaptive"
    name = str(policy).strip().lower()
    if name in ("round-robin", "roundrobin", "rr"):
        name = "static"
    if name not in GROUP_SCHEDULE_POLICIES:
        raise ValueError(
            f"unknown group schedule policy {policy!r}; known policies: "
            f"{', '.join(GROUP_SCHEDULE_POLICIES)} (alias: round-robin)"
        )
    return name


def estimate_group_cost(
    task: GroupTask,
    suffix_fraction: Optional[float] = None,
    model: Optional[CostModel] = None,
) -> float:
    """Estimated cost of draining *task*, in units of one full run.

    One full probe run plus a fractional suffix per additional member.
    The fraction comes from the learned :class:`CostModel` (the
    process-wide default unless ``model`` is given) — a fresh model
    yields the 0.35 prior — or from an explicit ``suffix_fraction``
    override.  Workload length scales every group of one campaign
    equally, so it cancels out of the packing decision and is left out.
    """
    members = len(task.entries)
    if members <= 0:
        return 0.0
    if suffix_fraction is None:
        suffix_fraction = (model or default_cost_model()).suffix_fraction()
    return 1.0 + (members - 1) * suffix_fraction


def split_group_task(task: GroupTask, parts: int) -> List[GroupTask]:
    """Split one oversized group into up to *parts* contiguous sub-groups.

    Members stay in rank order and each chunk's first member becomes its
    own probe, re-resuming from the shared boot/fixture state — the
    prefix machinery executes any rank-ordered subset of a group
    bit-identically to the full group (the invariant the memo's
    miss-subgroups rely on too), so splitting trades one extra prefix run
    per chunk for parallelism across workers.  Sub-group ``index`` values
    are the parent's; callers re-number before packing.
    """
    entries = task.entries
    parts = max(1, min(int(parts), len(entries)))
    if parts == 1:
        return [task]
    base, extra = divmod(len(entries), parts)
    chunks: List[GroupTask] = []
    start = 0
    for position in range(parts):
        size = base + (1 if position < extra else 0)
        chunks.append(replace(task, entries=list(entries[start : start + size])))
        start += size
    return chunks


def plan_group_batches(
    tasks: Sequence[GroupTask],
    shards: int,
    policy: Optional[str] = None,
    model: Optional[CostModel] = None,
) -> List[GroupBatchTask]:
    """Plan the per-worker batches for a campaign's groups.

    The ``adaptive`` policy replaces static round-robin with a cost
    model: any group whose estimated cost exceeds the fair per-worker
    share is split into rank-ordered sub-groups
    (:func:`split_group_task`) so one huge errno family no longer
    serializes a whole campaign on a single worker, and the resulting
    tasks are LPT-packed (longest processing time first onto the least
    loaded shard) into at most *shards* batches.  Group costs use the
    learned :class:`CostModel`'s current suffix fraction, sampled **once
    per plan** so concurrent observations cannot skew one plan's
    internal consistency.  The plan is a pure function of ``(tasks,
    shards, policy, fraction)`` — deterministic tie-breaking by task
    index — and never emits an empty batch, so every dispatched batch
    does real work and every member index appears exactly once.
    """
    name = resolve_group_schedule(policy)
    ordered = sorted(tasks, key=lambda task: task.index)
    if not ordered:
        return []
    shards = max(1, int(shards))
    if name == "static":
        batches = shard_group_tasks(ordered, shards)
    else:
        fraction = (model or default_cost_model()).suffix_fraction()

        def cost(task: GroupTask) -> float:
            return estimate_group_cost(task, suffix_fraction=fraction)

        total = sum(cost(task) for task in ordered)
        fair = total / shards
        expanded: List[GroupTask] = []
        for task in ordered:
            if shards > 1 and len(task.entries) > 1 and cost(task) > fair:
                expanded.extend(
                    split_group_task(task, math.ceil(cost(task) / max(fair, 1e-9)))
                )
            else:
                expanded.append(task)
        expanded = [
            replace(task, index=position) for position, task in enumerate(expanded)
        ]
        heap: List[Tuple[float, int]] = [(0.0, shard) for shard in range(shards)]
        heapq.heapify(heap)
        assignment: List[List[GroupTask]] = [[] for _ in range(shards)]
        for task in sorted(expanded, key=lambda task: (-cost(task), task.index)):
            load, shard = heapq.heappop(heap)
            assignment[shard].append(task)
            heapq.heappush(heap, (load + cost(task), shard))
        batches = [
            GroupBatchTask(index=0, groups=sorted(groups, key=lambda task: task.index))
            for groups in assignment
            if groups
        ]
    return [
        GroupBatchTask(index=position, groups=batch.groups)
        for position, batch in enumerate(batches)
    ]


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
class ExecutionBackend(ABC):
    """Strategy for executing a batch of independent tasks."""

    name: str = "backend"

    @abstractmethod
    def map(self, fn: Callable[..., Any], argument_tuples: Sequence[Tuple]) -> List[Any]:
        """Apply *fn* to every argument tuple; results in submission order."""

    def run_tasks(self, tasks: Sequence[ExecutionTask]) -> List[RunResult]:
        """Execute campaign tasks; results ordered by submission index."""
        ordered = sorted(tasks, key=lambda task: task.index)
        return self.map(execute_task, [(task,) for task in ordered])

    def _pair_iter(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[Tuple[Any, Any]]:
        """Yield ``(item, fn(item))`` pairs incrementally.

        The single delivery policy behind every ``*_iter`` entry point
        (tasks, groups, group batches): backends override *this* — the
        serial backend yields lazily after each item, pools yield in
        completion order — and the entry points stay one-liners instead of
        three near-copies per backend.  The base implementation degrades to
        the eager :meth:`map`.
        """
        yield from zip(items, self.map(fn, [(item,) for item in items]))

    def run_tasks_iter(
        self, tasks: Sequence[ExecutionTask]
    ) -> Iterator[Tuple[ExecutionTask, RunResult]]:
        """Yield ``(task, result)`` pairs incrementally, as runs complete.

        Unlike :meth:`run_tasks`, pairs arrive in **completion** order
        (pools yield whatever finishes first; the serial backend yields
        after each task) — the caller gets each pair while the rest of the
        batch is still running, which is what lets the exploration engine
        checkpoint completed runs the moment they exist.  Callers needing
        submission order must reassemble by ``task.index``.
        """
        ordered = sorted(tasks, key=lambda task: task.index)
        return self._pair_iter(execute_task, ordered)

    def run_groups(self, tasks: Sequence[GroupTask]) -> List[Dict[int, RunResult]]:
        """Execute prefix-group tasks; results ordered by group index.

        Each returned mapping pairs member submission indices with their
        results; pooled backends run whole groups concurrently (one worker
        executes a group's probe and resumes its siblings locally).
        """
        ordered = sorted(tasks, key=lambda task: task.index)
        return self.map(execute_group, [(task,) for task in ordered])

    def run_groups_iter(
        self, tasks: Sequence[GroupTask]
    ) -> Iterator[Tuple[GroupTask, Dict[int, RunResult]]]:
        """Yield ``(group task, member results)`` pairs incrementally.

        Pool backends yield groups in **completion** order (like
        :meth:`run_tasks_iter`) so callers can checkpoint a finished
        group's runs while slower groups are still executing.
        """
        ordered = sorted(tasks, key=lambda task: task.index)
        return self._pair_iter(execute_group, ordered)

    def worker_count(self) -> int:
        """How many tasks this backend can execute concurrently.

        The run-to-completion scheduler shards a campaign's groups into
        exactly this many batches, so each worker receives one batch and
        drains it without returning to the pool between groups.
        """
        return 1

    def run_group_batches(
        self, tasks: Sequence[GroupTask], schedule: Optional[str] = None
    ) -> Dict[int, RunResult]:
        """Drain *tasks* run-to-completion: one batch of groups per worker.

        Instead of a task-per-group fan-out (pool round trip — submit,
        pickle, result, repeat — per group), the groups are planned into
        at most :meth:`worker_count` batches up front
        (:func:`plan_group_batches`, cost-adaptive by default;
        ``schedule="static"`` selects the round-robin interleave) and each
        worker drains its whole batch before returning.  Results come back
        keyed by member submission index, so the merged mapping is
        deterministic regardless of batch completion order.
        """
        batches = plan_group_batches(tasks, self.worker_count(), policy=schedule)
        merged: Dict[int, RunResult] = {}
        for results in self.map(execute_group_batch, [(batch,) for batch in batches]):
            merged.update(results)
        return merged

    def run_group_batches_iter(
        self, tasks: Sequence[GroupTask], schedule: Optional[str] = None
    ) -> Iterator[Tuple["GroupBatchTask", Dict[int, RunResult]]]:
        """Yield ``(batch, member results)`` pairs as batches drain.

        The streaming face of :meth:`run_group_batches`: checkpoint cadence
        is one batch (several groups) rather than one group — the price of
        eliminating the per-group pool round trips.
        """
        batches = plan_group_batches(tasks, self.worker_count(), policy=schedule)
        return self._pair_iter(execute_group_batch, batches)

    def close(self) -> None:
        """Release pool resources (no-op for poolless backends)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Run every task inline, in submission order (reference semantics)."""

    name = "serial"

    def map(self, fn: Callable[..., Any], argument_tuples: Sequence[Tuple]) -> List[Any]:
        return [fn(*arguments) for arguments in argument_tuples]

    def _pair_iter(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[Tuple[Any, Any]]:
        # Lazily, one item at a time: the caller sees each result before
        # the next item starts (the base class would run the whole batch
        # eagerly through ``map`` first).
        for item in items:
            yield item, fn(item)


class _PoolBackend(ExecutionBackend):
    """Shared plumbing for the ``concurrent.futures`` backends."""

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = workers
        self._pool: Optional[futures.Executor] = None

    def _make_pool(self) -> futures.Executor:
        raise NotImplementedError

    def _ensure_pool(self) -> futures.Executor:
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def map(self, fn: Callable[..., Any], argument_tuples: Sequence[Tuple]) -> List[Any]:
        if not argument_tuples:
            return []
        pool = self._ensure_pool()
        # Submit in order, collect in order: completion order never leaks
        # into the result list.
        pending = [pool.submit(fn, *arguments) for arguments in argument_tuples]
        try:
            return [future.result() for future in pending]
        except BaseException:
            # An early failure must not leak the batch: cancel everything
            # still queued before re-raising (running/finished futures
            # ignore the cancel).
            for future in pending:
                future.cancel()
            raise

    def _completed_iter(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[Tuple[Any, Any]]:
        """Submit every item, yield ``(item, result)`` in completion order.

        Outstanding futures are cancelled when the consumer stops early
        (generator close) or a result raises — a half-consumed iteration
        must not keep the pool grinding through abandoned work.
        """
        if not items:
            return
        pool = self._ensure_pool()
        future_to_item = {pool.submit(fn, item): item for item in items}
        try:
            for future in futures.as_completed(future_to_item):
                yield future_to_item[future], future.result()
        finally:
            for future in future_to_item:
                future.cancel()

    def _pair_iter(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[Tuple[Any, Any]]:
        # Completion order, not submission order: a slow head-of-line item
        # must not delay checkpointing of items that already finished.
        yield from self._completed_iter(fn, items)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ThreadPoolBackend(_PoolBackend):
    """Thread-pool execution (shared interpreter, shared artifact cache)."""

    name = "threads"

    def worker_count(self) -> int:
        return self.workers or min(32, (os.cpu_count() or 1) * 2)

    def _make_pool(self) -> futures.Executor:
        return futures.ThreadPoolExecutor(
            max_workers=self.worker_count(), thread_name_prefix="lfi-campaign"
        )


class ProcessPoolBackend(_PoolBackend):
    """Process-pool execution for CPU-bound campaigns.

    Targets, requests, and results cross process boundaries, so they must be
    picklable (every shipped target is).  Fork start method is preferred so
    workers inherit already-built artifacts (compiled binaries, profiles).
    """

    name = "processes"

    def worker_count(self) -> int:
        return self.workers or (os.cpu_count() or 1)

    def _make_pool(self) -> futures.Executor:
        workers = self.worker_count()
        mp_context = None
        try:
            import multiprocessing

            if "fork" in multiprocessing.get_all_start_methods():
                mp_context = multiprocessing.get_context("fork")
        except (ImportError, ValueError):  # pragma: no cover - exotic platforms
            mp_context = None
        return futures.ProcessPoolExecutor(max_workers=workers, mp_context=mp_context)


# ----------------------------------------------------------------------
# spec resolution
# ----------------------------------------------------------------------
def resolve_backend(spec: ParallelismSpec) -> ExecutionBackend:
    """Turn a ``parallelism=`` spec into a backend.

    Accepted specs:

    * ``None``, ``0``, ``1``, ``"serial"`` — :class:`SerialBackend`;
    * an ``int > 1`` (or ``True``) — :class:`ProcessPoolBackend` with that
      many workers: the targets are pure-Python and CPU-bound, so processes
      are the spec that actually scales with cores (threads serialize on
      the GIL);
    * ``"threads"`` / ``"threads:N"`` — :class:`ThreadPoolBackend`, for
      targets that block on something other than the interpreter, or whose
      tasks/results cannot cross a process boundary;
    * ``"processes"`` / ``"processes:N"`` — :class:`ProcessPoolBackend`;
    * an :class:`ExecutionBackend` instance — returned unchanged (the caller
      keeps ownership of its pool).
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec is None:
        return SerialBackend()
    if isinstance(spec, bool):  # guard against parallelism=True accidents
        return ProcessPoolBackend() if spec else SerialBackend()
    if isinstance(spec, int):
        if spec < 0:
            # A negative count is a caller bug (e.g. a sign slip computing
            # workers); quietly degrading to serial would hide it.
            raise ValueError(f"negative worker count in parallelism spec {spec!r}")
        return SerialBackend() if spec <= 1 else ProcessPoolBackend(spec)
    if isinstance(spec, str):
        kind, _, count = spec.partition(":")
        workers = None
        if count:
            try:
                workers = int(count)
            except ValueError:
                raise ValueError(
                    f"invalid worker count in parallelism spec {spec!r}"
                ) from None
            if workers < 0:
                raise ValueError(f"negative worker count in parallelism spec {spec!r}")
        kind = kind.strip().lower()
        if kind in ("", "serial", "none"):
            return SerialBackend()
        if kind in ("thread", "threads", "process", "processes", "procs"):
            if workers == 0:
                # Consistent with the integer spec: zero workers means serial.
                return SerialBackend()
            if kind in ("thread", "threads"):
                return ThreadPoolBackend(workers)
            return ProcessPoolBackend(workers)
        raise ValueError(f"unknown parallelism spec {spec!r}")
    raise TypeError(f"unsupported parallelism spec {spec!r}")


def backend_scope(spec: ParallelismSpec) -> Tuple[ExecutionBackend, bool]:
    """Resolve *spec* and report whether the caller owns the backend.

    Returns ``(backend, owned)``: ``owned`` is True when the backend was
    created here (the caller should ``close()`` it after use) and False when
    the caller passed an existing backend in (its pool is left alone).
    """
    if isinstance(spec, ExecutionBackend):
        return spec, False
    return resolve_backend(spec), True


def run_requests(
    target: TargetAdapter,
    requests: Sequence[WorkloadRequest],
    parallelism: ParallelismSpec = None,
) -> List[RunResult]:
    """Run a batch of workload requests against *target* on a backend.

    The one-stop entry point for experiment harnesses: *requests* are
    submitted in order, results come back in the same order, and a backend
    created here from a spec is closed afterwards (a passed-in
    :class:`ExecutionBackend` instance is reused and left open).
    """
    tasks = [
        ExecutionTask(index=index, target=target, request=request)
        for index, request in enumerate(requests)
    ]
    backend, owned = backend_scope(parallelism)
    try:
        return backend.run_tasks(tasks)
    finally:
        if owned:
            backend.close()


__all__ = [
    "CostModel",
    "ExecutionBackend",
    "ExecutionTask",
    "GROUP_SCHEDULE_POLICIES",
    "GroupBatchTask",
    "GroupTask",
    "ParallelismSpec",
    "ProcessPoolBackend",
    "SUFFIX_COST_FRACTION",
    "SerialBackend",
    "ThreadPoolBackend",
    "backend_scope",
    "default_cost_model",
    "derive_run_seed",
    "estimate_group_cost",
    "execute_group",
    "execute_group_batch",
    "execute_task",
    "plan_group_batches",
    "resolve_backend",
    "resolve_group_schedule",
    "run_requests",
    "shard_group_tasks",
    "split_group_task",
]
