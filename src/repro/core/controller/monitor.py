"""Outcome monitoring: did the program terminate normally, crash, or abort?

The LFI controller "monitors [the program's] behavior to determine whether
it terminates normally or with an error exit code" (§2).  Two kinds of
programs exist in the reproduction — compiled binaries running in the VM and
Python-level simulated servers — and both funnel into the same
:class:`Outcome` type so campaigns and reports are uniform.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.injection.log import InjectionLog
from repro.oslib.errors import MemoryFault, MutexAbort, OSFault, SimExit, WorldCrash
from repro.vm.outcome import ExitKind, ExitStatus


class OutcomeKind(enum.Enum):
    NORMAL = "normal"
    ERROR_EXIT = "error-exit"
    CRASH = "crash"        # segmentation fault or unhandled exception
    ABORT = "abort"        # assertion failure / abort() / mutex abort
    HANG = "hang"          # exceeded its step or time budget
    DATA_LOSS = "data-loss"  # silent corruption detected by a workload oracle
    WORLD_CRASH = "world-crash"  # the world was killed mid-run (crash fault)

    @property
    def is_failure(self) -> bool:
        return self is not OutcomeKind.NORMAL

    @property
    def is_high_impact(self) -> bool:
        # WORLD_CRASH is deliberately excluded: the interesting question
        # after a crash-consistency kill is whether the *oracles* still hold
        # once recovery has run, so oracle checks must not be skipped.
        return self in (OutcomeKind.CRASH, OutcomeKind.ABORT, OutcomeKind.DATA_LOSS)


@dataclass
class Outcome:
    """Classification of one program run."""

    kind: OutcomeKind
    detail: str = ""
    exit_code: int = 0
    location: str = ""

    def describe(self) -> str:
        text = self.kind.value
        if self.exit_code:
            text += f" (exit {self.exit_code})"
        if self.location:
            text += f" at {self.location}"
        if self.detail:
            text += f": {self.detail}"
        return text

    @property
    def is_failure(self) -> bool:
        return self.kind.is_failure

    @property
    def is_high_impact(self) -> bool:
        return self.kind.is_high_impact


@dataclass
class RunResult:
    """Everything a campaign records about one workload run.

    ``stats["os"]`` holds the run's published post-run OS — usually not a
    :class:`~repro.oslib.os_model.SimOS` but a lazy stand-in
    (:class:`~repro.oslib.os_model.LazyOSClone`, or on the delta result
    channel a :class:`~repro.targets.base.DeltaOSClone` whose pickled wire
    form is just the subsystems the run changed since boot).  Both hydrate
    transparently on first attribute access, so consumers read
    ``stats["os"].stdout_text()`` etc. without caring which one they got.
    """

    outcome: Outcome
    log: Optional[InjectionLog] = None
    stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def injections(self) -> int:
        return self.log.injection_count if self.log is not None else 0


# ----------------------------------------------------------------------
# classification helpers
# ----------------------------------------------------------------------
def classify_exit_status(status: ExitStatus) -> Outcome:
    """Map a VM exit status to an outcome."""
    mapping = {
        ExitKind.NORMAL: OutcomeKind.NORMAL,
        ExitKind.ERROR_EXIT: OutcomeKind.ERROR_EXIT,
        ExitKind.SEGFAULT: OutcomeKind.CRASH,
        ExitKind.ABORT: OutcomeKind.ABORT,
        ExitKind.MAX_STEPS: OutcomeKind.HANG,
        ExitKind.VM_ERROR: OutcomeKind.CRASH,
        ExitKind.WORLD_CRASH: OutcomeKind.WORLD_CRASH,
    }
    return Outcome(
        kind=mapping[status.kind],
        detail=status.reason,
        exit_code=status.code,
        location=status.source,
    )


def classify_exception(error: BaseException) -> Outcome:
    """Map an exception escaping a Python-level target to an outcome."""
    if isinstance(error, MemoryFault):
        return Outcome(kind=OutcomeKind.CRASH, detail=str(error), exit_code=139)
    if isinstance(error, MutexAbort):
        return Outcome(kind=OutcomeKind.ABORT, detail=str(error), exit_code=134)
    if isinstance(error, SimExit):
        if error.aborted:
            return Outcome(kind=OutcomeKind.ABORT, detail=error.reason, exit_code=error.code)
        kind = OutcomeKind.NORMAL if error.code == 0 else OutcomeKind.ERROR_EXIT
        return Outcome(kind=kind, detail=error.reason, exit_code=error.code)
    if isinstance(error, WorldCrash):
        return Outcome(kind=OutcomeKind.WORLD_CRASH, detail=str(error), exit_code=137)
    if isinstance(error, OSFault):
        return Outcome(kind=OutcomeKind.ERROR_EXIT, detail=str(error), exit_code=70)
    # Any other unhandled exception is the Python analog of a crash.
    return Outcome(
        kind=OutcomeKind.CRASH,
        detail=f"{type(error).__name__}: {error}",
        exit_code=139,
    )


def run_python_workload(workload) -> Outcome:
    """Run a Python callable and classify the way it terminates.

    The callable may return an :class:`Outcome` (when the workload applies
    its own oracle, e.g. detecting silent data loss), an integer exit code,
    or ``None`` for a normal exit.
    """
    try:
        result = workload()
    except BaseException as error:  # noqa: BLE001 - we classify everything
        return classify_exception(error)
    if isinstance(result, Outcome):
        return result
    if isinstance(result, int) and result != 0:
        return Outcome(kind=OutcomeKind.ERROR_EXIT, exit_code=result)
    return Outcome(kind=OutcomeKind.NORMAL)


__all__ = [
    "Outcome",
    "OutcomeKind",
    "RunResult",
    "classify_exception",
    "classify_exit_status",
    "run_python_workload",
]
