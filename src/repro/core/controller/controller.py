"""The LFI controller: fully automatic end-to-end testing (§2, §7.1).

``LFIController`` strings the pieces together the way the paper's
evaluation uses them with "no developer assistance and no access to source
code":

1. profile the shared libraries (statically, from their binaries);
2. run the call-site analyzer on the target binary to find unchecked /
   partially checked call sites;
3. generate one injection scenario per suspicious site;
4. run the target's default test workload once per scenario;
5. report the crashes and aborts the injections exposed as bug candidates.

Python-level targets (no binary) skip step 2 and instead use the scenarios
the target declares for itself (e.g. random-injection campaigns, which is
also how the paper found the MySQL bugs).

Step 1 is served from the process-wide artifact cache
(:mod:`repro.core.profiler.cache`), so repeated controllers stop paying the
assemble + disassemble + CFG cost, and steps 4-5 accept a ``parallelism=``
spec (see :func:`repro.core.controller.executor.resolve_backend`) that
fans scenario runs out over threads or processes with results identical to
a serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.analysis.analyzer import AnalysisReport, CallSiteAnalyzer
from repro.core.controller.campaign import CampaignResult, TestCampaign
from repro.core.controller.executor import ParallelismSpec, backend_scope
from repro.core.controller.report import BugCandidate, build_bug_report
from repro.core.controller.target import TargetAdapter
from repro.core.exploration.engine import ExplorationEngine, ExplorationReport
from repro.core.exploration.space import FaultPoint, enumerate_fault_space
from repro.core.exploration.store import ResultStore
from repro.core.exploration.strategy import ExplorationStrategy
from repro.core.profiler.cache import cached_merged_profile
from repro.core.profiler.fault_profile import FaultProfile
from repro.core.scenario.model import Scenario


@dataclass
class ControllerReport:
    """End-to-end result of one automatic testing session."""

    target: str
    profile: FaultProfile
    analysis: Optional[AnalysisReport]
    scenarios: List[Scenario]
    campaigns: Dict[str, CampaignResult] = field(default_factory=dict)
    bugs: List[BugCandidate] = field(default_factory=list)

    def summary(self) -> str:
        lines = [f"LFI controller report for {self.target}"]
        if self.analysis is not None:
            lines.append("  " + self.analysis.summary().replace("\n", "\n  "))
        lines.append(f"  scenarios generated: {len(self.scenarios)}")
        for workload, campaign in self.campaigns.items():
            lines.append(f"  [{workload}] " + campaign.summary())
        lines.append(f"  bug candidates: {len(self.bugs)}")
        for bug in self.bugs:
            lines.append("    - " + bug.describe())
        return "\n".join(lines)


class LFIController:
    """Drives profiling, analysis, scenario generation, and campaigns."""

    def __init__(
        self,
        target: TargetAdapter,
        profile: Optional[FaultProfile] = None,
        max_cfg_instructions: int = 100,
        parallelism: ParallelismSpec = None,
    ) -> None:
        self.target = target
        self._profile = profile
        self.max_cfg_instructions = max_cfg_instructions
        #: Default campaign execution policy; per-call ``parallelism=``
        #: arguments override it.
        self.parallelism = parallelism
        self._analyzer: Optional[CallSiteAnalyzer] = None

    # ------------------------------------------------------------------
    # step 1: library profiling
    # ------------------------------------------------------------------
    def profile_libraries(self) -> FaultProfile:
        """Profile every simulated shared library from its binary.

        Served from the process-wide artifact cache: the first controller in
        a process pays the assemble + profile cost, later ones share it.
        """
        if self._profile is None:
            self._profile = cached_merged_profile()
        return self._profile

    # ------------------------------------------------------------------
    # step 2: call-site analysis
    # ------------------------------------------------------------------
    def _call_site_analyzer(self) -> CallSiteAnalyzer:
        """The controller's single analyzer instance (profile attached)."""
        if self._analyzer is None:
            self._analyzer = CallSiteAnalyzer(
                profile=self.profile_libraries(),
                max_instructions=self.max_cfg_instructions,
            )
        return self._analyzer

    def analyze_target(self, functions: Optional[Sequence[str]] = None) -> Optional[AnalysisReport]:
        binary = self.target.binary()
        if binary is None:
            return None
        return self._call_site_analyzer().analyze(binary, functions=functions)

    # ------------------------------------------------------------------
    # step 3: scenario generation
    # ------------------------------------------------------------------
    def generate_scenarios(
        self,
        analysis: Optional[AnalysisReport] = None,
        functions: Optional[Sequence[str]] = None,
        include_partial: bool = True,
        include_checked: bool = False,
        every_errno: bool = False,
    ) -> List[Scenario]:
        if analysis is None:
            analysis = self.analyze_target(functions=functions)
        if analysis is None:
            return []
        return self._call_site_analyzer().generate_scenarios(
            analysis,
            include_partial=include_partial,
            include_checked=include_checked,
            every_errno=every_errno,
            functions=functions,
        )

    # ------------------------------------------------------------------
    # fault-space exploration (systematic alternative to steps 3-4)
    # ------------------------------------------------------------------
    def fault_space(
        self,
        analysis: Optional[AnalysisReport] = None,
        functions: Optional[Sequence[str]] = None,
        include_partial: bool = True,
        include_checked: bool = False,
    ) -> List[FaultPoint]:
        """Enumerate the target's injectable fault space.

        The full (call site x error return x errno) cross product from the
        analyzer output and the library fault profiles — the space
        :meth:`explore` covers.  Raises for Python-level targets, whose
        scenarios are not derived from binary analysis.  *functions* narrows
        the space whether the analysis is computed here or passed in.
        """
        if analysis is None:
            analysis = self.analyze_target(functions=functions)
        if analysis is None:
            raise ValueError(
                f"target {self.target.name!r} has no binary to analyze; "
                "fault-space exploration needs analyzer output"
            )
        classifications = list(analysis.classifications.values())
        if functions is not None:
            wanted = set(functions)
            classifications = [
                classification
                for classification in classifications
                if classification.function in wanted
            ]
        return enumerate_fault_space(
            classifications,
            self.profile_libraries(),
            include_partial=include_partial,
            include_checked=include_checked,
        )

    def explore(
        self,
        strategy: Optional[ExplorationStrategy] = None,
        store: Optional[ResultStore] = None,
        workload: Optional[str] = None,
        analysis: Optional[AnalysisReport] = None,
        functions: Optional[Sequence[str]] = None,
        include_partial: bool = True,
        include_checked: bool = False,
        seed: Optional[int] = None,
        parallelism: ParallelismSpec = None,
        max_runs: Optional[int] = None,
        share_prefixes: Optional[bool] = None,
        request_options: Optional[dict] = None,
    ) -> ExplorationReport:
        """Systematically explore the target's fault space (PR 2 tentpole).

        Enumerates every injectable (call site x error return x errno)
        point, lets *strategy* (exhaustive by default) pick the subset to
        run, schedules it through the campaign executor in priority order,
        deduplicates equivalent failures, and checkpoints completed runs in
        *store* so a second ``explore()`` with the same store resumes
        instead of re-running.  Pass a precomputed *analysis* to skip the
        call-site analysis step (e.g. when resuming or sweeping several
        strategies over one target).  See :mod:`repro.core.exploration`.
        """
        points = self.fault_space(
            analysis=analysis,
            functions=functions,
            include_partial=include_partial,
            include_checked=include_checked,
        )
        engine = ExplorationEngine(
            self.target,
            strategy=strategy,
            store=store,
            parallelism=parallelism if parallelism is not None else self.parallelism,
            seed=seed,
            workload=workload,
            share_prefixes=share_prefixes,
            request_options=request_options,
        )
        return engine.explore(points, max_runs=max_runs)

    # ------------------------------------------------------------------
    # steps 4-5: campaigns and reports
    # ------------------------------------------------------------------
    def run_campaign(
        self,
        scenarios: Sequence[Scenario],
        workload: Optional[str] = None,
        parallelism: ParallelismSpec = None,
        **options,
    ) -> CampaignResult:
        workload_name = workload or (self.target.workloads()[0] if self.target.workloads() else "default")
        campaign = TestCampaign(
            self.target,
            workload=workload_name,
            parallelism=parallelism if parallelism is not None else self.parallelism,
        )
        return campaign.run(scenarios, **options)

    def test_automatically(
        self,
        workloads: Optional[Sequence[str]] = None,
        functions: Optional[Sequence[str]] = None,
        include_partial: bool = True,
        include_checked: bool = False,
        extra_scenarios: Optional[Sequence[Scenario]] = None,
        parallelism: ParallelismSpec = None,
    ) -> ControllerReport:
        """The fully automatic pipeline used by the Table 1 experiments.

        ``include_checked=True`` additionally exercises the *checked* call
        sites — i.e. it injects faults whose recovery code exists, which is
        how recovery-code bugs such as BIND's ``dst_lib_init`` abort and
        MySQL's double unlock manifest.

        ``parallelism`` selects the campaign execution backend; one backend
        is shared across all selected workloads.
        """
        profile = self.profile_libraries()
        analysis = self.analyze_target(functions=functions)
        scenarios = list(
            self.generate_scenarios(
                analysis,
                functions=functions,
                include_partial=include_partial,
                include_checked=include_checked,
            )
        )
        if extra_scenarios:
            scenarios.extend(extra_scenarios)

        report = ControllerReport(
            target=self.target.name,
            profile=profile,
            analysis=analysis,
            scenarios=scenarios,
        )
        selected_workloads = list(workloads) if workloads else (self.target.workloads() or ["default"])
        spec = parallelism if parallelism is not None else self.parallelism
        backend, owned = backend_scope(spec)
        all_bugs: List[BugCandidate] = []
        try:
            for workload in selected_workloads:
                campaign = TestCampaign(self.target, workload=workload, parallelism=backend).run(
                    scenarios
                )
                report.campaigns[workload] = campaign
                all_bugs.extend(build_bug_report(campaign))
        finally:
            if owned:
                backend.close()

        # Deduplicate across workloads by (function, location, kind).
        deduplicated: Dict[tuple, BugCandidate] = {}
        for bug in all_bugs:
            key = (bug.function, bug.location, bug.kind)
            existing = deduplicated.get(key)
            if existing is None:
                deduplicated[key] = bug
            else:
                existing.occurrences += bug.occurrences
                existing.scenarios.extend(bug.scenarios)
        report.bugs = list(deduplicated.values())
        return report


__all__ = ["ControllerReport", "LFIController"]
