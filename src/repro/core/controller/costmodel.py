"""Learned group-cost model for the prefix-sharing scheduler.

The LPT packer (:func:`repro.core.controller.executor.plan_group_batches`)
needs relative group costs: a group of *m* members costs roughly one full
probe (prefix + first suffix) plus ``m - 1`` resumed suffixes.  PR 9
hard-coded the suffix/probe runtime ratio at ``SUFFIX_COST_FRACTION =
0.35``; this module replaces the constant with a :class:`CostModel` that
*measures* it.

Every direct (non-memo-hit) group execution reports ``(members,
elapsed_seconds)`` — see ``_run_entry_group_direct`` in
:mod:`repro.core.controller.prefix`.  The model fits the two-parameter
line ``T(m) = probe + (m - 1) * suffix`` by online least squares over
``k = m - 1`` and blends the fitted ratio with the 0.35 prior
(prior-weighted mean), so a fresh model reproduces the PR 9 constant
exactly and a handful of noisy observations cannot whipsaw the packer.

The model is serializable (:meth:`to_dict`/:meth:`from_dict`) so the
campaign coordinator can ship its fleet-wide aggregate to workers inside
shard leases (:meth:`adopt`) and resumed runs inherit what earlier runs
measured.  Costs only steer *packing* — which worker drains which groups
— never results, so cross-process model skew cannot break bit-identity.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Mapping, Optional, Tuple

#: The PR 9 prior: a resumed suffix costs ~35% of a full probe.  A fresh
#: (observation-free) model returns exactly this, which keeps every
#: pre-existing cost test and the static packing behavior unchanged.
SUFFIX_COST_FRACTION = 0.35

#: Observations needed before the fit contributes at all, and the weight
#: the prior keeps afterwards (in observation units).
_MIN_OBSERVATIONS = 4
_PRIOR_WEIGHT = 8.0

#: Fitted suffix/probe ratios are clamped to this range before blending —
#: a pathological fit (timer noise on near-zero probes) must not produce
#: negative or absurd packing weights.
_RATIO_MIN = 0.01
_RATIO_MAX = 4.0


class CostModel:
    """Online least-squares fit of per-group probe/suffix runtimes.

    Thread-safe: pool callbacks and the coordinator's ``shard_done``
    handler observe concurrently.  State is five running sums over
    ``(k = members - 1, t = elapsed)`` pairs, which merge exactly
    (:meth:`observe_sums`) — fleet aggregation loses nothing.
    """

    def __init__(
        self,
        prior_fraction: float = SUFFIX_COST_FRACTION,
        prior_weight: float = _PRIOR_WEIGHT,
    ) -> None:
        self.prior_fraction = float(prior_fraction)
        self.prior_weight = float(prior_weight)
        self._lock = threading.Lock()
        self._n = 0
        self._sum_k = 0.0
        self._sum_kk = 0.0
        self._sum_t = 0.0
        self._sum_kt = 0.0

    # -- observation ----------------------------------------------------

    def observe_group(self, members: int, elapsed_seconds: float) -> None:
        """Record one direct group execution of ``members`` members."""
        if members < 1 or elapsed_seconds < 0.0:
            return
        k = float(members - 1)
        with self._lock:
            self._n += 1
            self._sum_k += k
            self._sum_kk += k * k
            self._sum_t += elapsed_seconds
            self._sum_kt += k * elapsed_seconds

    def observe_sums(
        self,
        n: int,
        sum_k: float,
        sum_kk: float,
        sum_t: float,
        sum_kt: float,
    ) -> None:
        """Merge another model's running sums (fleet aggregation)."""
        if n <= 0:
            return
        with self._lock:
            self._n += int(n)
            self._sum_k += float(sum_k)
            self._sum_kk += float(sum_kk)
            self._sum_t += float(sum_t)
            self._sum_kt += float(sum_kt)

    # -- queries ---------------------------------------------------------

    def observations(self) -> int:
        with self._lock:
            return self._n

    def _fit_locked(self) -> Optional[Tuple[float, float]]:
        """Least-squares ``(probe, suffix)`` or ``None`` if undetermined."""
        n = self._n
        if n < _MIN_OBSERVATIONS:
            return None
        denominator = n * self._sum_kk - self._sum_k * self._sum_k
        if denominator <= 1e-12:
            # Every observed group had the same size; the slope is
            # unidentifiable and the prior stands.
            return None
        suffix = (n * self._sum_kt - self._sum_k * self._sum_t) / denominator
        probe = (self._sum_t - suffix * self._sum_k) / n
        if probe <= 1e-9:
            return None
        return probe, suffix

    def suffix_fraction(self) -> float:
        """The (prior-blended) suffix/probe runtime ratio for packing."""
        with self._lock:
            fit = self._fit_locked()
            if fit is None:
                return self.prior_fraction
            probe, suffix = fit
            ratio = min(max(suffix / probe, _RATIO_MIN), _RATIO_MAX)
            n = float(self._n)
            return (self.prior_weight * self.prior_fraction + n * ratio) / (
                self.prior_weight + n
            )

    def fitted(self) -> Optional[Tuple[float, float]]:
        """The raw ``(probe_seconds, suffix_seconds)`` fit, if determined."""
        with self._lock:
            return self._fit_locked()

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "prior_fraction": self.prior_fraction,
                "prior_weight": self.prior_weight,
                "n": self._n,
                "sum_k": self._sum_k,
                "sum_kk": self._sum_kk,
                "sum_t": self._sum_t,
                "sum_kt": self._sum_kt,
            }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CostModel":
        model = cls(
            prior_fraction=float(payload.get("prior_fraction", SUFFIX_COST_FRACTION)),
            prior_weight=float(payload.get("prior_weight", _PRIOR_WEIGHT)),
        )
        model.observe_sums(
            int(payload.get("n", 0)),
            float(payload.get("sum_k", 0.0)),
            float(payload.get("sum_kk", 0.0)),
            float(payload.get("sum_t", 0.0)),
            float(payload.get("sum_kt", 0.0)),
        )
        return model

    def adopt(self, payload: Optional[Mapping[str, Any]]) -> None:
        """Replace this model's state with a *better-informed* snapshot.

        Used by workers receiving the coordinator's aggregate inside a
        shard lease: adopting (rather than merging) avoids double-counting
        observations the worker itself contributed to the aggregate.  A
        snapshot with fewer observations than the local model is ignored.
        """
        if not payload:
            return
        incoming = CostModel.from_dict(payload)
        with self._lock:
            if incoming._n <= self._n:
                return
            self.prior_fraction = incoming.prior_fraction
            self.prior_weight = incoming.prior_weight
            self._n = incoming._n
            self._sum_k = incoming._sum_k
            self._sum_kk = incoming._sum_kk
            self._sum_t = incoming._sum_t
            self._sum_kt = incoming._sum_kt

    def snapshot_counters(self) -> Dict[str, float]:
        """Flat numeric counters for ``shard_done.stats`` aggregation."""
        with self._lock:
            return {
                "cost_observations": float(self._n),
                "cost_sum_k": self._sum_k,
                "cost_sum_kk": self._sum_kk,
                "cost_sum_t": self._sum_t,
                "cost_sum_kt": self._sum_kt,
            }


_default_model = CostModel()
_default_lock = threading.Lock()


def default_cost_model() -> CostModel:
    """The process-wide model every direct group execution feeds."""
    return _default_model


def set_default_cost_model(model: Optional[CostModel]) -> CostModel:
    """Swap the process-wide model (``None`` installs a fresh one).

    Returns the previous model; tests use this to isolate observations.
    """
    global _default_model
    with _default_lock:
        previous = _default_model
        _default_model = model if model is not None else CostModel()
        return previous


def observe_group_runtime(members: int, elapsed_seconds: float) -> None:
    """Feed one direct group execution into the process-wide model."""
    _default_model.observe_group(members, elapsed_seconds)


__all__ = [
    "SUFFIX_COST_FRACTION",
    "CostModel",
    "default_cost_model",
    "observe_group_runtime",
    "set_default_cost_model",
]
