"""Bug reporting: turn campaign failures into deduplicated bug candidates.

A bug candidate is a (target, library function, call site / stack) triple
for which an injected fault led to a crash, abort, or data loss.  This is
what Table 1 of the paper counts; the human step of confirming each
candidate against the source is replaced by the targets' ground-truth bug
annotations in the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.controller.campaign import CampaignResult, ScenarioOutcome
from repro.core.controller.monitor import OutcomeKind


@dataclass
class BugCandidate:
    """One deduplicated potential bug exposed by fault injection."""

    target: str
    function: str
    location: str
    kind: OutcomeKind
    description: str
    scenarios: List[str] = field(default_factory=list)
    occurrences: int = 0

    def describe(self) -> str:
        return (
            f"{self.target}: {self.kind.value} after injected {self.function} failure "
            f"at {self.location or 'unknown location'} — {self.description}"
        )


def _candidate_key(outcome: ScenarioOutcome) -> Tuple[str, str]:
    function = outcome.scenario.metadata.get("target_function", "")
    if not function:
        injections = outcome.result.log.injections() if outcome.result.log else []
        function = injections[0].function if injections else "?"
    location = outcome.scenario.metadata.get("source", "")
    if not location:
        injections = outcome.result.log.injections() if outcome.result.log else []
        location = injections[0].source if injections else ""
    return function, location


def build_bug_report(campaign: CampaignResult) -> List[BugCandidate]:
    """Deduplicate the campaign's injection-exposed failures into candidates."""
    candidates: Dict[Tuple[str, str, OutcomeKind], BugCandidate] = {}
    for outcome in campaign.outcomes:
        if not outcome.exposed_failure:
            continue
        function, location = _candidate_key(outcome)
        key = (function, location, outcome.outcome.kind)
        candidate = candidates.get(key)
        if candidate is None:
            candidate = BugCandidate(
                target=campaign.target,
                function=function,
                location=location,
                kind=outcome.outcome.kind,
                description=outcome.outcome.detail or outcome.outcome.describe(),
            )
            candidates[key] = candidate
        candidate.scenarios.append(outcome.scenario.name)
        candidate.occurrences += 1
    return list(candidates.values())


def format_bug_report(candidates: List[BugCandidate]) -> str:
    if not candidates:
        return "no injection-exposed failures"
    lines = [f"{len(candidates)} bug candidate(s):"]
    for index, candidate in enumerate(candidates, start=1):
        lines.append(f"  {index}. {candidate.describe()} [{candidate.occurrences} run(s)]")
    return "\n".join(lines)


__all__ = ["BugCandidate", "build_bug_report", "format_bug_report"]
