"""Test campaigns: run a workload once per injection scenario.

The controller "conducts a suite of tests in which the described errors are
introduced" (§2): each analyzer-generated scenario (or hand-written
scenario) is applied to a fresh instance of the target, the workload runs,
and the outcome plus the injection log are recorded.  The result feeds the
bug report (Table 1) and the coverage comparison (Table 3).

Scenario runs are independent of one another (every run gets a pristine
target instance), so a campaign is an embarrassingly parallel batch.  The
``parallelism`` knob hands the batch to an
:class:`~repro.core.controller.executor.ExecutionBackend`; results keep
submission order and per-run seeds are derived deterministically, so a
parallel campaign's :class:`CampaignResult` is identical to a serial one's.

Campaigns against targets that declare deterministic execution additionally
share prefixes (:mod:`repro.core.controller.prefix`): scenarios differing
only in the injected fault (or in a single call-count threshold — prefix
trees) are grouped so their common pre-trigger prefix executes once and
only post-trigger suffixes run per fault.  Sharing **composes with the
pool backends**: each group becomes one
:class:`~repro.core.controller.executor.GroupTask` whose worker runs the
probe and resumes the siblings locally, so ``share_prefixes=True`` with
``parallelism="processes:4"`` fans groups out instead of silently
degrading to per-scenario runs — with results still bit-identical to both
the serial shared and the unshared paths.  ``share_prefixes=False`` forces
the reference per-scenario path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.core.controller.executor import (
    ExecutionTask,
    ParallelismSpec,
    SerialBackend,
    backend_scope,
    derive_run_seed,
)
from repro.core.controller.monitor import Outcome, OutcomeKind, RunResult
from repro.core.controller.prefix import (
    build_group_tasks,
    resolve_sharing,
    run_scenarios_shared,
)
from repro.core.controller.costmodel import default_cost_model
from repro.core.controller.memo import MemoStats, resolve_memo
from repro.core.controller.target import TargetAdapter, WorkloadRequest
from repro.core.profiler.cache import artifact_cache_stats
from repro.core.scenario.model import Scenario


@dataclass
class ScenarioOutcome:
    """Result of running one workload under one scenario."""

    scenario: Scenario
    workload: str
    result: RunResult

    @property
    def outcome(self) -> Outcome:
        return self.result.outcome

    @property
    def injected(self) -> bool:
        return self.result.injections > 0

    @property
    def exposed_failure(self) -> bool:
        """True when an injection happened and the run failed badly."""
        return self.injected and self.result.outcome.is_high_impact

    def describe(self) -> str:
        return (
            f"{self.scenario.name} [{self.workload}]: {self.result.outcome.describe()} "
            f"({self.result.injections} injections)"
        )


@dataclass
class CampaignResult:
    """All scenario outcomes of one campaign."""

    target: str
    outcomes: List[ScenarioOutcome] = field(default_factory=list)
    baseline: Optional[RunResult] = None
    #: Execution observability: backend/sharing knobs plus boot-template and
    #: suffix-memo hit/miss deltas for this run (see :meth:`TestCampaign.run`).
    stats: Dict[str, Any] = field(default_factory=dict)

    def failures(self) -> List[ScenarioOutcome]:
        return [outcome for outcome in self.outcomes if outcome.outcome.is_failure]

    def high_impact_failures(self) -> List[ScenarioOutcome]:
        return [outcome for outcome in self.outcomes if outcome.exposed_failure]

    def by_kind(self) -> Dict[OutcomeKind, int]:
        histogram: Dict[OutcomeKind, int] = {}
        for outcome in self.outcomes:
            histogram[outcome.outcome.kind] = histogram.get(outcome.outcome.kind, 0) + 1
        return histogram

    def scenarios_run(self) -> int:
        return len(self.outcomes)

    def summary(self) -> str:
        histogram = ", ".join(f"{kind.value}: {count}" for kind, count in sorted(
            self.by_kind().items(), key=lambda item: item[0].value))
        return (
            f"campaign on {self.target}: {self.scenarios_run()} scenario runs — {histogram}; "
            f"{len(self.high_impact_failures())} injection-exposed failures"
        )


class TestCampaign:
    """Run a set of scenarios against one target."""

    def __init__(
        self,
        target: TargetAdapter,
        workload: str = "default",
        parallelism: ParallelismSpec = None,
    ) -> None:
        self.target = target
        self.workload = workload
        #: Default execution policy for :meth:`run` — a spec (``"threads:4"``,
        #: a worker count, ...) or an :class:`ExecutionBackend` instance; an
        #: explicit ``parallelism=`` argument to :meth:`run` overrides it.
        self.parallelism = parallelism

    def run_baseline(self, collect_coverage: bool = False, **options) -> RunResult:
        """Run the workload with no LFI interference (sanity check / baseline)."""
        return self.target.run(
            WorkloadRequest(
                workload=self.workload,
                scenario=None,
                collect_coverage=collect_coverage,
                options=dict(options),
            )
        )

    def run(
        self,
        scenarios: Iterable[Scenario],
        collect_coverage: bool = False,
        include_baseline: bool = True,
        seed: Optional[int] = None,
        parallelism: ParallelismSpec = None,
        share_prefixes: Optional[bool] = None,
        **options,
    ) -> CampaignResult:
        """Run every scenario; see the module docstring for the knobs.

        ``share_prefixes=None`` (default) enables prefix sharing for
        campaigns against targets that declare ``prefix_shareable``;
        ``False`` forces the reference per-scenario path; ``True`` demands
        sharing and raises on targets that do not declare deterministic
        execution.  Sharing composes with every backend: serial campaigns
        stream groups inline, pooled campaigns fan each group out as one
        task (results stay bit-identical either way).
        """
        scenario_list = list(scenarios)
        campaign = CampaignResult(target=self.target.name)
        if include_baseline:
            campaign.baseline = self.run_baseline(collect_coverage=collect_coverage, **options)

        # Snapshot the process-wide cache counters so the run's stats carry
        # *deltas* — what this campaign hit and missed, not process history.
        # Pool-children counters are invisible here (they live in the forked
        # workers); fabric workers report their own deltas via shard_done.
        cache_before = artifact_cache_stats()
        cost_model = default_cost_model()
        cost_before = cost_model.observations()
        # Whichever memo this run resolves (process-wide, a private instance
        # passed via ``memo=``, or none at all on the oracle path) is the one
        # whose deltas belong in the stats.
        run_memo = resolve_memo(options)
        memo_before = run_memo.stats() if run_memo is not None else MemoStats()

        spec = parallelism if parallelism is not None else self.parallelism
        backend, owned = backend_scope(spec)
        sharing = resolve_sharing(share_prefixes, self.target)
        try:
            if sharing and isinstance(backend, SerialBackend):
                results = run_scenarios_shared(
                    self.target,
                    self.workload,
                    scenario_list,
                    seeds=[derive_run_seed(seed, index) for index in range(len(scenario_list))],
                    collect_coverage=collect_coverage,
                    options=dict(options),
                )
            elif sharing:
                entries = [
                    (index, scenario, derive_run_seed(seed, index))
                    for index, scenario in enumerate(scenario_list)
                ]
                tasks = build_group_tasks(
                    self.target, self.workload, entries,
                    collect_coverage=collect_coverage, options=dict(options),
                )
                # Run-to-completion draining: groups are sharded into one
                # batch per worker and each worker drains its batch without
                # returning to the pool between groups (results are keyed
                # by submission index, so batching cannot reorder them).
                collected = dict(
                    backend.run_group_batches(tasks, schedule=options.get("group_sched"))
                )
                missing = [i for i in range(len(scenario_list)) if i not in collected]
                if missing:
                    raise RuntimeError(
                        f"group execution returned no result for scenario "
                        f"indices {missing[:5]}{'...' if len(missing) > 5 else ''}"
                    )
                results = [collected[index] for index in range(len(scenario_list))]
            else:
                tasks = [
                    ExecutionTask(
                        index=index,
                        target=self.target,
                        request=WorkloadRequest(
                            workload=self.workload,
                            scenario=scenario,
                            collect_coverage=collect_coverage,
                            options=dict(options),
                        ),
                        seed=derive_run_seed(seed, index),
                    )
                    for index, scenario in enumerate(scenario_list)
                ]
                results = backend.run_tasks(tasks)
        finally:
            if owned:
                backend.close()

        if len(results) != len(scenario_list):
            # A backend returning the wrong number of results is corrupted
            # scheduling; silently zip-truncating would misattribute runs.
            raise RuntimeError(
                f"campaign executed {len(results)} runs for "
                f"{len(scenario_list)} scenarios"
            )
        for scenario, result in zip(scenario_list, results):
            campaign.outcomes.append(
                ScenarioOutcome(scenario=scenario, workload=self.workload, result=result)
            )

        cache_after = artifact_cache_stats()
        memo_after = run_memo.stats() if run_memo is not None else MemoStats()
        campaign.stats = {
            "sharing": sharing,
            "backend": type(backend).__name__,
            "boot_template": {
                "hits": cache_after.boot_hits - cache_before.boot_hits,
                "misses": cache_after.boot_misses - cache_before.boot_misses,
                "shared_hits": (
                    cache_after.boot_shared_hits - cache_before.boot_shared_hits
                ),
            },
            "suffix_memo": {
                "hits": memo_after.hits - memo_before.hits,
                "misses": memo_after.misses - memo_before.misses,
                "stores": memo_after.stores - memo_before.stores,
                "evictions": memo_after.evictions - memo_before.evictions,
                "entries": memo_after.entries,
                "bytes": memo_after.current_bytes,
            },
            # The learned group-cost model steering LPT packing: how many
            # direct group executions this campaign contributed, and the
            # suffix/probe fraction the packer currently uses (0.35 prior
            # until enough observations accumulate).
            "cost_model": {
                "observations": cost_model.observations() - cost_before,
                "total_observations": cost_model.observations(),
                "suffix_fraction": round(cost_model.suffix_fraction(), 4),
            },
        }
        return campaign


__all__ = ["CampaignResult", "ScenarioOutcome", "TestCampaign"]
