"""Adapter interface between the LFI controller and systems under test.

A target adapter knows how to (re)build a pristine instance of the system
under test — its binary or server object, a fresh simulated OS populated
with the fixtures the workload needs — wire a
:class:`~repro.core.injection.gate.LibraryCallGate` into it, run one of its
workloads, and report how the run ended.  The five simulated systems in
:mod:`repro.targets` implement this interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol, runtime_checkable

from repro.core.controller.monitor import RunResult
from repro.core.injection.gate import LibraryCallGate
from repro.core.scenario.model import Scenario
from repro.isa.binary import BinaryImage


@dataclass
class WorkloadRequest:
    """One workload execution request."""

    workload: str = "default"
    scenario: Optional[Scenario] = None
    #: Observe-only mode evaluates triggers without injecting (§7.4).
    observe_only: bool = False
    #: Collect instruction coverage (compiled targets only).
    collect_coverage: bool = False
    #: Extra workload parameters (request counts, probabilities, ...).
    options: Dict[str, Any] = field(default_factory=dict)


@runtime_checkable
class TargetAdapter(Protocol):
    """What the controller needs from a system under test."""

    name: str

    def workloads(self) -> List[str]:
        """Names of the workloads the target's test suite provides."""
        ...

    def binary(self) -> Optional[BinaryImage]:
        """The compiled binary, or ``None`` for Python-level targets."""
        ...

    def run(self, request: WorkloadRequest) -> RunResult:
        """Run one workload (optionally under a scenario) and classify it."""
        ...


def make_gate(scenario: Optional[Scenario], observe_only: bool = False,
              shared_objects: Optional[Dict[str, Any]] = None,
              run_seed: Optional[int] = None) -> LibraryCallGate:
    """Standard gate construction used by the target adapters.

    ``run_seed`` is the per-run seed a campaign threads through
    ``WorkloadRequest.options["run_seed"]`` (see
    :func:`repro.core.controller.executor.derive_run_seed`); it seeds
    otherwise-unseeded stochastic triggers so campaigns are reproducible.
    """
    from repro.core.injection.runtime import InjectionRuntime

    runtime = None
    if scenario is not None:
        runtime = InjectionRuntime(scenario, shared_objects=shared_objects, run_seed=run_seed)
    return LibraryCallGate(runtime=runtime, observe_only=observe_only)


__all__ = ["TargetAdapter", "WorkloadRequest", "make_gate"]
