"""Prefix-sharing campaign scheduling.

An LFI campaign runs one workload per fault scenario, and the analyzer
generates its scenarios in families: one per (call site x error return x
errno), all sharing the **same trigger composition** — same call-stack
frame, same singleton — and differing only in the fault injected.  Every
run in such a family executes an identical prefix (boot, fixtures, all
instructions up to the trigger site) before the armed injection diverges.

This module eliminates that redundancy at the schedule level:

1. **Grouping** — :func:`scenario_group_key_parts` fingerprints a
   scenario's trigger declarations and plan structure *without* the fault
   values; scenarios with equal base keys under one workload form a group
   whose members are interchangeable until the moment of injection.  The
   key is **hierarchical**: call-count variants of one site (scenarios
   identical except a single ``CallCountTrigger``'s ``nth``) share a base
   key and carry a *rank* — the count at which they diverge — so a group
   is a prefix *tree*, not just an errno family.
2. **Probe + resume** — the group's first member (lowest rank) runs
   normally; for targets exposing the
   :class:`~repro.targets.base.CompiledTarget` session API the probe
   snapshots OS/gate/coverage state at the last workload-step boundary
   before its trigger fires, and every other member restores that boundary
   (its own gate is grafted with the shared interception state) and
   executes **only the post-trigger suffix**.  Snapshot-backed sessions
   sharpen the resume point to the exact injection instruction
   (:class:`~repro.vm.snapshot.MidRunCapture`); later-rank members resume
   from the same capture with the call **passed through** instead of
   faulted and run on to their own (later) injection point, where a
   *nested* capture serves their own rank — each tree level pays only the
   suffix between divergence points.
3. **Replication** — if the probe's trigger never fires, no member's fault
   can ever be injected either (ranks fire monotonically later), so the
   probe's result is replicated for the whole group (with per-member
   log/coverage copies).  Additionally, when an injected run's suffix
   never reads ``errno`` (detected via the libc errno-read counter),
   members differing from it only in the injected errno are **suffix
   replicas**: their results are the source's with the logged fault errno
   patched, bit-identical to running them.

Soundness rests on determinism: only scenarios built solely from
deterministic trigger classes (:data:`SAFE_TRIGGER_CLASSES` — no random
triggers, no ``@shared_object`` parameters) are grouped, and only targets
that declare ``prefix_shareable`` (deterministic modulo the injected fault)
participate.  Everything else runs on the plain per-scenario path.  The
differential suite asserts shared campaigns are bit-identical to unshared
ones — serial and pooled (see ``run_groups`` in
:mod:`repro.core.controller.executor`, which executes whole groups as
backend tasks so sharing composes with the pool backends).
"""

from __future__ import annotations

import copy
import time
import weakref
from dataclasses import replace
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.controller.costmodel import observe_group_runtime

from repro.core.controller.monitor import (
    Outcome,
    OutcomeKind,
    RunResult,
    classify_exit_status,
)
from repro.core.controller.target import TargetAdapter, WorkloadRequest, make_gate
from repro.core.faults import UNSHAREABLE_CLASSES, apply_fault_on_machine
from repro.core.controller.memo import resolve_memo
from repro.core.injection.log import InjectionLog
from repro.core.scenario.model import Scenario
from repro.coverage.tracker import CoverageTracker
from repro.vm.dispatch import R0_SLOT
from repro.vm.snapshot import MidRunCapture, capture_gate_state, graft_gate_state

#: Trigger classes whose behaviour is a deterministic function of the call
#: stream (no randomness, no cross-run state): scenarios composed solely of
#: these may share prefixes.
SAFE_TRIGGER_CLASSES = frozenset(
    {"CallStackTrigger", "CallCountTrigger", "SingletonTrigger"}
)

#: One scheduling entry: (submission index, scenario, derived run seed).
Entry = Tuple[int, Optional[Scenario], Optional[int]]

#: A group's identity: (base fingerprint, rank).  Members with equal base
#: fingerprints form one group; the rank orders their divergence points.
KeyParts = Tuple[str, Tuple[int, ...]]


# ----------------------------------------------------------------------
# grouping
# ----------------------------------------------------------------------
def _rankable_call_count(scenario: Scenario) -> Optional[str]:
    """Trigger id of the single rank-bearing CallCountTrigger, or ``None``.

    A scenario's call-count variants can share a sub-prefix only when the
    count is the *sole* thing ordering their divergence: exactly one
    ``CallCountTrigger`` (plain ``nth``, no ``every`` periodicity), exactly
    one injecting plan, and the trigger gating that plan and nothing else.
    Everything else keeps the count in the base key (flat grouping).
    """
    count_ids = [
        trigger_id
        for trigger_id, declaration in scenario.triggers.items()
        if declaration.class_name == "CallCountTrigger"
    ]
    if len(count_ids) != 1:
        return None
    trigger_id = count_ids[0]
    params = scenario.triggers[trigger_id].params
    if params.get("every") is not None:
        return None
    injecting = [plan for plan in scenario.plans if plan.fault is not None]
    if len(injecting) != 1 or trigger_id not in injecting[0].trigger_ids:
        return None
    if any(
        trigger_id in plan.trigger_ids for plan in scenario.plans if plan.fault is None
    ):
        return None
    return trigger_id


#: Computed key parts, cached per scenario object.  Scenarios are
#: immutable once built (the whole grouping machinery already relies on
#: that: parts are derived at submit time and must hold for the run), so
#: the fingerprint is a pure function of the object — and it sits on the
#: per-member path of every sweep, twice (partitioning and memo keys).
_KEY_PARTS_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_KEY_PARTS_MISSING = object()


def scenario_group_key_parts(scenario: Optional[Scenario]) -> Optional[KeyParts]:
    """Hierarchical fingerprint of a scenario minus its fault values.

    ``None`` marks the scenario ineligible for sharing: no scenario at all,
    a trigger class outside the deterministic safe set, or parameters that
    reference shared objects (``"@name"``) whose behaviour the scheduler
    cannot reason about.  Otherwise returns ``(base_key, rank)``: scenarios
    with equal base keys run identically up to the *earliest* of their
    divergence points, and the rank — the stripped call-count threshold —
    orders those points (an empty rank means the scenarios diverge at the
    same point and differ only in the fault injected).
    """
    if scenario is None:
        return None
    try:
        cached = _KEY_PARTS_CACHE.get(scenario, _KEY_PARTS_MISSING)
    except TypeError:
        # Unweakrefable/unhashable stand-ins (test doubles): compute fresh.
        return _scenario_group_key_parts(scenario)
    if cached is not _KEY_PARTS_MISSING:
        return cached
    parts = _scenario_group_key_parts(scenario)
    try:
        _KEY_PARTS_CACHE[scenario] = parts
    except TypeError:
        pass
    return parts


def _scenario_group_key_parts(scenario: Scenario) -> Optional[KeyParts]:
    rank_id = _rankable_call_count(scenario)
    rank: Tuple[int, ...] = ()
    trigger_parts: List[tuple] = []
    for trigger_id in sorted(scenario.triggers):
        declaration = scenario.triggers[trigger_id]
        if declaration.class_name not in SAFE_TRIGGER_CLASSES:
            return None
        try:
            params = sorted(declaration.params.items())
        except TypeError:
            return None
        for _, value in params:
            if isinstance(value, str) and value.startswith("@"):
                return None
        if trigger_id == rank_id:
            nth = declaration.params.get("nth", declaration.params.get("count", 1))
            try:
                rank = (int(nth),)
            except (TypeError, ValueError):
                return None
            params = [item for item in params if item[0] not in ("nth", "count")]
        trigger_parts.append((trigger_id, declaration.class_name, repr(params)))
    plan_parts = []
    for plan in scenario.plans:
        fault_class = plan.fault.fault_class if plan.fault is not None else None
        if fault_class in UNSHAREABLE_CLASSES:
            # Stateful fault classes (ramps arm over the whole run, network
            # faults mutate shared delivery state, crash points unwind the
            # world): a shared prefix cannot stand in for their full runs.
            return None
        plan_parts.append(
            (plan.function, tuple(plan.trigger_ids), plan.fault is not None,
             plan.argc, fault_class)
        )
    return repr((tuple(trigger_parts), tuple(plan_parts))), rank


def scenario_group_key(scenario: Optional[Scenario]) -> Optional[str]:
    """The base (rank-free) group fingerprint, or ``None`` when unshareable."""
    parts = scenario_group_key_parts(scenario)
    return None if parts is None else parts[0]


def scenario_group_rank(scenario: Optional[Scenario]) -> Tuple[int, ...]:
    """The scenario's divergence rank within its group (empty = earliest)."""
    parts = scenario_group_key_parts(scenario)
    return () if parts is None else parts[1]


def partition_entries(
    entries: Sequence[Entry],
) -> Tuple[List[List[Entry]], List[Entry]]:
    """Split schedule entries into prefix groups and ungrouped leftovers.

    Groups come back in first-appearance order; members within a group are
    ordered by (rank, submission index) so the first member — the probe —
    is the one whose trigger fires earliest.  Ungrouped entries (no
    scenario, unsafe triggers) keep their submission order.
    """
    groups: Dict[str, List[Tuple[Tuple[int, ...], Entry]]] = {}
    ordered_keys: List[str] = []
    ungrouped: List[Entry] = []
    for entry in entries:
        parts = scenario_group_key_parts(entry[1])
        if parts is None:
            ungrouped.append(entry)
            continue
        base, rank = parts
        if base not in groups:
            groups[base] = []
            ordered_keys.append(base)
        groups[base].append((rank, entry))
    ordered_groups: List[List[Entry]] = []
    for key in ordered_keys:
        members = sorted(groups[key], key=lambda item: (item[0], item[1][0]))
        ordered_groups.append([entry for _rank, entry in members])
    return ordered_groups, ungrouped


def build_group_tasks(
    target: TargetAdapter,
    workload: str,
    entries: Sequence[Entry],
    collect_coverage: bool = False,
    options: Optional[Dict[str, Any]] = None,
    observe_only: bool = False,
) -> List["GroupTask"]:
    """Partition schedule entries into backend-ready group tasks.

    Multi-member prefix groups become one
    :class:`~repro.core.controller.executor.GroupTask` each (the worker
    shares the prefix internally); ungrouped entries ride along as
    singleton groups, which :func:`run_entry_group` executes on the plain
    per-scenario path — so one ``run_groups`` batch covers the whole
    schedule.
    """
    from repro.core.controller.executor import GroupTask

    groups, ungrouped = partition_entries(entries)
    groups.extend([entry] for entry in ungrouped)
    return [
        GroupTask(
            index=task_index,
            target=target,
            workload=workload,
            entries=list(members),
            collect_coverage=collect_coverage,
            options=dict(options or {}),
            observe_only=observe_only,
        )
        for task_index, members in enumerate(groups)
    ]


def sharing_supported(target: TargetAdapter) -> bool:
    """True when *target* declares deterministic, shareable execution."""
    return bool(getattr(target, "prefix_shareable", False))


def resolve_sharing(share_prefixes: Optional[bool], target: TargetAdapter) -> bool:
    """Resolve a ``share_prefixes`` knob against the target's declaration.

    ``None`` auto-detects (sharing iff the target declares
    ``prefix_shareable``); ``False`` forces the reference path; ``True``
    demands sharing and **raises** when the target does not declare
    deterministic execution — grouping a non-shareable target would
    silently produce results the per-scenario path cannot reproduce.
    """
    if share_prefixes is None:
        return sharing_supported(target)
    if share_prefixes and not sharing_supported(target):
        raise ValueError(
            f"share_prefixes=True requires a prefix_shareable target, but "
            f"{getattr(target, 'name', target)!r} does not declare "
            "deterministic (prefix-shareable) execution"
        )
    return bool(share_prefixes)


def _has_session_api(target: Any) -> bool:
    return all(
        hasattr(target, name)
        for name in ("open_session", "execute_plan", "finalize_run", "workload_plan")
    )


# ----------------------------------------------------------------------
# suffix memo keys
# ----------------------------------------------------------------------
#: Request options that cannot change a groupable run's observables and are
#: therefore excluded from memo keys.  ``run_seed`` is the deliberate one:
#: grouped scenarios are built solely from :data:`SAFE_TRIGGER_CLASSES`,
#: which never consult the seed, so keying on it would split cache lines
#: between specs/strategies that derive different seeds for identical runs
#: (the differential suite pins exactly this seed-independence).  ``memo``
#: and ``group_sched`` are pure scheduling knobs.
_MEMO_NEUTRAL_OPTIONS = frozenset({"run_seed", "memo", "group_sched", "engine", "snapshots"})


def _memo_context(
    target: TargetAdapter,
    workload: str,
    collect_coverage: bool,
    options: Dict[str, Any],
    observe_only: bool,
) -> Optional[tuple]:
    """The member-invariant part of a memo key, or ``None`` (uncacheable).

    Everything here is constant across one group's members — target and
    binary identity, workload, resolved engine/snapshot knobs, the libc
    spec fingerprint, and the conservative fold of unknown request
    options — so callers executing a whole group compute it once instead
    of per member (the fingerprint alone is a table scan).
    """
    if not sharing_supported(target):
        return None
    # Lazy imports: cache/targets sit beside (not below) the prefix
    # scheduler in the module graph.
    from repro.core.profiler.cache import libc_spec_fingerprint
    from repro.targets.base import default_snapshots
    from repro.vm.machine import resolve_engine

    snapshots = options.get("snapshots")
    if snapshots is None:
        snapshots = default_snapshots()
    binary = None
    if hasattr(target, "binary"):
        try:
            binary = target.binary()
        except Exception:
            return None
    extra = tuple(
        sorted(
            (name, repr(value))
            for name, value in options.items()
            if name not in _MEMO_NEUTRAL_OPTIONS
        )
    )
    return (
        getattr(target, "name", str(target)),
        # The compiled image's identity: `_binary_cache` keys images by
        # target name and keeps them alive, so `id` is stable per name and
        # changes when the cache is cleared and the source recompiled.
        id(binary) if binary is not None else None,
        workload,
        resolve_engine(options.get("engine")),
        bool(snapshots),
        libc_spec_fingerprint(),
        bool(collect_coverage),
        bool(observe_only),
        extra,
    )


def _member_key(context: tuple, scenario: Optional[Scenario]) -> Optional[tuple]:
    """One member's full memo key under *context*, or ``None``."""
    parts = scenario_group_key_parts(scenario)
    if parts is None:
        return None
    base, rank = parts
    faults = tuple(
        None
        if plan.fault is None
        else (
            plan.fault.fault_class,
            plan.fault.return_value,
            plan.fault.errno,
            plan.fault.params,
            repr(sorted(plan.fault.side_effects.items())),
        )
        for plan in scenario.plans
    )
    return context + (
        base,
        rank,
        faults,
        repr(getattr(scenario, "metadata", None) or None),
    )


def member_memo_key(
    target: TargetAdapter,
    workload: str,
    scenario: Optional[Scenario],
    collect_coverage: bool,
    options: Dict[str, Any],
    observe_only: bool,
) -> Optional[tuple]:
    """The suffix-memo key of one group member, or ``None`` (uncacheable).

    Only scenarios the scheduler could group — deterministic safe triggers,
    shareable fault classes, a ``prefix_shareable`` target — are
    memoizable: the key is exactly what determines such a run's
    observables.  Capture identity comes from the group base key plus the
    binary/libc fingerprints (a mutated libc spec or recompiled target
    misses, same as the boot-template cache); the fault identity is every
    plan's ``(class, return value, errno, params)`` tuple; the resolved
    engine/snapshot knobs pin the execution path, and any *other* request
    option is folded in conservatively by repr.
    """
    context = _memo_context(target, workload, collect_coverage, options, observe_only)
    if context is None:
        return None
    return _member_key(context, scenario)


# ----------------------------------------------------------------------
# result plumbing
# ----------------------------------------------------------------------
def seeded_options(options: Dict[str, Any], seed: Optional[int]) -> Dict[str, Any]:
    merged = dict(options)
    if seed is not None:
        merged.setdefault("run_seed", seed)
    return merged


def _plain_run(
    target: TargetAdapter,
    workload: str,
    scenario: Optional[Scenario],
    seed: Optional[int],
    collect_coverage: bool,
    options: Dict[str, Any],
    observe_only: bool = False,
) -> RunResult:
    return target.run(
        WorkloadRequest(
            workload=workload,
            scenario=scenario,
            observe_only=observe_only,
            collect_coverage=collect_coverage,
            options=seeded_options(options, seed),
        )
    )


def _clone_log(log: Optional[InjectionLog]) -> Optional[InjectionLog]:
    if log is None:
        return None
    clone = InjectionLog(record_passthrough=log.record_passthrough)
    clone.records = copy.deepcopy(log.records)
    clone.injection_count = log.injection_count
    clone.passthrough_count = log.passthrough_count
    clone._next_index = log._next_index
    return clone


def replicate_result(result: RunResult) -> RunResult:
    """A per-member copy of a replicated probe result.

    The outcome and log are copied so group members never share mutable
    state; a coverage tracker in the stats is cloned for the same reason.
    Other stats values (the published OS among them) are identical final
    states and may be shared read-only.
    """
    stats = dict(result.stats)
    coverage = stats.get("coverage")
    if coverage is not None and hasattr(coverage, "capture_state"):
        clone = type(coverage)()
        clone.restore_state(coverage.capture_state())
        stats["coverage"] = clone
    return RunResult(
        outcome=replace(result.outcome),
        log=_clone_log(result.log),
        stats=stats,
    )


# ----------------------------------------------------------------------
# errno-blind suffix replication
# ----------------------------------------------------------------------
def errno_sibling_positions(
    source: Scenario, member: Scenario
) -> Optional[List[int]]:
    """Plan positions where *member* differs from *source* in errno only.

    ``None`` means the two scenarios are not errno siblings: their plans
    differ in something other than the injected errno (return value,
    structure), so a suffix replica of one cannot stand in for the other.
    An empty list means the faults are identical.
    """
    if len(source.plans) != len(member.plans):
        return None
    positions: List[int] = []
    for index, (ours, theirs) in enumerate(zip(source.plans, member.plans)):
        if ours.fault == theirs.fault:
            continue
        if ours.fault is None or theirs.fault is None:
            return None
        if ours.fault.return_value != theirs.fault.return_value:
            return None
        if ours.fault.fault_class != theirs.fault.fault_class:
            return None
        if ours.fault.params != theirs.fault.params:
            return None
        positions.append(index)
    return positions


def patch_replica_errno(
    source_result: RunResult, source: Scenario, member: Scenario
) -> Optional[RunResult]:
    """Suffix replica of *source_result* with the member's errno in the log.

    Only valid when the source's suffix never read errno (the caller checks
    the libc errno-read counter): the runs are then instruction-identical
    and differ solely in the errno recorded for the injected fault.
    Returns ``None`` when the log shape does not allow an unambiguous patch
    (no injection, several injections, or no matching plan fault).
    """
    positions = errno_sibling_positions(source, member)
    if positions is None:
        return None
    injected = [
        record for record in (source_result.log.records if source_result.log else [])
        if record.injected and record.fault is not None
    ]
    if len(injected) != 1:
        return None
    record_fault = injected[0].fault
    matches = [
        index for index in positions if source.plans[index].fault == record_fault
    ]
    if positions and len(matches) != 1:
        return None
    clone = replicate_result(source_result)
    if matches:
        member_fault = member.plans[matches[0]].fault
        for record in clone.log.records:
            if record.injected and record.fault == record_fault:
                record.fault = replace(record.fault, errno=member_fault.errno)
    return clone


def _errno_read_counter(libc: Any) -> Optional[int]:
    """The libc's errno-read counter, or ``None`` when it does not count."""
    reads = getattr(libc, "errno_reads", None)
    return reads if isinstance(reads, int) else None


# ----------------------------------------------------------------------
# member gate re-arming (prefix trees)
# ----------------------------------------------------------------------
def rearm_member_triggers(gate: Any, scenario: Scenario) -> None:
    """Re-apply a member's own trigger parameters after a gate graft.

    :func:`~repro.vm.snapshot.graft_gate_state` installs the *probe's*
    trigger instances (with their accumulated counters) onto a member's
    gate.  Within a flat group the configurations are identical, but a
    ranked member's call-count threshold differs — ``init`` re-applies the
    declared parameters while the stock triggers' mutable counters
    (observed calls, grants, match counts) survive untouched, which is
    exactly the state the member's own run would hold at the graft point.
    """
    runtime = getattr(gate, "runtime", None)
    if runtime is None:
        return
    instances = getattr(runtime, "_instances", None)
    if not isinstance(instances, dict):
        return
    for trigger_id, declaration in scenario.triggers.items():
        instance = instances.get(trigger_id)
        if instance is not None:
            instance.init(dict(declaration.params))


# ----------------------------------------------------------------------
# group execution (session targets)
# ----------------------------------------------------------------------
def _install_capture_observers(
    session: Any,
    gate: Any,
    scenario: Scenario,
    step_ref: Dict[str, Any],
    want_pre_call: bool,
) -> Dict[str, Any]:
    """Arm *gate* to capture the machine at its first injection point.

    Returns the ``mid`` mailbox the observers fill: ``capture`` (the
    :class:`MidRunCapture`) and ``record`` (everything needed to replay or
    pass through the intercepted call — including, when ``want_pre_call``,
    the gate state snapshotted *before* the call was counted, which is what
    lets a later-rank member re-execute the call through its own gate).
    ``step_ref`` supplies the current workload-step index and the outcome
    accumulated before it.
    """
    mid: Dict[str, Any] = {"capture": None, "record": None}
    template = session.template
    if template is None:
        return mid
    pre: Dict[str, Any] = {"state": None}
    # Pre-call capture cost is one deep copy of the trigger instances and
    # counter dicts per intercepted call of the handled function(s) — O(1)
    # in prefix length with the default injection-only log.  A pass-through-
    # recording log would make each capture O(accumulated records); skip the
    # observer there and let later-rank members take the plain-run fallback
    # instead of paying a quadratic probe.
    if want_pre_call and getattr(gate.log, "record_passthrough", False):
        want_pre_call = False
    if want_pre_call:
        runtime = gate.runtime

        def observe_call(name: str, args: tuple) -> None:
            if mid["capture"] is not None:
                return
            if runtime is None or not runtime.handles(name):
                return
            pre["state"] = capture_gate_state(gate)

        gate.call_observer = observe_call

    def observe_injection(name, args, count, ctx, decision) -> None:
        if mid["capture"] is not None:
            return
        machine = ctx.extras.get("machine")
        if machine is not template.machine:
            return
        plan_index = next(
            (
                position
                for position, candidate in enumerate(scenario.plans)
                if candidate is decision.plan
            ),
            None,
        )
        if plan_index is None:
            return
        capture = MidRunCapture(machine, base_level=template.snapshot.memory_level)
        if capture.gate_state is None:
            return
        clock = getattr(ctx.os, "clock", None)
        mid["capture"] = capture
        mid["record"] = {
            "step": step_ref["index"],
            "name": name,
            "args": args,
            "count": count,
            "node": ctx.node,
            "module": ctx.module,
            "source": str(ctx.source) if ctx.source else "",
            "stack": list(ctx.stack),
            "sim_time": getattr(clock, "now", 0.0) if clock is not None else 0.0,
            "fired": list(decision.fired_triggers),
            "plan_index": plan_index,
            "prior_outcome": replace(step_ref["outcome"]),
            "pre_call_gate": pre["state"],
        }

    gate.inject_observer = observe_injection
    return mid


def _make_step_tracker(gate: Any) -> Tuple[Dict[str, Any], Any]:
    """A boundary hook tracking (step index, pre-injection outcome).

    The hook runs before each workload step; the outcome stops updating
    once the gate injects (or observes an injection) so ``outcome`` is the
    accumulated outcome *before* the divergence step — the prior every
    resumed member starts from.
    """
    track: Dict[str, Any] = {
        "index": 0,
        "outcome": Outcome(kind=OutcomeKind.NORMAL),
        "locked": False,
    }

    def hook(index: int, steps_run: int, outcome) -> None:
        track["index"] = index
        if track["locked"]:
            return
        if gate.injected_calls or gate.observed_injections:
            track["locked"] = True
            return
        track["outcome"] = replace(outcome)

    return track, hook


def _complete_member_run(
    target: Any,
    session: Any,
    plan: Sequence[Any],
    gate: Any,
    coverage: Any,
    status: Any,
    step_index: int,
    prior_outcome: Outcome,
    boundary_hook=None,
) -> RunResult:
    """Classify a resumed step's exit and run the remaining plan steps."""
    steps_run = step_index + 1
    outcome = replace(prior_outcome)
    step_outcome = classify_exit_status(status)
    if step_outcome.kind in (OutcomeKind.CRASH, OutcomeKind.ABORT, OutcomeKind.HANG):
        outcome = step_outcome
        if coverage is not None:
            coverage.finish_run()
    else:
        if step_outcome.kind is OutcomeKind.ERROR_EXIT and outcome.kind is OutcomeKind.NORMAL:
            outcome = step_outcome
        outcome, steps_run = target.execute_plan(
            session, plan, gate, coverage,
            start_index=step_index + 1, outcome=outcome,
            boundary_hook=boundary_hook,
        )
    return target.finalize_run(session, gate, coverage, outcome, steps_run)


def _resume_member_mid(
    target: Any,
    session: Any,
    plan: Sequence[Any],
    capture: MidRunCapture,
    record: Dict[str, Any],
    scenario: Scenario,
    seed: Optional[int],
    collect_coverage: bool,
    options: Dict[str, Any],
    observe_only: bool = False,
) -> RunResult:
    """Resume one same-rank member from the probe's injection-point capture.

    The capture holds machine state at the exact moment the shared trigger
    agreed, *before* any fault was applied; the member's own fault is then
    injected by replaying the gate's inject branch — side effect (errno),
    log record, return-value write — and execution resumes at the next
    instruction.  Every instruction of the common prefix is skipped.
    """
    gate = make_gate(
        scenario, observe_only=observe_only,
        run_seed=seeded_options(options, seed).get("run_seed"),
    )
    coverage = CoverageTracker() if collect_coverage else None
    machine = capture.restore(gate, coverage)
    rearm_member_triggers(gate, scenario)

    fault = scenario.plans[record["plan_index"]].fault
    gate.injected_calls += 1
    result = apply_fault_on_machine(fault, record["name"], record["args"], machine)
    result.injected = True
    gate.log.record(
        function=record["name"],
        args=record["args"],
        injected=True,
        call_count=record["count"],
        node=record["node"],
        module=record["module"],
        fault=fault,
        trigger_ids=list(record["fired"]),
        stack=list(record["stack"]),
        source=record["source"],
        sim_time=record["sim_time"],
    )
    machine.regs[R0_SLOT] = int(result.value)
    machine.pc = capture.pc + 1
    status = machine.resume()
    return _complete_member_run(
        target, session, plan, gate, coverage, status,
        record["step"], record["prior_outcome"],
    )


def _resume_member_passthrough(
    target: Any,
    session: Any,
    plan: Sequence[Any],
    capture: MidRunCapture,
    record: Dict[str, Any],
    scenario: Scenario,
    seed: Optional[int],
    collect_coverage: bool,
    options: Dict[str, Any],
    observe_only: bool = False,
) -> Tuple[RunResult, Dict[str, Any]]:
    """Resume a later-rank member from an earlier rank's capture.

    The member's trigger has not fired yet at the capture point, so instead
    of replaying the inject branch the intercepted **call instruction is
    re-executed** through the member's own gate: the pre-call gate state
    (snapshotted by the probe's call observer, before the call was counted
    or decided) is grafted, the machine is rolled back one instruction, and
    execution resumes — counting, trigger evaluation, pass-through, and the
    member's own later injection all happen on the normal path, which is
    what keeps the result bit-identical to a full run.  Returns the
    member's result plus the *nested* capture mailbox taken at the member's
    own injection point, which serves its rank siblings and deeper ranks.
    """
    gate = make_gate(
        scenario, observe_only=observe_only,
        run_seed=seeded_options(options, seed).get("run_seed"),
    )
    coverage = CoverageTracker() if collect_coverage else None
    machine = capture.restore(gate, coverage, gate_state=record["pre_call_gate"])
    rearm_member_triggers(gate, scenario)

    # Roll the machine back to *before* the call instruction: the capture
    # was taken mid-call, after the step/trace/coverage bookkeeping for it
    # already ran, and re-execution repeats all three.
    machine.pc = capture.pc
    machine.steps -= 1
    if machine.trace is not None and machine.trace and machine.trace[-1] == capture.pc:
        machine.trace.pop()
    if coverage is not None:
        coverage.unrecord(capture.pc)

    step_ref, hook = _make_step_tracker(gate)
    step_ref["index"] = record["step"]
    step_ref["outcome"] = replace(record["prior_outcome"])
    nested = _install_capture_observers(
        session, gate, scenario, step_ref, want_pre_call=True
    )
    status = machine.resume()
    result = _complete_member_run(
        target, session, plan, gate, coverage, status,
        record["step"], record["prior_outcome"], boundary_hook=hook,
    )
    gate.inject_observer = None
    gate.call_observer = None
    return result, nested


def _run_group_with_sessions(
    target: Any,
    workload: str,
    members: Sequence[Entry],
    collect_coverage: bool,
    options: Dict[str, Any],
    observe_only: bool = False,
) -> Dict[int, RunResult]:
    """Prefix-tree execution for session-capable (compiled) targets.

    The probe (first member, lowest rank) runs in full; along the way it
    captures the state every other member needs to skip the shared prefix —
    preferring an instruction-level :class:`MidRunCapture` at the injection
    point (available on snapshot-backed sessions) and falling back to the
    last workload-step boundary before the trigger step.  Later ranks chain
    nested captures (see :func:`_resume_member_passthrough`); errno-blind
    suffixes replicate across errno siblings instead of re-running.
    """
    results: Dict[int, RunResult] = {}
    plan = target.workload_plan(workload)
    engine = options.get("engine")
    snapshots = options.get("snapshots")
    ranks = [scenario_group_rank(entry[1]) for entry in members]
    ranked = len(set(ranks)) > 1
    probe_index, probe_scenario, probe_seed = members[0]

    session = target.open_session(
        workload,
        engine=engine,
        snapshots=None if snapshots is None else bool(snapshots),
        os_channel=options.get("os_channel"),
    )
    session.shared = True
    try:
        probe_gate = make_gate(
            probe_scenario,
            observe_only=observe_only,
            run_seed=seeded_options(options, probe_seed).get("run_seed"),
        )
        probe_coverage = CoverageTracker() if collect_coverage else None

        step_ref, step_hook = _make_step_tracker(probe_gate)
        light_boundaries = session.template is not None
        boundary: Dict[str, Any] = {"state": None, "locked": False}

        # The hook runs before each workload step and keeps overwriting the
        # boundary until an injection is observed: once step K injects, the
        # last capture is exactly the state before step K — where members
        # resume when no instruction-level capture is available.  On
        # snapshot-backed sessions the instruction-level capture is the
        # resume point, so only the step tracker runs (full per-step
        # OS/gate/coverage captures would be paid on every probe for
        # nothing).
        def capture_boundary(index: int, steps_run: int, outcome) -> None:
            step_hook(index, steps_run, outcome)
            if light_boundaries or boundary["locked"]:
                return
            if probe_gate.injected_calls or probe_gate.observed_injections:
                boundary["locked"] = True
                return
            gate_state = capture_gate_state(probe_gate)
            if gate_state is None:  # non-standard gate: give up on resuming
                boundary["state"] = None
                boundary["locked"] = True
                return
            boundary["state"] = {
                "index": index,
                "outcome": replace(outcome),
                "os": session.capture_os_boundary(),
                "gate": gate_state,
                "coverage": (
                    probe_coverage.capture_state()
                    if probe_coverage is not None
                    else None
                ),
            }

        mid = _install_capture_observers(
            session, probe_gate, probe_scenario, step_ref, want_pre_call=ranked
        )
        outcome, steps_run = target.execute_plan(
            session, plan, probe_gate, probe_coverage, boundary_hook=capture_boundary
        )
        probe_gate.inject_observer = None
        probe_gate.call_observer = None
        results[probe_index] = target.finalize_run(
            session, probe_gate, probe_coverage, outcome, steps_run
        )

        if not probe_gate.injected_calls:
            # No fault was ever applied — either the shared trigger never
            # agreed, or the gate observes without injecting.  Ranks only
            # fire later than the probe's, so no member's fault can apply
            # either and all runs are identical — replicate the probe.
            for index, _scenario, _seed in members[1:]:
                results[index] = replicate_result(results[probe_index])
            return results

        # The active divergence point: the capture, its record, the rank it
        # belongs to, and — for errno-blind suffix replication — the run
        # whose suffix it anchors plus that suffix's errno-read delta.
        libc = getattr(session, "libc", None)
        reads_end = _errno_read_counter(libc) if libc is not None else None
        # The compiled engine counts errno reads via predecode-specialized
        # absolute loads; a program that materializes errno's address
        # (``&errno``) can read it through a pointer the specialization
        # cannot see, so the counter — and therefore blindness — is only
        # trusted for images that provably never take the address.
        binary = getattr(session, "binary", None)
        counter_reliable = binary is not None and not getattr(
            binary, "errno_address_taken", True
        )

        def suffix_blind(capture: MidRunCapture) -> bool:
            if not counter_reliable:
                return False
            if reads_end is None or capture.libc_errno_reads is None:
                return False
            return reads_end == capture.libc_errno_reads

        active = {
            "capture": mid["capture"],
            "record": mid["record"],
            "rank": ranks[0],
            "source_index": probe_index,
            "source_scenario": probe_scenario,
            "source_blind": (
                mid["capture"] is not None
                and probe_gate.injected_calls == 1
                and suffix_blind(mid["capture"])
            ),
        }
        dead = False  # a later-rank member never injected: the rest cannot

        for position, (index, scenario, seed) in enumerate(members[1:], start=1):
            if dead:
                results[index] = replicate_result(results[active["source_index"]])
                continue
            if active["capture"] is None:
                # No instruction-level capture: resume from the last full
                # workload-step boundary, or run plainly when even that is
                # unavailable.  (The boundary path re-runs the whole
                # divergence step through the member's own gate, so it is
                # rank-agnostic by construction.)
                state = boundary["state"]
                if state is None:
                    results[index] = _plain_run(
                        target, workload, scenario, seed, collect_coverage,
                        options, observe_only=observe_only,
                    )
                    continue
                gate = make_gate(
                    scenario,
                    observe_only=observe_only,
                    run_seed=seeded_options(options, seed).get("run_seed"),
                )
                graft_gate_state(state["gate"], gate)
                rearm_member_triggers(gate, scenario)
                coverage = CoverageTracker() if collect_coverage else None
                if coverage is not None and state["coverage"] is not None:
                    coverage.restore_state(state["coverage"])
                session.restore_os_boundary(state["os"])
                member_outcome, member_steps = target.execute_plan(
                    session, plan, gate, coverage,
                    start_index=state["index"],
                    outcome=replace(state["outcome"]),
                )
                results[index] = target.finalize_run(
                    session, gate, coverage, member_outcome, member_steps
                )
                continue

            if ranks[position] == active["rank"]:
                if active["source_blind"]:
                    replica = patch_replica_errno(
                        results[active["source_index"]],
                        active["source_scenario"],
                        scenario,
                    )
                    if replica is not None:
                        results[index] = replica
                        continue
                results[index] = _resume_member_mid(
                    target, session, plan,
                    active["capture"], active["record"],
                    scenario, seed, collect_coverage, options,
                    observe_only=observe_only,
                )
                if not active["source_blind"]:
                    reads_end = _errno_read_counter(libc) if libc is not None else None
                    active.update(
                        source_index=index,
                        source_scenario=scenario,
                        source_blind=suffix_blind(active["capture"]),
                    )
                continue

            # Rank advance: this member's trigger fires after the active
            # capture point — pass the call through and run on to its own
            # injection, nesting a fresh capture there for its siblings.
            if active["record"]["pre_call_gate"] is None:
                results[index] = _plain_run(
                    target, workload, scenario, seed, collect_coverage,
                    options, observe_only=observe_only,
                )
                continue
            result, nested = _resume_member_passthrough(
                target, session, plan,
                active["capture"], active["record"],
                scenario, seed, collect_coverage, options,
                observe_only=observe_only,
            )
            results[index] = result
            reads_end = _errno_read_counter(libc) if libc is not None else None
            if result.injections == 0:
                # This member's (earliest-remaining) trigger never fired,
                # so no later member's can either: replicate from here on.
                dead = True
                active.update(source_index=index, source_scenario=scenario)
                continue
            active = {
                "capture": nested["capture"],
                "record": nested["record"],
                "rank": ranks[position],
                "source_index": index,
                "source_scenario": scenario,
                "source_blind": (
                    nested["capture"] is not None
                    and result.injections == 1
                    and suffix_blind(nested["capture"])
                ),
            }
        return results
    finally:
        session.close()


def _run_group_replicating(
    target: TargetAdapter,
    workload: str,
    members: Sequence[Entry],
    collect_coverage: bool,
    options: Dict[str, Any],
    observe_only: bool = False,
) -> Dict[int, RunResult]:
    """Probe + replication for Python-level targets (no session API).

    Runs whose shared trigger never fires are identical, so one probe run
    covers the whole group; once the probe injects, the members' faulted
    suffixes genuinely diverge and each member runs in full.
    """
    results: Dict[int, RunResult] = {}
    probe_index, probe_scenario, probe_seed = members[0]
    probe = _plain_run(
        target, workload, probe_scenario, probe_seed, collect_coverage, options,
        observe_only=observe_only,
    )
    results[probe_index] = probe
    if probe.injections == 0:
        for index, _scenario, _seed in members[1:]:
            results[index] = replicate_result(probe)
        return results
    for index, scenario, seed in members[1:]:
        results[index] = _plain_run(
            target, workload, scenario, seed, collect_coverage, options,
            observe_only=observe_only,
        )
    return results


# ----------------------------------------------------------------------
# the scheduler
# ----------------------------------------------------------------------
def run_entry_group(
    target: TargetAdapter,
    workload: str,
    members: Sequence[Entry],
    collect_coverage: bool = False,
    options: Optional[Dict[str, Any]] = None,
    observe_only: bool = False,
) -> Dict[int, RunResult]:
    """Execute one prefix group; the unit of work a backend task runs.

    Members must share a group base key and be ordered by rank (what
    :func:`partition_entries` produces).  A single-member group degrades to
    the plain per-scenario path, so ungrouped entries can be submitted as
    singleton groups with identical results.

    Before anything executes, the suffix memo
    (:mod:`repro.core.controller.memo`) is consulted per member: hits are
    answered with detached copies of the stored results, and only the
    missing members — still a rank-ordered subset of the group, which the
    prefix-tree machinery executes bit-identically to the full group —
    actually run.  Fresh results are stored back (detached) on the way
    out.  ``options["memo"] = False`` bypasses the cache entirely, which
    is the differential oracle path.
    """
    options = dict(options or {})
    memo = resolve_memo(options)
    context = (
        None
        if memo is None
        else _memo_context(target, workload, collect_coverage, options, observe_only)
    )
    if memo is None or context is None:
        return _run_entry_group_direct(
            target, workload, members, collect_coverage, options, observe_only
        )
    results: Dict[int, RunResult] = {}
    misses: List[Entry] = []
    miss_keys: Dict[int, Optional[tuple]] = {}
    for entry in members:
        index, scenario, _seed = entry
        key = _member_key(context, scenario)
        if key is not None:
            hit = memo.lookup(key)
            if hit is not None:
                # Already a detached copy: the memo unpickles per hit.
                results[index] = hit
                continue
        miss_keys[index] = key
        misses.append(entry)
    if misses:
        fresh = _run_entry_group_direct(
            target, workload, misses, collect_coverage, options, observe_only
        )
        for index, result in fresh.items():
            key = miss_keys.get(index)
            if key is not None:
                # store() pickles: the cached blob is immune to whatever
                # the caller does with the live result afterwards.
                memo.store(key, result)
            results[index] = result
    return results


def _run_entry_group_direct(
    target: TargetAdapter,
    workload: str,
    members: Sequence[Entry],
    collect_coverage: bool,
    options: Dict[str, Any],
    observe_only: bool = False,
) -> Dict[int, RunResult]:
    """The memo-free group execution paths (probe + resume/replicate).

    Every direct execution (memo hits never reach here) is timed and fed
    to the process-wide :class:`~repro.core.controller.costmodel.CostModel`
    as one ``(members, elapsed)`` observation — the raw material the
    scheduler's learned suffix fraction is fitted from.
    """
    started = time.perf_counter()
    try:
        results = _run_entry_group_paths(
            target, workload, members, collect_coverage, options,
            observe_only=observe_only,
        )
    finally:
        observe_group_runtime(len(members), time.perf_counter() - started)
    return results


def _run_entry_group_paths(
    target: TargetAdapter,
    workload: str,
    members: Sequence[Entry],
    collect_coverage: bool,
    options: Dict[str, Any],
    observe_only: bool = False,
) -> Dict[int, RunResult]:
    if len(members) == 1:
        index, scenario, seed = members[0]
        return {
            index: _plain_run(
                target, workload, scenario, seed, collect_coverage, options,
                observe_only=observe_only,
            )
        }
    if _has_session_api(target):
        return _run_group_with_sessions(
            target, workload, members, collect_coverage, options,
            observe_only=observe_only,
        )
    if hasattr(target, "run_prefix_group"):
        # The target implements its own forkserver-style group path
        # (e.g. state-forking a Python-level server world).
        return target.run_prefix_group(
            workload, members, collect_coverage, options,
            observe_only=observe_only,
        )
    return _run_group_replicating(
        target, workload, members, collect_coverage, options,
        observe_only=observe_only,
    )


def iter_shared_runs(
    target: TargetAdapter,
    workload: str,
    entries: Sequence[Entry],
    collect_coverage: bool = False,
    options: Optional[Dict[str, Any]] = None,
    observe_only: bool = False,
) -> Iterator[Tuple[int, RunResult]]:
    """Run every entry, sharing prefixes within scenario groups.

    Yields ``(submission index, result)`` pairs as they complete (group by
    group, in first-appearance order) so callers can checkpoint
    incrementally; the pairs cover every entry exactly once, and each
    result is bit-identical to what the plain per-scenario path produces.
    """
    options = dict(options or {})
    groups, ungrouped = partition_entries(entries)
    for members in groups:
        results = run_entry_group(
            target, workload, members, collect_coverage=collect_coverage,
            options=options, observe_only=observe_only,
        )
        for index in sorted(results):
            yield index, results[index]
    for index, scenario, seed in ungrouped:
        yield index, _plain_run(
            target, workload, scenario, seed, collect_coverage, options,
            observe_only=observe_only,
        )


def run_scenarios_shared(
    target: TargetAdapter,
    workload: str,
    scenarios: Sequence[Optional[Scenario]],
    seeds: Optional[Sequence[Optional[int]]] = None,
    collect_coverage: bool = False,
    options: Optional[Dict[str, Any]] = None,
    observe_only: bool = False,
) -> List[RunResult]:
    """Eager wrapper over :func:`iter_shared_runs`, in submission order."""
    entries: List[Entry] = [
        (index, scenario, seeds[index] if seeds is not None else None)
        for index, scenario in enumerate(scenarios)
    ]
    collected: Dict[int, RunResult] = {}
    for index, result in iter_shared_runs(
        target, workload, entries, collect_coverage=collect_coverage,
        options=options, observe_only=observe_only,
    ):
        collected[index] = result
    return [collected[index] for index in range(len(entries))]


__all__ = [
    "SAFE_TRIGGER_CLASSES",
    "Entry",
    "build_group_tasks",
    "errno_sibling_positions",
    "iter_shared_runs",
    "member_memo_key",
    "partition_entries",
    "patch_replica_errno",
    "rearm_member_triggers",
    "replicate_result",
    "resolve_sharing",
    "run_entry_group",
    "run_scenarios_shared",
    "scenario_group_key",
    "scenario_group_key_parts",
    "scenario_group_rank",
    "seeded_options",
    "sharing_supported",
]
