"""Prefix-sharing campaign scheduling.

An LFI campaign runs one workload per fault scenario, and the analyzer
generates its scenarios in families: one per (call site x error return x
errno), all sharing the **same trigger composition** — same call-stack
frame, same singleton — and differing only in the fault injected.  Every
run in such a family executes an identical prefix (boot, fixtures, all
instructions up to the trigger site) before the armed injection diverges.

This module eliminates that redundancy at the schedule level:

1. **Grouping** — :func:`scenario_group_key` fingerprints a scenario's
   trigger declarations and plan structure *without* the fault values;
   scenarios with equal keys under one workload form a group whose members
   are interchangeable until the moment of injection.
2. **Probe + resume** — the group's first member runs normally; for targets
   exposing the :class:`~repro.targets.base.CompiledTarget` session API the
   probe snapshots OS/gate/coverage state at the last workload-step
   boundary before its trigger fires, and every other member restores that
   boundary (its own gate is grafted with the shared interception state)
   and executes **only the post-trigger suffix**.
3. **Replication** — if the probe's trigger never fires, no member's fault
   can ever be injected either, so the probe's result is replicated for the
   whole group (with per-member log/coverage copies) — the common case for
   sites a given workload does not exercise.

Soundness rests on determinism: only scenarios built solely from
deterministic trigger classes (:data:`SAFE_TRIGGER_CLASSES` — no random
triggers, no ``@shared_object`` parameters) are grouped, and only targets
that declare ``prefix_shareable`` (deterministic modulo the injected fault)
participate.  Everything else runs on the plain per-scenario path.  The
differential suite asserts shared campaigns are bit-identical to unshared
ones.
"""

from __future__ import annotations

import copy
from dataclasses import replace
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.controller.monitor import (
    Outcome,
    OutcomeKind,
    RunResult,
    classify_exit_status,
)
from repro.core.controller.target import TargetAdapter, WorkloadRequest, make_gate
from repro.core.injection.log import InjectionLog
from repro.core.scenario.model import Scenario
from repro.coverage.tracker import CoverageTracker
from repro.vm.dispatch import R0_SLOT
from repro.vm.snapshot import MidRunCapture, capture_gate_state, graft_gate_state

#: Trigger classes whose behaviour is a deterministic function of the call
#: stream (no randomness, no cross-run state): scenarios composed solely of
#: these may share prefixes.
SAFE_TRIGGER_CLASSES = frozenset(
    {"CallStackTrigger", "CallCountTrigger", "SingletonTrigger"}
)

#: One scheduling entry: (submission index, scenario, derived run seed).
Entry = Tuple[int, Optional[Scenario], Optional[int]]


# ----------------------------------------------------------------------
# grouping
# ----------------------------------------------------------------------
def scenario_group_key(scenario: Optional[Scenario]) -> Optional[str]:
    """Fingerprint of a scenario minus its fault values, or ``None``.

    ``None`` marks the scenario ineligible for sharing: no scenario at all,
    a trigger class outside the deterministic safe set, or parameters that
    reference shared objects (``"@name"``) whose behaviour the scheduler
    cannot reason about.  Scenarios with equal keys run identically up to
    (and including the decision of) their first injection.
    """
    if scenario is None:
        return None
    trigger_parts: List[tuple] = []
    for trigger_id in sorted(scenario.triggers):
        declaration = scenario.triggers[trigger_id]
        if declaration.class_name not in SAFE_TRIGGER_CLASSES:
            return None
        try:
            params = sorted(declaration.params.items())
        except TypeError:
            return None
        for _, value in params:
            if isinstance(value, str) and value.startswith("@"):
                return None
        trigger_parts.append((trigger_id, declaration.class_name, repr(params)))
    plan_parts = [
        (plan.function, tuple(plan.trigger_ids), plan.fault is not None, plan.argc)
        for plan in scenario.plans
    ]
    return repr((tuple(trigger_parts), tuple(plan_parts)))


def sharing_supported(target: TargetAdapter) -> bool:
    """True when *target* declares deterministic, shareable execution."""
    return bool(getattr(target, "prefix_shareable", False))


def _has_session_api(target: Any) -> bool:
    return all(
        hasattr(target, name)
        for name in ("open_session", "execute_plan", "finalize_run", "workload_plan")
    )


# ----------------------------------------------------------------------
# result plumbing
# ----------------------------------------------------------------------
def seeded_options(options: Dict[str, Any], seed: Optional[int]) -> Dict[str, Any]:
    merged = dict(options)
    if seed is not None:
        merged.setdefault("run_seed", seed)
    return merged


def _plain_run(
    target: TargetAdapter,
    workload: str,
    scenario: Optional[Scenario],
    seed: Optional[int],
    collect_coverage: bool,
    options: Dict[str, Any],
    observe_only: bool = False,
) -> RunResult:
    return target.run(
        WorkloadRequest(
            workload=workload,
            scenario=scenario,
            observe_only=observe_only,
            collect_coverage=collect_coverage,
            options=seeded_options(options, seed),
        )
    )


def _clone_log(log: Optional[InjectionLog]) -> Optional[InjectionLog]:
    if log is None:
        return None
    clone = InjectionLog(record_passthrough=log.record_passthrough)
    clone.records = copy.deepcopy(log.records)
    clone.injection_count = log.injection_count
    clone.passthrough_count = log.passthrough_count
    clone._next_index = log._next_index
    return clone


def replicate_result(result: RunResult) -> RunResult:
    """A per-member copy of a replicated probe result.

    The outcome and log are copied so group members never share mutable
    state; a coverage tracker in the stats is cloned for the same reason.
    Other stats values (the published OS among them) are identical final
    states and may be shared read-only.
    """
    stats = dict(result.stats)
    coverage = stats.get("coverage")
    if coverage is not None and hasattr(coverage, "capture_state"):
        clone = type(coverage)()
        clone.restore_state(coverage.capture_state())
        stats["coverage"] = clone
    return RunResult(
        outcome=replace(result.outcome),
        log=_clone_log(result.log),
        stats=stats,
    )


# ----------------------------------------------------------------------
# group execution
# ----------------------------------------------------------------------
def _resume_member_mid(
    target: Any,
    session: Any,
    plan: Sequence[Any],
    capture: MidRunCapture,
    record: Dict[str, Any],
    prior_outcome: Outcome,
    scenario: Scenario,
    seed: Optional[int],
    collect_coverage: bool,
    options: Dict[str, Any],
) -> RunResult:
    """Resume one member from the probe's injection-point capture.

    The capture holds machine state at the exact moment the shared trigger
    agreed, *before* any fault was applied; the member's own fault is then
    injected by replaying the gate's inject branch — side effect (errno),
    log record, return-value write — and execution resumes at the next
    instruction.  Every instruction of the common prefix is skipped.
    """
    gate = make_gate(
        scenario, run_seed=seeded_options(options, seed).get("run_seed")
    )
    coverage = CoverageTracker() if collect_coverage else None
    machine = capture.restore(gate, coverage)

    fault = scenario.plans[record["plan_index"]].fault
    gate.injected_calls += 1
    result = machine.libc.apply_injected_fault(
        record["name"], fault.return_value, fault.errno, machine.memory
    )
    result.injected = True
    gate.log.record(
        function=record["name"],
        args=record["args"],
        injected=True,
        call_count=record["count"],
        node=record["node"],
        module=record["module"],
        fault=fault,
        trigger_ids=list(record["fired"]),
        stack=list(record["stack"]),
        source=record["source"],
        sim_time=record["sim_time"],
    )
    machine.regs[R0_SLOT] = int(result.value)
    machine.pc = capture.pc + 1
    status = machine.resume()

    step_index = record["step"]
    steps_run = step_index + 1
    outcome = replace(prior_outcome)
    step_outcome = classify_exit_status(status)
    if step_outcome.kind in (OutcomeKind.CRASH, OutcomeKind.ABORT, OutcomeKind.HANG):
        outcome = step_outcome
        if coverage is not None:
            coverage.finish_run()
    else:
        if step_outcome.kind is OutcomeKind.ERROR_EXIT and outcome.kind is OutcomeKind.NORMAL:
            outcome = step_outcome
        outcome, steps_run = target.execute_plan(
            session, plan, gate, coverage,
            start_index=step_index + 1, outcome=outcome,
        )
    return target.finalize_run(session, gate, coverage, outcome, steps_run)


def _run_group_with_sessions(
    target: Any,
    workload: str,
    members: Sequence[Entry],
    collect_coverage: bool,
    options: Dict[str, Any],
    observe_only: bool = False,
) -> Dict[int, RunResult]:
    """Probe + resume execution for session-capable (compiled) targets.

    The probe (first member) runs in full; along the way it captures the
    state every other member needs to skip the shared prefix — preferring
    an instruction-level :class:`MidRunCapture` at the injection point
    (available on snapshot-backed sessions) and falling back to the last
    workload-step boundary before the trigger step.
    """
    results: Dict[int, RunResult] = {}
    plan = target.workload_plan(workload)
    engine = options.get("engine")
    snapshots = bool(options.get("snapshots", True))
    probe_index, probe_scenario, probe_seed = members[0]

    session = target.open_session(workload, engine=engine, snapshots=snapshots)
    session.shared = True
    try:
        probe_gate = make_gate(
            probe_scenario,
            observe_only=observe_only,
            run_seed=seeded_options(options, probe_seed).get("run_seed"),
        )
        probe_coverage = CoverageTracker() if collect_coverage else None

        # The hook runs before each workload step and keeps overwriting the
        # boundary until an injection is observed: once step K injects, the
        # last capture is exactly the state before step K — where members
        # resume when no instruction-level capture is available.  On
        # snapshot-backed sessions the instruction-level capture below is
        # the resume point, so the boundary only tracks the accumulated
        # outcome (full per-step OS/gate/coverage captures would be paid on
        # every probe for nothing).
        light_boundaries = session.template is not None
        current_step = {"index": 0}
        boundary: Dict[str, Any] = {"state": None, "locked": False}

        def capture_boundary(index: int, steps_run: int, outcome) -> None:
            current_step["index"] = index
            if boundary["locked"]:
                return
            if probe_gate.injected_calls or probe_gate.observed_injections:
                boundary["locked"] = True
                return
            if light_boundaries:
                boundary["state"] = {
                    "index": index,
                    "outcome": replace(outcome),
                    "full": False,
                }
                return
            gate_state = capture_gate_state(probe_gate)
            if gate_state is None:  # non-standard gate: give up on resuming
                boundary["state"] = None
                boundary["locked"] = True
                return
            boundary["state"] = {
                "index": index,
                "outcome": replace(outcome),
                "full": True,
                "os": session.capture_os_boundary(),
                "gate": gate_state,
                "coverage": (
                    probe_coverage.capture_state()
                    if probe_coverage is not None
                    else None
                ),
            }

        # On snapshot-backed sessions, additionally capture the machine at
        # the exact injection point (mid-instruction-stream): the observer
        # fires inside the gate, after the triggers agreed and before the
        # probe's fault is applied, counted, or logged.
        mid: Dict[str, Any] = {"capture": None, "record": None}
        template = session.template
        if template is not None:

            def observe_injection(name, args, count, ctx, decision) -> None:
                if mid["capture"] is not None:
                    return
                machine = ctx.extras.get("machine")
                if machine is not template.machine:
                    return
                plan_index = next(
                    (
                        position
                        for position, candidate in enumerate(probe_scenario.plans)
                        if candidate is decision.plan
                    ),
                    None,
                )
                if plan_index is None:
                    return
                capture = MidRunCapture(
                    machine, base_level=template.snapshot.memory_level
                )
                if capture.gate_state is None:
                    return
                clock = getattr(ctx.os, "clock", None)
                mid["capture"] = capture
                mid["record"] = {
                    "step": current_step["index"],
                    "name": name,
                    "args": args,
                    "count": count,
                    "node": ctx.node,
                    "module": ctx.module,
                    "source": str(ctx.source) if ctx.source else "",
                    "stack": list(ctx.stack),
                    "sim_time": getattr(clock, "now", 0.0) if clock is not None else 0.0,
                    "fired": list(decision.fired_triggers),
                    "plan_index": plan_index,
                }

            probe_gate.inject_observer = observe_injection

        outcome, steps_run = target.execute_plan(
            session, plan, probe_gate, probe_coverage, boundary_hook=capture_boundary
        )
        probe_gate.inject_observer = None
        results[probe_index] = target.finalize_run(
            session, probe_gate, probe_coverage, outcome, steps_run
        )

        if not probe_gate.injected_calls:
            # No fault was ever applied — either the shared trigger never
            # agreed, or the gate observes without injecting.  Both ways the
            # members' faults are dead weight and all runs are identical —
            # replicate the probe.
            for index, _scenario, _seed in members[1:]:
                results[index] = replicate_result(results[probe_index])
            return results

        state = boundary["state"]
        for index, scenario, seed in members[1:]:
            if mid["capture"] is not None:
                prior = (
                    replace(state["outcome"])
                    if state is not None
                    else Outcome(kind=OutcomeKind.NORMAL)
                )
                results[index] = _resume_member_mid(
                    target, session, plan,
                    mid["capture"], mid["record"], prior,
                    scenario, seed, collect_coverage, options,
                )
                continue
            if state is None or not state["full"]:
                # No usable capture (non-standard gate, or a light boundary
                # whose instruction-level capture fell through): run plainly.
                results[index] = _plain_run(
                    target, workload, scenario, seed, collect_coverage, options,
                    observe_only=observe_only,
                )
                continue
            gate = make_gate(
                scenario,
                observe_only=observe_only,
                run_seed=seeded_options(options, seed).get("run_seed"),
            )
            graft_gate_state(state["gate"], gate)
            coverage = CoverageTracker() if collect_coverage else None
            if coverage is not None and state["coverage"] is not None:
                coverage.restore_state(state["coverage"])
            session.restore_os_boundary(state["os"])
            member_outcome, member_steps = target.execute_plan(
                session,
                plan,
                gate,
                coverage,
                start_index=state["index"],
                outcome=replace(state["outcome"]),
            )
            results[index] = target.finalize_run(
                session, gate, coverage, member_outcome, member_steps
            )
        return results
    finally:
        session.close()


def _run_group_replicating(
    target: TargetAdapter,
    workload: str,
    members: Sequence[Entry],
    collect_coverage: bool,
    options: Dict[str, Any],
    observe_only: bool = False,
) -> Dict[int, RunResult]:
    """Probe + replication for Python-level targets (no session API).

    Runs whose shared trigger never fires are identical, so one probe run
    covers the whole group; once the probe injects, the members' faulted
    suffixes genuinely diverge and each member runs in full.
    """
    results: Dict[int, RunResult] = {}
    probe_index, probe_scenario, probe_seed = members[0]
    probe = _plain_run(
        target, workload, probe_scenario, probe_seed, collect_coverage, options,
        observe_only=observe_only,
    )
    results[probe_index] = probe
    if probe.injections == 0:
        for index, _scenario, _seed in members[1:]:
            results[index] = replicate_result(probe)
        return results
    for index, scenario, seed in members[1:]:
        results[index] = _plain_run(
            target, workload, scenario, seed, collect_coverage, options,
            observe_only=observe_only,
        )
    return results


# ----------------------------------------------------------------------
# the scheduler
# ----------------------------------------------------------------------
def iter_shared_runs(
    target: TargetAdapter,
    workload: str,
    entries: Sequence[Entry],
    collect_coverage: bool = False,
    options: Optional[Dict[str, Any]] = None,
    observe_only: bool = False,
) -> Iterator[Tuple[int, RunResult]]:
    """Run every entry, sharing prefixes within scenario groups.

    Yields ``(submission index, result)`` pairs as they complete (group by
    group, in first-appearance order) so callers can checkpoint
    incrementally; the pairs cover every entry exactly once, and each
    result is bit-identical to what the plain per-scenario path produces.
    """
    options = dict(options or {})
    groups: Dict[str, List[Entry]] = {}
    ordered_keys: List[str] = []
    ungrouped: List[Entry] = []
    for entry in entries:
        key = scenario_group_key(entry[1])
        if key is None:
            ungrouped.append(entry)
            continue
        if key not in groups:
            groups[key] = []
            ordered_keys.append(key)
        groups[key].append(entry)

    for key in ordered_keys:
        members = groups[key]
        if len(members) == 1:
            index, scenario, seed = members[0]
            yield index, _plain_run(
                target, workload, scenario, seed, collect_coverage, options,
                observe_only=observe_only,
            )
            continue
        if _has_session_api(target):
            results = _run_group_with_sessions(
                target, workload, members, collect_coverage, options,
                observe_only=observe_only,
            )
        elif hasattr(target, "run_prefix_group"):
            # The target implements its own forkserver-style group path
            # (e.g. deepcopy-forking a Python-level server world).
            results = target.run_prefix_group(
                workload, members, collect_coverage, options,
                observe_only=observe_only,
            )
        else:
            results = _run_group_replicating(
                target, workload, members, collect_coverage, options,
                observe_only=observe_only,
            )
        for index in sorted(results):
            yield index, results[index]

    for index, scenario, seed in ungrouped:
        yield index, _plain_run(
            target, workload, scenario, seed, collect_coverage, options,
            observe_only=observe_only,
        )


def run_scenarios_shared(
    target: TargetAdapter,
    workload: str,
    scenarios: Sequence[Optional[Scenario]],
    seeds: Optional[Sequence[Optional[int]]] = None,
    collect_coverage: bool = False,
    options: Optional[Dict[str, Any]] = None,
    observe_only: bool = False,
) -> List[RunResult]:
    """Eager wrapper over :func:`iter_shared_runs`, in submission order."""
    entries: List[Entry] = [
        (index, scenario, seeds[index] if seeds is not None else None)
        for index, scenario in enumerate(scenarios)
    ]
    collected: Dict[int, RunResult] = {}
    for index, result in iter_shared_runs(
        target, workload, entries, collect_coverage=collect_coverage,
        options=options, observe_only=observe_only,
    ):
        collected[index] = result
    return [collected[index] for index in range(len(entries))]


__all__ = [
    "SAFE_TRIGGER_CLASSES",
    "iter_shared_runs",
    "run_scenarios_shared",
    "scenario_group_key",
    "sharing_supported",
]
