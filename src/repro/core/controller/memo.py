"""Suffix memoization: never pay for an already-probed fault point twice.

A prefix-group member's run is a pure function of (target binary, workload,
libc spec, trigger composition, injected fault, execution knobs): the
scheduler only groups scenarios built from deterministic trigger classes
(:data:`~repro.core.controller.prefix.SAFE_TRIGGER_CLASSES`) against
targets that declare ``prefix_shareable``.  So when a strategy re-sweeps
the same points, a campaign resumes, or overlapping specs land on one
long-lived ``repro-campaignd`` worker, re-executing the suffix buys
nothing — the stored :class:`~repro.core.controller.monitor.RunResult` is
bit-identical to a fresh run.

This module is that store: a process-wide LRU cache mapping *member memo
keys* (built by :func:`~repro.core.controller.prefix.member_memo_key` from
the group base key, the member's fault values, and every
behaviour-relevant execution knob) to pickled result blobs, unpickled per
hit so every consumer gets a detached copy.  The cache is bounded by a
byte budget — an entry costs exactly its pickled length, the same bytes a
result pays to cross a process pool — and evicts least recently used
entries first.

Knobs:

* ``options["memo"]`` on any campaign/exploration run — ``False`` disables
  consultation *and* insertion (the differential oracle path), ``True``
  forces the process memo, a :class:`SuffixMemo` instance selects a
  private cache (tests);
* ``REPRO_MEMO=0`` disables the process-wide default;
* ``REPRO_MEMO_BYTES`` sets the byte budget (default 64 MiB).

Correctness boundaries, enforced by the callers in
:mod:`repro.core.controller.prefix`:

* only groupable scenarios (deterministic triggers, shareable fault
  classes, ``prefix_shareable`` targets) get keys — everything else runs
  uncached;
* the per-run seed is deliberately **excluded** from keys: safe trigger
  classes never consult it, so including it would split cache lines
  across specs/strategies that derive different seeds for identical runs
  (the differential suite pins that results do not depend on it);
* store replay (:meth:`ExplorationEngine.explore` resuming from a
  :class:`ResultStore`) never reaches :func:`run_entry_group`, so lossy
  replayed records can never poison the memo.

Forked process-pool workers inherit a warm parent memo for free; their
own insertions stay in the child (same story as the artifact cache).
"""

from __future__ import annotations

import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional

#: Default byte budget for the process-wide memo.
DEFAULT_MEMO_BYTES = 64 * 1024 * 1024


def default_memo_enabled() -> bool:
    """Process-wide default for suffix memoization (``REPRO_MEMO``)."""
    return os.environ.get("REPRO_MEMO", "1").lower() not in ("0", "false", "no")


def default_memo_bytes() -> int:
    """The configured byte budget (``REPRO_MEMO_BYTES``)."""
    raw = os.environ.get("REPRO_MEMO_BYTES")
    if not raw:
        return DEFAULT_MEMO_BYTES
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_MEMO_BYTES


@dataclass
class MemoStats:
    """Observable counters of one :class:`SuffixMemo` (stats surfacing)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    rejected: int = 0
    entries: int = 0
    current_bytes: int = 0
    max_bytes: int = 0


class SuffixMemo:
    """LRU result cache with a byte budget (thread-safe).

    Values are **pickled on insert and unpickled per hit**: every consumer
    gets a detached copy by construction — no caller-side deep copies, no
    mutable state shared between a cached result and anything downstream.
    Unpickling a few-KB result is also several times cheaper than the deep
    copy it replaces, which is what keeps warm re-sweeps fast, and the
    byte accounting is exact (the blob *is* the entry) rather than an
    estimate.
    """

    def __init__(self, max_bytes: Optional[int] = None) -> None:
        self.max_bytes = default_memo_bytes() if max_bytes is None else max(0, int(max_bytes))
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, bytes]" = OrderedDict()  # key -> pickled result
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._evictions = 0
        self._rejected = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(self, key: Hashable) -> Optional[Any]:
        """A detached copy of the cached result for *key* (refreshing its
        recency), or None."""
        with self._lock:
            blob = self._entries.get(key)
            if blob is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
        # Unpickle outside the lock: the copy is private to this caller.
        return pickle.loads(blob)

    def store(self, key: Hashable, result: Any) -> bool:
        """Insert *result* under *key*; False when it cannot be cached.

        The entry is the pickled result — what the result costs to ship
        across a pool boundary, and exactly what the cache pins in memory.
        Unpicklable results (exotic stats payloads) are rejected rather
        than guessed at, and a single result larger than the whole budget
        is rejected instead of evicting everything else.
        """
        try:
            blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            with self._lock:
                self._rejected += 1
            return False
        size = len(blob)
        with self._lock:
            if size > self.max_bytes:
                self._rejected += 1
                return False
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= len(previous)
            self._entries[key] = blob
            self._bytes += size
            self._stores += 1
            while self._bytes > self.max_bytes and self._entries:
                _old_key, old_blob = self._entries.popitem(last=False)
                self._bytes -= len(old_blob)
                self._evictions += 1
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._hits = self._misses = self._stores = 0
            self._evictions = self._rejected = 0

    def stats(self) -> MemoStats:
        with self._lock:
            return MemoStats(
                hits=self._hits,
                misses=self._misses,
                stores=self._stores,
                evictions=self._evictions,
                rejected=self._rejected,
                entries=len(self._entries),
                current_bytes=self._bytes,
                max_bytes=self.max_bytes,
            )


_PROCESS_MEMO: Optional[SuffixMemo] = None
_PROCESS_LOCK = threading.Lock()


def suffix_memo() -> SuffixMemo:
    """The process-wide memo (created on first use)."""
    global _PROCESS_MEMO
    with _PROCESS_LOCK:
        if _PROCESS_MEMO is None:
            _PROCESS_MEMO = SuffixMemo()
        return _PROCESS_MEMO


def clear_suffix_memo() -> None:
    """Drop every process-memo entry and reset its counters (tests/bench)."""
    with _PROCESS_LOCK:
        if _PROCESS_MEMO is not None:
            _PROCESS_MEMO.clear()


def suffix_memo_stats() -> MemoStats:
    """Counters of the process-wide memo (zeros before first use)."""
    with _PROCESS_LOCK:
        memo = _PROCESS_MEMO
    return memo.stats() if memo is not None else MemoStats(max_bytes=default_memo_bytes())


def resolve_memo(options: Dict[str, Any]) -> Optional[SuffixMemo]:
    """The memo an execution should use, or ``None`` (the oracle path).

    ``options["memo"]`` wins: ``False`` disables, ``True`` selects the
    process memo regardless of ``REPRO_MEMO``, a :class:`SuffixMemo`
    instance is used directly.  Absent the option, the environment default
    decides.
    """
    knob = options.get("memo")
    if isinstance(knob, SuffixMemo):
        return knob
    if knob is None:
        return suffix_memo() if default_memo_enabled() else None
    return suffix_memo() if knob else None


__all__ = [
    "DEFAULT_MEMO_BYTES",
    "MemoStats",
    "SuffixMemo",
    "clear_suffix_memo",
    "default_memo_enabled",
    "default_memo_bytes",
    "resolve_memo",
    "suffix_memo",
    "suffix_memo_stats",
]
