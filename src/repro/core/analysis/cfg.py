"""Partial control-flow graph construction.

For each call site, the analyzer builds a CFG of the instructions that
*follow* the call — the paper found 100 post-call instructions to be enough
to see how the return value and side effects are handled.  Indirect branches
would make the CFG inaccurate; the synthetic ISA has none (the paper reports
they are 0.13% of branches in real software and ignores them).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.isa.binary import BinaryImage
from repro.isa.instructions import Instruction, Opcode

#: Default post-call instruction budget (the paper's empirical value).
DEFAULT_CFG_BUDGET = 100


@dataclass
class BasicBlock:
    """A straight-line run of instructions ending at a control transfer."""

    start: int
    instructions: List[Tuple[int, Instruction]] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)

    @property
    def end(self) -> int:
        """Address one past the last instruction."""
        return self.instructions[-1][0] + 1 if self.instructions else self.start

    @property
    def terminator(self) -> Optional[Instruction]:
        return self.instructions[-1][1] if self.instructions else None

    def addresses(self) -> List[int]:
        return [address for address, _ in self.instructions]


@dataclass
class PartialCFG:
    """A partial CFG rooted at the instruction following a call site."""

    entry: int
    blocks: Dict[int, BasicBlock] = field(default_factory=dict)
    instruction_count: int = 0
    truncated: bool = False

    def block_at(self, start: int) -> Optional[BasicBlock]:
        return self.blocks.get(start)

    def successors(self, start: int) -> List[BasicBlock]:
        block = self.blocks.get(start)
        if block is None:
            return []
        return [self.blocks[s] for s in block.successors if s in self.blocks]

    def predecessors(self, start: int) -> List[BasicBlock]:
        return [
            block
            for block in self.blocks.values()
            if start in block.successors
        ]

    def reachable_addresses(self) -> Set[int]:
        addresses: Set[int] = set()
        for block in self.blocks.values():
            addresses.update(block.addresses())
        return addresses

    def __len__(self) -> int:
        return len(self.blocks)


def _explore_addresses(
    binary: BinaryImage, start: int, budget: int
) -> Tuple[Set[int], Set[int], bool]:
    """BFS from *start*; returns (visited addresses, jump-target leaders, truncated)."""
    visited: Set[int] = set()
    leaders: Set[int] = {start}
    queue = deque([start])
    truncated = False
    while queue:
        address = queue.popleft()
        if address in visited or not binary.has_address(address):
            continue
        if len(visited) >= budget:
            truncated = True
            break
        visited.add(address)
        instruction = binary.instructions[address]
        opcode = instruction.opcode

        if opcode in (Opcode.RET, Opcode.HALT):
            continue
        if opcode is Opcode.JMP:
            target = instruction.jump_target()
            if target is not None and target.address is not None:
                leaders.add(target.address)
                queue.append(target.address)
            continue
        if opcode.is_conditional_jump:
            target = instruction.jump_target()
            if target is not None and target.address is not None:
                leaders.add(target.address)
                queue.append(target.address)
            leaders.add(address + 1)
            queue.append(address + 1)
            continue
        queue.append(address + 1)
    return visited, leaders, truncated


def build_partial_cfg(
    binary: BinaryImage, start_address: int, max_instructions: int = DEFAULT_CFG_BUDGET
) -> PartialCFG:
    """Build the partial CFG starting at *start_address* (typically call+1)."""
    visited, leaders, truncated = _explore_addresses(binary, start_address, max_instructions)
    cfg = PartialCFG(entry=start_address, truncated=truncated)
    if not visited:
        return cfg

    ordered = sorted(visited)
    leaders = {address for address in leaders if address in visited}
    # Every instruction after a terminator also starts a block.
    for address in ordered:
        instruction = binary.instructions[address]
        if instruction.opcode.terminates_block and (address + 1) in visited:
            leaders.add(address + 1)

    current: Optional[BasicBlock] = None
    previous_address: Optional[int] = None
    for address in ordered:
        starts_new_block = (
            current is None
            or address in leaders
            or (previous_address is not None and address != previous_address + 1)
        )
        if starts_new_block:
            current = BasicBlock(start=address)
            cfg.blocks[address] = current
        assert current is not None
        current.instructions.append((address, binary.instructions[address]))
        previous_address = address

    # Wire successors.
    for block in cfg.blocks.values():
        terminator = block.terminator
        if terminator is None:
            continue
        opcode = terminator.opcode
        last_address = block.instructions[-1][0]
        if opcode in (Opcode.RET, Opcode.HALT):
            continue
        if opcode is Opcode.JMP:
            target = terminator.jump_target()
            if target is not None and target.address in cfg.blocks:
                block.successors.append(target.address)
            continue
        if opcode.is_conditional_jump:
            target = terminator.jump_target()
            if target is not None and target.address in cfg.blocks:
                block.successors.append(target.address)
            if last_address + 1 in cfg.blocks:
                block.successors.append(last_address + 1)
            continue
        if last_address + 1 in cfg.blocks:
            block.successors.append(last_address + 1)

    cfg.instruction_count = len(visited)
    return cfg


__all__ = ["BasicBlock", "DEFAULT_CFG_BUDGET", "PartialCFG", "build_partial_cfg"]
