"""Side-effect (errno) check analysis.

The paper's §5 notes that, besides return values, LFI verifies whether the
``errno`` side effects listed in the fault profile are checked — failing to
check particular values (the classic example being ``EINTR``, i.e. not
restarting an interrupted system call) compromises robustness.  The analysis
is "virtually identical to the one used for return values": after the call,
loads of the well-known ``errno`` location create copies, and comparisons of
those copies against literals record which errno values the program
distinguishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.analysis.cfg import DEFAULT_CFG_BUDGET, PartialCFG, build_partial_cfg
from repro.isa import layout
from repro.isa.binary import BinaryImage, CallSite
from repro.isa.instructions import Imm, Mem, Opcode, Reg
from repro.oslib.errno_codes import errno_name, errno_value


@dataclass
class ErrnoCheckResult:
    """Which errno values a call site distinguishes after the call."""

    checked_values: Set[int] = field(default_factory=set)
    reads_errno: bool = False

    @property
    def checked_names(self) -> Tuple[str, ...]:
        return tuple(errno_name(value) for value in sorted(self.checked_values))


def analyze_errno_checks(
    binary: BinaryImage,
    call_address: int,
    cfg: Optional[PartialCFG] = None,
    max_instructions: int = DEFAULT_CFG_BUDGET,
) -> ErrnoCheckResult:
    """Find errno comparisons in the code following *call_address*."""
    if cfg is None:
        cfg = build_partial_cfg(binary, call_address + 1, max_instructions=max_instructions)
    result = ErrnoCheckResult()

    for block in cfg.blocks.values():
        errno_registers: Set[str] = set()
        pending_literal: Optional[int] = None
        for _address, instruction in block.instructions:
            opcode = instruction.opcode
            operands = instruction.operands
            if opcode is Opcode.MOV and len(operands) == 2:
                destination, source = operands
                reads = (
                    isinstance(source, Mem)
                    and source.base is None
                    and source.offset == layout.ERRNO_ADDRESS
                )
                if reads and isinstance(destination, Reg):
                    errno_registers.add(destination.name)
                    result.reads_errno = True
                elif isinstance(destination, Reg):
                    errno_registers.discard(destination.name)
                continue
            if opcode is Opcode.CMP and len(operands) == 2:
                left, right = operands
                pending_literal = None
                if (
                    isinstance(left, Reg)
                    and left.name in errno_registers
                    and isinstance(right, Imm)
                ):
                    pending_literal = right.value
                elif (
                    isinstance(left, Mem)
                    and left.base is None
                    and left.offset == layout.ERRNO_ADDRESS
                    and isinstance(right, Imm)
                ):
                    result.reads_errno = True
                    pending_literal = right.value
                continue
            if opcode.is_conditional_jump and pending_literal is not None:
                result.checked_values.add(pending_literal)
                continue
            if opcode is Opcode.CALL:
                errno_registers.clear()
                pending_literal = None
    return result


@dataclass
class ErrnoSiteReport:
    """Errno-handling verdict for one call site against a fault profile."""

    site: CallSite
    expected: Tuple[str, ...]
    checked: Tuple[str, ...]
    missing: Tuple[str, ...]

    @property
    def complete(self) -> bool:
        return not self.missing


def classify_errno_handling(
    binary: BinaryImage,
    function: str,
    expected_errnos: Iterable[str],
    sites: Optional[Sequence[CallSite]] = None,
    max_instructions: int = DEFAULT_CFG_BUDGET,
) -> List[ErrnoSiteReport]:
    """Report, per call site, which profile errnos the code distinguishes."""
    expected = tuple(expected_errnos)
    expected_values = {errno_value(name) for name in expected}
    reports: List[ErrnoSiteReport] = []
    call_sites = list(sites) if sites is not None else binary.call_sites(function)
    for site in call_sites:
        checks = analyze_errno_checks(binary, site.address, max_instructions=max_instructions)
        checked_expected = {value for value in checks.checked_values if value in expected_values}
        missing = tuple(
            errno_name(value) for value in sorted(expected_values - checked_expected)
        )
        reports.append(
            ErrnoSiteReport(
                site=site,
                expected=expected,
                checked=tuple(errno_name(value) for value in sorted(checked_expected)),
                missing=missing,
            )
        )
    return reports


__all__ = [
    "ErrnoCheckResult",
    "ErrnoSiteReport",
    "analyze_errno_checks",
    "classify_errno_handling",
]
