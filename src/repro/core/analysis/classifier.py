"""Algorithm 1: classify call sites by how their error returns are checked.

Given a target executable, a library function *F* and the set *E* of error
return codes from *F*'s fault profile, each call site of *F* lands in one of
three sets:

* **C_yes** — every error code in *E* is checked by equality, or the return
  value is checked with an inequality (which is assumed to cover the whole
  error range);
* **C_part** — some but not all error codes in *E* are checked by equality;
* **C_not** — none of the error codes in *E* is checked (even if values
  outside *E* are).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set

from repro.core.analysis.cfg import DEFAULT_CFG_BUDGET, build_partial_cfg
from repro.core.analysis.dataflow import CheckResult, analyze_return_value_checks
from repro.isa.binary import BinaryImage, CallSite


@dataclass
class ClassifiedSite:
    """One call site with its dataflow result and Algorithm 1 category."""

    site: CallSite
    checks: CheckResult
    category: str  # "checked" | "partial" | "unchecked"

    @property
    def address(self) -> int:
        return self.site.address

    def describe(self) -> str:
        checked = ""
        if self.checks.chk_eq:
            checked += f" eq={sorted(self.checks.chk_eq)}"
        if self.checks.chk_ineq:
            checked += f" ineq={sorted(self.checks.chk_ineq)}"
        return f"{self.site} -> {self.category}{checked}"


@dataclass
class SiteClassification:
    """Classification of every call site of one function in one binary."""

    binary: str
    function: str
    error_codes: Set[int] = field(default_factory=set)
    fully_checked: List[ClassifiedSite] = field(default_factory=list)
    partially_checked: List[ClassifiedSite] = field(default_factory=list)
    unchecked: List[ClassifiedSite] = field(default_factory=list)

    @property
    def c_yes(self) -> List[ClassifiedSite]:
        return self.fully_checked

    @property
    def c_part(self) -> List[ClassifiedSite]:
        return self.partially_checked

    @property
    def c_not(self) -> List[ClassifiedSite]:
        return self.unchecked

    def all_sites(self) -> List[ClassifiedSite]:
        return self.fully_checked + self.partially_checked + self.unchecked

    def site_count(self) -> int:
        return len(self.fully_checked) + len(self.partially_checked) + len(self.unchecked)

    def summary(self) -> str:
        return (
            f"{self.binary}:{self.function}: {self.site_count()} sites — "
            f"{len(self.fully_checked)} checked, {len(self.partially_checked)} partial, "
            f"{len(self.unchecked)} unchecked"
        )


def classify_check_result(checks: CheckResult, error_codes: Iterable[int]) -> str:
    """Apply lines 6-11 of Algorithm 1 to one dataflow result."""
    error_set = set(error_codes)
    checked_errors = checks.chk_eq & error_set
    if checked_errors >= error_set and error_set:
        return "checked"
    if checks.chk_ineq:
        return "checked"
    if checked_errors:
        return "partial"
    return "unchecked"


def classify_call_sites(
    binary: BinaryImage,
    function: str,
    error_codes: Sequence[int],
    max_instructions: int = DEFAULT_CFG_BUDGET,
    sites: Optional[Sequence[CallSite]] = None,
) -> SiteClassification:
    """Classify every call site of *function* in *binary*."""
    classification = SiteClassification(
        binary=binary.name, function=function, error_codes=set(error_codes)
    )
    call_sites = list(sites) if sites is not None else binary.call_sites(function)
    for site in call_sites:
        cfg = build_partial_cfg(binary, site.address + 1, max_instructions=max_instructions)
        checks = analyze_return_value_checks(binary, site.address, cfg=cfg)
        category = classify_check_result(checks, error_codes)
        classified = ClassifiedSite(site=site, checks=checks, category=category)
        if category == "checked":
            classification.fully_checked.append(classified)
        elif category == "partial":
            classification.partially_checked.append(classified)
        else:
            classification.unchecked.append(classified)
    return classification


__all__ = ["ClassifiedSite", "SiteClassification", "classify_call_sites", "classify_check_result"]
