"""Call-site analysis (§5).

Finds "interesting" places to inject faults: call sites of library functions
where the program does not check all the error return values the library can
produce.  The analysis is purely static, runs on the binary (no source code),
and follows Algorithm 1 of the paper:

1. find all call sites of the target function,
2. build a partial CFG of (up to) 100 post-call instructions,
3. run a dataflow analysis tracking copies of the return value and the
   literals they are compared against,
4. classify the site as fully checked (C_yes), partially checked (C_part),
   or completely unchecked (C_not), and
5. generate fault-injection scenarios (call-stack triggers keyed on the call
   site) for the unchecked and partially checked sites.
"""

from repro.core.analysis.analyzer import AnalysisReport, CallSiteAnalyzer
from repro.core.analysis.cfg import BasicBlock, PartialCFG, build_partial_cfg
from repro.core.analysis.classifier import ClassifiedSite, SiteClassification, classify_call_sites
from repro.core.analysis.dataflow import CheckResult, analyze_return_value_checks
from repro.core.analysis.errno_analysis import ErrnoCheckResult, analyze_errno_checks
from repro.core.analysis.scenario_gen import generate_injection_scenarios

__all__ = [
    "AnalysisReport",
    "BasicBlock",
    "CallSiteAnalyzer",
    "CheckResult",
    "ClassifiedSite",
    "ErrnoCheckResult",
    "PartialCFG",
    "SiteClassification",
    "analyze_errno_checks",
    "analyze_return_value_checks",
    "build_partial_cfg",
    "classify_call_sites",
    "generate_injection_scenarios",
]
