"""Turn analyzer findings into fault-injection scenarios (§5).

For every unchecked (and optionally partially checked) call site, the
analyzer emits a scenario that uses the generic call-stack trigger to pin
the injection to that exact site (module + offset, plus file/line when debug
information is available) and injects the error return / errno pair from
the library's fault profile.  A singleton trigger is composed at the end so
each test run injects the fault once, mirroring the scenarios shown in §7.1.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.analysis.classifier import ClassifiedSite, SiteClassification
from repro.core.profiler.fault_profile import FaultProfile, FunctionProfile
from repro.core.scenario.builder import ScenarioBuilder
from repro.core.scenario.model import Scenario
from repro.oslib.errno_codes import errno_value


def fault_candidates(profile: FunctionProfile) -> List[Dict[str, Optional[int]]]:
    """All (return value, errno) pairs worth injecting for a function."""
    candidates: List[Dict[str, Optional[int]]] = []
    for specification in profile.error_returns:
        if specification.errnos:
            for name in specification.errnos:
                candidates.append(
                    {"return_value": specification.return_value, "errno": errno_value(name)}
                )
        else:
            candidates.append({"return_value": specification.return_value, "errno": None})
    return candidates


def scenario_for_fault(
    binary_name: str,
    classified: ClassifiedSite,
    function: str,
    return_value: int,
    errno: Optional[int],
    name: Optional[str] = None,
    once: bool = True,
) -> Scenario:
    """Build the scenario injecting one specific fault at one call site."""
    site = classified.site
    builder = ScenarioBuilder(name or f"{binary_name}-{function}-{site.address:#x}")
    trigger_id = f"site_{site.address:x}"
    frame: Dict[str, object] = {"module": binary_name, "offset": site.address}
    if site.source is not None:
        frame["file"] = site.source.file
        frame["line"] = site.source.line
    builder.trigger_with_params(trigger_id, "CallStackTrigger", {"frame": frame})
    trigger_ids = [trigger_id]
    if once:
        builder.trigger(f"{trigger_id}_once", "SingletonTrigger")
        trigger_ids.append(f"{trigger_id}_once")
    builder.inject(function, trigger_ids, return_value=int(return_value), errno=errno)
    builder.metadata(
        target_binary=binary_name,
        target_function=function,
        call_site=site.address,
        caller=site.caller,
        category=classified.category,
        source=str(site.source) if site.source else "",
    )
    return builder.build()


def scenario_for_site(
    binary_name: str,
    classified: ClassifiedSite,
    profile: FunctionProfile,
    every_errno: bool = False,
    once: bool = True,
) -> List[Scenario]:
    """Build injection scenario(s) targeting one classified call site."""
    faults = fault_candidates(profile)
    if not faults:
        return []
    if not every_errno:
        faults = faults[:1]

    scenarios: List[Scenario] = []
    site = classified.site
    for index, fault in enumerate(faults):
        suffix = f"-{index}" if len(faults) > 1 else ""
        scenarios.append(
            scenario_for_fault(
                binary_name,
                classified,
                profile.name,
                return_value=int(fault["return_value"]),
                errno=fault["errno"],
                name=f"{binary_name}-{profile.name}-{site.address:#x}{suffix}",
                once=once,
            )
        )
    return scenarios


def generate_injection_scenarios(
    classifications: Iterable[SiteClassification],
    profile: FaultProfile,
    include_partial: bool = True,
    include_checked: bool = False,
    every_errno: bool = False,
    once: bool = True,
) -> List[Scenario]:
    """Generate scenarios for the vulnerable sites of several classifications.

    Scenarios for completely unchecked sites come first (the paper notes
    testers are most interested in C_not, then C_part).
    """
    classifications = list(classifications)
    ordered: List[tuple] = []
    for classification in classifications:
        ordered.extend((classification, site) for site in classification.unchecked)
    if include_partial:
        for classification in classifications:
            ordered.extend((classification, site) for site in classification.partially_checked)
    if include_checked:
        for classification in classifications:
            ordered.extend((classification, site) for site in classification.fully_checked)

    scenarios: List[Scenario] = []
    for classification, classified in ordered:
        function_profile = profile.function(classified.site.callee)
        if function_profile is None:
            continue
        scenarios.extend(
            scenario_for_site(
                classification.binary,
                classified,
                function_profile,
                every_errno=every_errno,
                once=once,
            )
        )
    return scenarios


__all__ = [
    "fault_candidates",
    "generate_injection_scenarios",
    "scenario_for_fault",
    "scenario_for_site",
]
