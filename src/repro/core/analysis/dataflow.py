"""Dataflow analysis of return-value copies (§5, Algorithm 1 line 5).

Starting from a call site, the analysis follows the propagation of the
function's return value (initially in ``r0``): every ``mov`` of a copy into
a register, a stack slot or a global creates a new copy; redefinitions kill
copies.  Whenever a copy is compared against a literal, the literal is
recorded as *checked*, split into:

* ``chk_eq`` — literals checked by equality (``je``/``jne`` after the
  ``cmp``), as in ``if (retval == -1)``;
* ``chk_ineq`` — literals checked by an ordering relation (``jl``/``jge``/
  ...), as in ``if (retval < 0)``.

Copy sets are propagated around loops until they stop growing, matching the
paper's "iterate through any loops as long as the set of copies increases".
The analysis is intra-procedural: a subsequent call kills the register
copies (the callee clobbers them) but not the stack/global copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.core.analysis.cfg import BasicBlock, PartialCFG, build_partial_cfg
from repro.isa.binary import BinaryImage
from repro.isa.instructions import GENERAL_REGISTERS, Imm, Instruction, Mem, Opcode, Reg

#: Abstract locations that can hold a copy of the return value.
#: ("reg", name) | ("frame", offset) | ("abs", address)
Location = Tuple[str, Union[str, int]]

_RETURN_LOCATION: Location = ("reg", "r0")


@dataclass(frozen=True)
class CheckSite:
    """One observed comparison of a return-value copy against a literal."""

    compare_address: int
    jump_address: int
    literal: int
    jump_opcode: Opcode


@dataclass
class CheckResult:
    """Literals against which (copies of) the return value are compared."""

    chk_eq: Set[int] = field(default_factory=set)
    chk_ineq: Set[int] = field(default_factory=set)
    #: Locations that held a copy at some point (diagnostics / tests).
    copies_seen: Set[Location] = field(default_factory=set)
    #: Where each check happens (cmp + conditional jump addresses).
    check_sites: List[CheckSite] = field(default_factory=list)
    #: Number of dataflow iterations until the fixpoint was reached.
    iterations: int = 0

    @property
    def checked(self) -> bool:
        return bool(self.chk_eq or self.chk_ineq)

    def add_check_site(self, check: CheckSite) -> None:
        if check not in self.check_sites:
            self.check_sites.append(check)


def _operand_location(operand) -> Optional[Location]:
    """Map an operand to an abstract location (None when untrackable)."""
    if isinstance(operand, Reg):
        return ("reg", operand.name)
    if isinstance(operand, Mem):
        if operand.base is None:
            return ("abs", operand.offset)
        if operand.base == "bp":
            return ("frame", operand.offset)
        # Dynamically addressed memory ([r1], [sp+2], ...) is not tracked.
        return None
    return None


def _transfer_instruction(
    address: int,
    instruction: Instruction,
    copies: Set[Location],
    result: CheckResult,
    pending_compare: List[Tuple[int, int]],
) -> None:
    """Apply one instruction to the copy set, recording checks.

    ``pending_compare`` holds (literal, compare_address) for the most recent
    flag-setting comparison involving a copy, so the conditional jumps that
    follow can classify it as an equality or inequality check.
    """
    opcode = instruction.opcode
    operands = instruction.operands

    if opcode is Opcode.MOV and len(operands) == 2:
        destination = _operand_location(operands[0])
        source = _operand_location(operands[1])
        if source is not None and source in copies:
            if destination is not None:
                copies.add(destination)
                result.copies_seen.add(destination)
        elif destination is not None:
            copies.discard(destination)
        return

    if opcode is Opcode.LEA and operands:
        destination = _operand_location(operands[0])
        if destination is not None:
            copies.discard(destination)
        return

    if opcode is Opcode.POP and operands:
        destination = _operand_location(operands[0])
        if destination is not None:
            copies.discard(destination)
        return

    if opcode in (
        Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.MOD,
        Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.NEG, Opcode.NOT,
    ) and operands:
        destination = _operand_location(operands[0])
        if destination is not None:
            copies.discard(destination)
        return

    if opcode is Opcode.CALL:
        # The callee clobbers the general registers; stack and global copies
        # survive (matching the cdecl-style convention the codegen uses).
        for register in GENERAL_REGISTERS:
            copies.discard(("reg", register))
        return

    if opcode is Opcode.CMP and len(operands) == 2:
        left, right = operands
        left_location = _operand_location(left)
        right_location = _operand_location(right)
        pending_compare.clear()
        if left_location in copies and isinstance(right, Imm):
            pending_compare.append((right.value, address))
        elif right_location in copies and isinstance(left, Imm):
            pending_compare.append((left.value, address))
        return

    if opcode is Opcode.TEST and len(operands) == 2:
        left_location = _operand_location(operands[0])
        right_location = _operand_location(operands[1])
        pending_compare.clear()
        if left_location in copies or right_location in copies:
            # test x, x is the idiomatic compare-against-zero.
            pending_compare.append((0, address))
        return

    if opcode.is_conditional_jump and pending_compare:
        literal, compare_address = pending_compare[0]
        if opcode.is_equality_jump:
            result.chk_eq.add(literal)
        else:
            result.chk_ineq.add(literal)
        result.add_check_site(
            CheckSite(
                compare_address=compare_address,
                jump_address=address,
                literal=literal,
                jump_opcode=opcode,
            )
        )
        return


def _transfer_block(
    block: BasicBlock, in_copies: FrozenSet[Location], result: CheckResult
) -> FrozenSet[Location]:
    copies = set(in_copies)
    pending_compare: List[Tuple[int, int]] = []
    for address, instruction in block.instructions:
        _transfer_instruction(address, instruction, copies, result, pending_compare)
    return frozenset(copies)


def analyze_return_value_checks(
    binary: BinaryImage,
    call_address: int,
    cfg: Optional[PartialCFG] = None,
    max_instructions: int = 100,
) -> CheckResult:
    """Run the dataflow analysis for the call site at *call_address*."""
    if cfg is None:
        cfg = build_partial_cfg(binary, call_address + 1, max_instructions=max_instructions)
    result = CheckResult()
    result.copies_seen.add(_RETURN_LOCATION)
    if not cfg.blocks:
        return result

    in_states: Dict[int, FrozenSet[Location]] = {start: frozenset() for start in cfg.blocks}
    in_states[cfg.entry] = frozenset({_RETURN_LOCATION})
    out_states: Dict[int, FrozenSet[Location]] = {}

    # Iterate to a fixpoint; copy sets only grow at merge points, so this
    # terminates quickly (the paper observes a few iterations in practice).
    changed = True
    while changed:
        changed = False
        result.iterations += 1
        for start in sorted(cfg.blocks):
            block = cfg.blocks[start]
            merged: Set[Location] = set(in_states[start])
            for predecessor in cfg.predecessors(start):
                merged.update(out_states.get(predecessor.start, frozenset()))
            if start == cfg.entry:
                merged.add(_RETURN_LOCATION)
            merged_frozen = frozenset(merged)
            if merged_frozen != in_states[start]:
                in_states[start] = merged_frozen
                changed = True
            new_out = _transfer_block(block, merged_frozen, result)
            if out_states.get(start) != new_out:
                out_states[start] = new_out
                changed = True
        if result.iterations > 50:  # safety net; never hit in practice
            break
    return result


__all__ = ["CheckResult", "CheckSite", "Location", "analyze_return_value_checks"]
