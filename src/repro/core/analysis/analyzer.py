"""High-level call-site analyzer facade.

Wraps the classification and scenario-generation steps behind the interface
the controller and the benchmarks use: "analyze this binary against this
fault profile, tell me which sites are suspicious, give me the scenarios to
test them, and tell me how long the analysis took" (the paper reports 1-10
seconds per target, §7.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.analysis.cfg import DEFAULT_CFG_BUDGET
from repro.core.analysis.classifier import SiteClassification, classify_call_sites
from repro.core.analysis.scenario_gen import generate_injection_scenarios
from repro.core.profiler.fault_profile import FaultProfile
from repro.core.profiler.spec_profiles import combined_reference_profile
from repro.core.scenario.model import Scenario
from repro.isa.binary import BinaryImage


@dataclass
class AnalysisReport:
    """Result of analysing one binary."""

    binary: str
    classifications: Dict[str, SiteClassification] = field(default_factory=dict)
    analysis_seconds: float = 0.0
    call_sites_analyzed: int = 0

    def classification(self, function: str) -> Optional[SiteClassification]:
        return self.classifications.get(function)

    def unchecked_sites(self) -> List:
        sites = []
        for classification in self.classifications.values():
            sites.extend(classification.unchecked)
        return sites

    def partially_checked_sites(self) -> List:
        sites = []
        for classification in self.classifications.values():
            sites.extend(classification.partially_checked)
        return sites

    def summary(self) -> str:
        lines = [
            f"call-site analysis of {self.binary}: {self.call_sites_analyzed} sites "
            f"in {self.analysis_seconds * 1000:.1f} ms"
        ]
        for classification in self.classifications.values():
            if classification.site_count():
                lines.append("  " + classification.summary())
        return "\n".join(lines)


class CallSiteAnalyzer:
    """Analyze a program binary against a fault profile."""

    def __init__(
        self,
        profile: Optional[FaultProfile] = None,
        max_instructions: int = DEFAULT_CFG_BUDGET,
    ) -> None:
        self.profile = profile if profile is not None else combined_reference_profile()
        self.max_instructions = max_instructions

    # ------------------------------------------------------------------
    def analyze(
        self, binary: BinaryImage, functions: Optional[Sequence[str]] = None
    ) -> AnalysisReport:
        """Classify every call site of the selected library functions."""
        start = time.perf_counter()
        report = AnalysisReport(binary=binary.name)
        targets = list(functions) if functions is not None else sorted(binary.called_imports())
        for function in targets:
            function_profile = self.profile.function(function)
            if function_profile is None or not function_profile.error_returns:
                continue
            error_codes = function_profile.error_values()
            classification = classify_call_sites(
                binary,
                function,
                error_codes,
                max_instructions=self.max_instructions,
            )
            if classification.site_count():
                report.classifications[function] = classification
                report.call_sites_analyzed += classification.site_count()
        report.analysis_seconds = time.perf_counter() - start
        return report

    def generate_scenarios(
        self,
        report: AnalysisReport,
        include_partial: bool = True,
        include_checked: bool = False,
        every_errno: bool = False,
        functions: Optional[Iterable[str]] = None,
    ) -> List[Scenario]:
        """Emit injection scenarios for the suspicious sites in *report*."""
        selected = report.classifications
        if functions is not None:
            wanted = set(functions)
            selected = {
                name: classification
                for name, classification in selected.items()
                if name in wanted
            }
        return generate_injection_scenarios(
            selected.values(),
            self.profile,
            include_partial=include_partial,
            include_checked=include_checked,
            every_errno=every_errno,
        )


__all__ = ["AnalysisReport", "CallSiteAnalyzer"]
