"""Fault profile model and XML serialization.

A fault profile describes, per exported library function, the error return
values and accompanying errno side effects a caller can observe — e.g.
"``read`` can return ``-1`` with errno ``EAGAIN``/``EBADF``/``EINTR``/...".
"""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple
from xml.dom import minidom

from repro.oslib.errno_codes import errno_name, errno_value


@dataclass(frozen=True)
class ErrorSpecification:
    """One externalized error: a return value plus possible errno names."""

    return_value: int
    errnos: Tuple[str, ...] = ()

    def describe(self) -> str:
        if not self.errnos:
            return f"return {self.return_value}"
        return f"return {self.return_value} with errno in {{{', '.join(self.errnos)}}}"


@dataclass
class FunctionProfile:
    """Fault profile of one library function."""

    name: str
    error_returns: List[ErrorSpecification] = field(default_factory=list)
    #: Human-readable description of the success return ("byte count", ...).
    success: str = "value"
    #: True when errors are reported through the return value itself
    #: (pthread/apr style) rather than through errno.
    errno_via_return: bool = False

    def error_values(self) -> Tuple[int, ...]:
        return tuple(spec.return_value for spec in self.error_returns)

    def all_errnos(self) -> Tuple[str, ...]:
        names: List[str] = []
        for spec in self.error_returns:
            for name in spec.errnos:
                if name not in names:
                    names.append(name)
        return tuple(names)

    def primary_fault(self) -> Optional[Tuple[int, Optional[int]]]:
        """The default (return value, errno) pair to inject for this function."""
        if not self.error_returns:
            return None
        spec = self.error_returns[0]
        errno = errno_value(spec.errnos[0]) if spec.errnos else None
        return spec.return_value, errno


@dataclass
class FaultProfile:
    """Fault profile of one shared library."""

    library: str
    functions: Dict[str, FunctionProfile] = field(default_factory=dict)

    def add(self, profile: FunctionProfile) -> None:
        self.functions[profile.name] = profile

    def function(self, name: str) -> Optional[FunctionProfile]:
        return self.functions.get(name)

    def error_values(self, function: str) -> Tuple[int, ...]:
        profile = self.functions.get(function)
        return profile.error_values() if profile else ()

    def merge(self, other: "FaultProfile") -> "FaultProfile":
        merged = FaultProfile(library=f"{self.library}+{other.library}")
        merged.functions.update(self.functions)
        merged.functions.update(other.functions)
        return merged

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def __len__(self) -> int:
        return len(self.functions)


def merge_profiles(profiles: Iterable[FaultProfile]) -> FaultProfile:
    """Merge several library profiles into one lookup table."""
    merged = FaultProfile(library="merged")
    for profile in profiles:
        merged.functions.update(profile.functions)
    return merged


# ----------------------------------------------------------------------
# XML serialization
# ----------------------------------------------------------------------
def profile_to_xml(profile: FaultProfile, pretty: bool = True) -> str:
    root = ElementTree.Element("faultprofile", {"library": profile.library})
    for function in sorted(profile.functions.values(), key=lambda item: item.name):
        function_element = ElementTree.SubElement(
            root,
            "function",
            {
                "name": function.name,
                "success": function.success,
                "errno_via_return": "true" if function.errno_via_return else "false",
            },
        )
        for specification in function.error_returns:
            error_element = ElementTree.SubElement(
                function_element, "error", {"return": str(specification.return_value)}
            )
            for name in specification.errnos:
                errno_element = ElementTree.SubElement(error_element, "errno")
                errno_element.text = name
    raw = ElementTree.tostring(root, encoding="unicode")
    if not pretty:
        return raw
    return minidom.parseString(raw).toprettyxml(indent="  ")


def parse_profile_xml(text: str) -> FaultProfile:
    root = ElementTree.fromstring(text)
    if root.tag != "faultprofile":
        raise ValueError(f"expected <faultprofile> root element, found <{root.tag}>")
    profile = FaultProfile(library=root.get("library", "unknown"))
    for function_element in root.findall("function"):
        name = function_element.get("name", "")
        error_returns: List[ErrorSpecification] = []
        for error_element in function_element.findall("error"):
            return_value = int(error_element.get("return", "0"), 0)
            errnos = tuple(
                (errno_element.text or "").strip()
                for errno_element in error_element.findall("errno")
                if (errno_element.text or "").strip()
            )
            # Normalize numeric errnos into names for consistency.
            errnos = tuple(errno_name(errno_value(item)) for item in errnos)
            error_returns.append(ErrorSpecification(return_value=return_value, errnos=errnos))
        profile.add(
            FunctionProfile(
                name=name,
                error_returns=error_returns,
                success=function_element.get("success", "value"),
                errno_via_return=function_element.get("errno_via_return", "false") == "true",
            )
        )
    return profile


__all__ = [
    "ErrorSpecification",
    "FaultProfile",
    "FunctionProfile",
    "merge_profiles",
    "parse_profile_xml",
    "profile_to_xml",
]
