"""Library profiler (§2).

The profiler answers "which errors can this library externalize?" without
source code or documentation: it statically analyses the library binary to
infer, for every exported function, (a) the error return values and (b) the
``errno`` side effects that can accompany them.  The result is a *fault
profile* (an XML document in LFI), which both the injector and the call-site
analyzer consume.
"""

from repro.core.profiler.cache import (
    artifact_cache_stats,
    cached_all_library_binaries,
    cached_library_binary,
    cached_library_profile,
    cached_merged_profile,
    clear_artifact_cache,
)
from repro.core.profiler.fault_profile import (
    ErrorSpecification,
    FaultProfile,
    FunctionProfile,
    parse_profile_xml,
    profile_to_xml,
)
from repro.core.profiler.spec_profiles import reference_profile, reference_profiles
from repro.core.profiler.static_profiler import LibraryProfiler, profile_library

__all__ = [
    "ErrorSpecification",
    "FaultProfile",
    "FunctionProfile",
    "LibraryProfiler",
    "artifact_cache_stats",
    "cached_all_library_binaries",
    "cached_library_binary",
    "cached_library_profile",
    "cached_merged_profile",
    "clear_artifact_cache",
    "parse_profile_xml",
    "profile_library",
    "profile_to_xml",
    "reference_profile",
    "reference_profiles",
]
