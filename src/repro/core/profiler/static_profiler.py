"""Static library profiler: infer fault profiles from machine code (§2).

The profiler analyses each exported function of a library binary and infers:

* the **constant return values** the function can produce (paths that end in
  ``mov r0, <imm>; ret``) versus **computed** returns (paths whose final
  definition of ``r0`` is not a constant), and
* the **errno side effects**: constants stored to the well-known ``errno``
  address on the same path as a constant return.

Heuristics for deciding which constants are *error* returns (the real LFI
profiler faces the same ambiguity on x86 libc):

1. a constant returned on a path that also stores to ``errno`` is an error
   return, tagged with those errno values;
2. a negative constant is an error return;
3. constant ``0`` is an error return when some other path returns a
   computed value (the NULL convention of pointer-returning functions);
4. if the function has no errno stores and no computed returns, non-zero
   constants are error returns and ``0`` is the success status
   (pthread/apr status-code convention).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.profiler.fault_profile import (
    ErrorSpecification,
    FaultProfile,
    FunctionProfile,
)
from repro.isa import layout
from repro.isa.binary import BinaryImage
from repro.isa.instructions import Imm, Instruction, Mem, Opcode, Reg
from repro.oslib.errno_codes import errno_name

#: Marker used internally for non-constant return values.
_COMPUTED = "computed"


@dataclass
class _ReturnPath:
    """One ``ret`` reached with either a constant or a computed value."""

    constant: Optional[int]  # None means computed
    errnos: Tuple[int, ...] = ()


@dataclass
class ProfiledFunction:
    """Raw analysis result for one function (before heuristics)."""

    name: str
    return_paths: List[_ReturnPath] = field(default_factory=list)
    errno_stores: Set[int] = field(default_factory=set)

    @property
    def has_computed_return(self) -> bool:
        return any(path.constant is None for path in self.return_paths)


class LibraryProfiler:
    """Profile every exported function of a library binary."""

    def __init__(self, binary: BinaryImage) -> None:
        self.binary = binary

    # ------------------------------------------------------------------
    def profile(self, functions: Optional[Sequence[str]] = None) -> FaultProfile:
        profile = FaultProfile(library=self.binary.name)
        names = list(functions) if functions is not None else sorted(self.binary.functions)
        for name in names:
            raw = self.analyze_function(name)
            profile.add(self._apply_heuristics(raw))
        return profile

    # ------------------------------------------------------------------
    # raw per-function analysis
    # ------------------------------------------------------------------
    def analyze_function(self, name: str) -> ProfiledFunction:
        instructions = list(self.binary.iter_function_instructions(name))
        result = ProfiledFunction(name=name)
        blocks = self._split_blocks(instructions)
        for block in blocks:
            errnos = self._errno_stores_in_block(block)
            result.errno_stores.update(errnos)
            last = block[-1][1]
            if last.opcode is not Opcode.RET:
                continue
            constant = self._return_constant(block)
            result.return_paths.append(_ReturnPath(constant=constant, errnos=tuple(sorted(errnos))))
        return result

    @staticmethod
    def _split_blocks(
        instructions: List[Tuple[int, Instruction]]
    ) -> List[List[Tuple[int, Instruction]]]:
        """Split a function body into basic blocks (linear, label-free split)."""
        # Leaders: first instruction, every jump target, every instruction
        # following a block terminator.
        leaders = set()
        addresses = [address for address, _ in instructions]
        if not addresses:
            return []
        leaders.add(addresses[0])
        address_set = set(addresses)
        for address, instruction in instructions:
            target = instruction.jump_target()
            if target is not None and target.address in address_set:
                leaders.add(target.address)
            if instruction.opcode.terminates_block:
                following = address + 1
                if following in address_set:
                    leaders.add(following)
        blocks: List[List[Tuple[int, Instruction]]] = []
        current: List[Tuple[int, Instruction]] = []
        for address, instruction in instructions:
            if address in leaders and current:
                blocks.append(current)
                current = []
            current.append((address, instruction))
        if current:
            blocks.append(current)
        return blocks

    @staticmethod
    def _errno_stores_in_block(block: List[Tuple[int, Instruction]]) -> Set[int]:
        stores: Set[int] = set()
        for _address, instruction in block:
            if instruction.opcode is not Opcode.MOV or len(instruction.operands) != 2:
                continue
            destination, source = instruction.operands
            if (
                isinstance(destination, Mem)
                and destination.base is None
                and destination.offset == layout.ERRNO_ADDRESS
                and isinstance(source, Imm)
            ):
                stores.add(source.value)
        return stores

    @staticmethod
    def _return_constant(block: List[Tuple[int, Instruction]]) -> Optional[int]:
        """Find the last definition of r0 before the block's ``ret``."""
        for _address, instruction in reversed(block[:-1]):
            if instruction.opcode in (Opcode.MOV, Opcode.LEA) and instruction.operands:
                destination = instruction.operands[0]
                if isinstance(destination, Reg) and destination.name == "r0":
                    source = instruction.operands[1]
                    if isinstance(source, Imm):
                        return source.value
                    return None
            if instruction.opcode in (
                Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.MOD,
                Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.NEG, Opcode.NOT,
                Opcode.POP, Opcode.CALL,
            ) and instruction.operands:
                destination = instruction.operands[0]
                if isinstance(destination, Reg) and destination.name == "r0":
                    return None
                if instruction.opcode is Opcode.CALL:
                    return None
        return None

    # ------------------------------------------------------------------
    # heuristics
    # ------------------------------------------------------------------
    def _apply_heuristics(self, raw: ProfiledFunction) -> FunctionProfile:
        constant_paths = [path for path in raw.return_paths if path.constant is not None]
        has_computed = raw.has_computed_return
        any_errno_store = bool(raw.errno_stores)

        errors: Dict[int, Set[str]] = {}
        success_constants: List[int] = []

        for path in constant_paths:
            value = path.constant
            assert value is not None
            if path.errnos:
                errors.setdefault(value, set()).update(errno_name(code) for code in path.errnos)
            elif value < 0:
                errors.setdefault(value, set())
            elif value == 0 and has_computed:
                errors.setdefault(value, set())
            elif not any_errno_store and not has_computed and value != 0:
                errors.setdefault(value, set())
            else:
                success_constants.append(value)

        error_returns = [
            ErrorSpecification(return_value=value, errnos=tuple(sorted(names)))
            for value, names in sorted(errors.items())
        ]
        errno_via_return = bool(error_returns) and not any_errno_store and not has_computed
        if has_computed:
            success = "value"
        elif success_constants:
            success = f"constant {sorted(set(success_constants))[0]}"
        else:
            success = "void"
        return FunctionProfile(
            name=raw.name,
            error_returns=error_returns,
            success=success,
            errno_via_return=errno_via_return,
        )


def profile_library(binary: BinaryImage, functions: Optional[Sequence[str]] = None) -> FaultProfile:
    """Convenience wrapper: profile *binary* and return its fault profile."""
    return LibraryProfiler(binary).profile(functions)


__all__ = ["LibraryProfiler", "ProfiledFunction", "profile_library"]
