"""Process-wide memoized cache for profiling artifacts.

Assembling the synthetic shared libraries and statically profiling them is
pure work: the output depends only on the library specifications in
:data:`repro.oslib.libc.LIBC_FUNCTIONS`.  Yet every :class:`LFIController`
instance — and therefore every experiment harness and benchmark — used to
re-run the assemble → disassemble → CFG pipeline from scratch.

This module computes each artifact **once per process** and shares it:

* :func:`cached_library_binary` / :func:`cached_all_library_binaries` —
  the synthetic ``.so`` images from
  :func:`repro.oslib.libc_binary.build_library_binary`;
* :func:`cached_library_profile` — the static fault profile inferred from a
  library binary;
* :func:`cached_merged_profile` — all per-library profiles merged, the
  shape :meth:`LFIController.profile_libraries` needs;
* :func:`cached_boot_template` — the forkserver-style boot snapshots of
  :mod:`repro.vm.snapshot`: one resident machine + boot-state snapshot per
  (target instance, workload, engine, libc-spec fingerprint), so a campaign
  restores boot state in O(dirty words) instead of rebuilding the OS
  fixture and machine per request.  Templates are keyed by target
  *instance* (weakly, so they die with the target) because two instances of
  one target class may carry different fixture configurations.

Entries are keyed by ``(library name, spec fingerprint)`` where the
fingerprint hashes the library's error-return specification, so a mutated
spec (tests do this) transparently misses the cache instead of returning a
stale artifact.  Cached objects are **shared** — treat them as immutable.

Sharing compounds with the VM's predecoded execution engine: the
closure-threaded program that :mod:`repro.vm.dispatch` compiles for a
:class:`BinaryImage` is cached *on the image*, so every campaign run that
receives a cached image also inherits its compiled program — the
assemble → disassemble → CFG pipeline **and** instruction predecoding are
both once-per-process costs.

Thread-safe: a single lock guards the maps, so campaigns running under
:class:`~repro.core.controller.executor.ThreadPoolBackend` profile at most
once.  Process-pool workers forked after the first build inherit the warm
cache for free.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.profiler.fault_profile import FaultProfile, merge_profiles
from repro.core.profiler.static_profiler import profile_library
from repro.isa.binary import BinaryImage
from repro.oslib.libc import LIBC_FUNCTIONS
from repro.oslib.libc_binary import build_library_binary, library_soname


@dataclass
class CacheStats:
    """Hit/miss counters for the artifact cache (observability + tests)."""

    binary_hits: int = 0
    binary_misses: int = 0
    profile_hits: int = 0
    profile_misses: int = 0
    merged_hits: int = 0
    merged_misses: int = 0
    boot_hits: int = 0
    boot_misses: int = 0
    #: Boot hits served to a *context* (workload) that did not build the
    #: template — the cross-workload fixture-sharing wins, a subset of
    #: ``boot_hits`` (so not added into the totals below).
    boot_shared_hits: int = 0

    @property
    def hits(self) -> int:
        return self.binary_hits + self.profile_hits + self.merged_hits + self.boot_hits

    @property
    def misses(self) -> int:
        return (
            self.binary_misses + self.profile_misses + self.merged_misses
            + self.boot_misses
        )


_LOCK = threading.RLock()
_BINARIES: Dict[Tuple[str, str], BinaryImage] = {}
_PROFILES: Dict[Tuple[str, str], FaultProfile] = {}
_MERGED: Dict[Tuple[Tuple[str, str], ...], FaultProfile] = {}
#: Boot templates per target instance (weak: templates die with the target).
_BOOT_TEMPLATES: "weakref.WeakKeyDictionary[Any, Dict[Tuple, Any]]" = (
    weakref.WeakKeyDictionary()
)
#: Distinct contexts (workloads) each boot template has served, per owner —
#: the observability behind ``CacheStats.boot_shared_hits``.
_BOOT_CONTEXTS: "weakref.WeakKeyDictionary[Any, Dict[Tuple, set]]" = (
    weakref.WeakKeyDictionary()
)
_STATS = CacheStats()


def known_libraries() -> List[str]:
    """Names of every simulated library declared in the libc spec."""
    return sorted({spec.library for spec in LIBC_FUNCTIONS.values()})


def library_spec_fingerprint(library: str) -> str:
    """Stable digest of one library's error-behaviour specification."""
    entries = []
    for spec in sorted(LIBC_FUNCTIONS.values(), key=lambda item: item.name):
        if spec.library != library:
            continue
        entries.append(
            (
                spec.name,
                spec.success,
                spec.errno_via_return,
                tuple(
                    (error.value, tuple(error.errnos)) for error in spec.error_returns
                ),
            )
        )
    return hashlib.sha256(repr(entries).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# cached artifacts
# ----------------------------------------------------------------------
def cached_library_binary(library: str = "libc") -> BinaryImage:
    """The synthetic shared object for *library*, built at most once."""
    key = (library, library_spec_fingerprint(library))
    with _LOCK:
        binary = _BINARIES.get(key)
        if binary is not None:
            _STATS.binary_hits += 1
            return binary
        _STATS.binary_misses += 1
        binary = build_library_binary(library)
        _BINARIES[key] = binary
        return binary


def cached_all_library_binaries() -> Dict[str, BinaryImage]:
    """Every simulated shared library, keyed by soname (images are shared)."""
    return {
        library_soname(library): cached_library_binary(library)
        for library in known_libraries()
    }


def cached_library_profile(library: str = "libc") -> FaultProfile:
    """The static fault profile of *library*, inferred at most once."""
    key = (library, library_spec_fingerprint(library))
    with _LOCK:
        profile = _PROFILES.get(key)
        if profile is not None:
            _STATS.profile_hits += 1
            return profile
        _STATS.profile_misses += 1
        profile = profile_library(cached_library_binary(library))
        _PROFILES[key] = profile
        return profile


def cached_merged_profile(libraries: Optional[Sequence[str]] = None) -> FaultProfile:
    """Merged static profile of *libraries* (default: all known)."""
    names = list(libraries) if libraries is not None else known_libraries()
    key = tuple((name, library_spec_fingerprint(name)) for name in names)
    with _LOCK:
        merged = _MERGED.get(key)
        if merged is not None:
            _STATS.merged_hits += 1
            return merged
        _STATS.merged_misses += 1
        merged = merge_profiles([cached_library_profile(name) for name in names])
        _MERGED[key] = merged
        return merged


#: Memo for :func:`libc_spec_fingerprint`, keyed by the identity of every
#: spec object: specs are frozen dataclasses, so any mutation of the table
#: replaces entries and changes the key — recomputing the digest then, and
#: only then, keeps the boot-template key honest at dict-scan cost.
_LIBC_FINGERPRINT: Tuple[Optional[tuple], str] = (None, "")


def libc_spec_fingerprint() -> str:
    """Combined digest of every known library's error-behaviour spec.

    Part of the boot-template key: a libc spec mutated by a test must miss
    the boot cache (the template's predecoded program and call semantics
    were built against the old spec) rather than serve stale boot state.
    This sits on the per-run session-open path, so the digest is memoized
    behind an identity key over the spec table.
    """
    global _LIBC_FINGERPRINT
    # Insertion-order identity, no sort: replacing a spec changes its id,
    # and adding/removing/renaming entries changes the name tuple.  Two
    # orderings of the same table would merely recompute the same
    # content-based digest — a spurious miss, never a stale hit.
    identity = (tuple(LIBC_FUNCTIONS), tuple(map(id, LIBC_FUNCTIONS.values())))
    cached_identity, cached_digest = _LIBC_FINGERPRINT
    if identity == cached_identity:
        return cached_digest
    combined = hashlib.sha256()
    for library in known_libraries():
        combined.update(library.encode("utf-8"))
        combined.update(library_spec_fingerprint(library).encode("utf-8"))
    digest = combined.hexdigest()
    _LIBC_FINGERPRINT = (identity, digest)
    return digest


def _record_boot_context(owner: Any, key: Tuple, context: Any, fresh: bool) -> None:
    """Track which contexts (workloads) a template serves (under the lock).

    A hit whose context never touched this key before is a *shared* hit:
    the template was built for one workload and is now serving another —
    the cross-workload fixture-prefix reuse the boot-scope keying buys.
    """
    if context is None:
        return
    per_owner = _BOOT_CONTEXTS.get(owner)
    if per_owner is None:
        per_owner = {}
        _BOOT_CONTEXTS[owner] = per_owner
    contexts = per_owner.setdefault(key, set())
    if not fresh and context not in contexts:
        _STATS.boot_shared_hits += 1
    contexts.add(context)


def cached_boot_template(
    owner: Any, key: Tuple, builder: Callable[[], Any], context: Any = None
) -> Any:
    """The boot template for (*owner*, *key*), built at most once.

    *owner* is the target instance (held weakly); *key* is the
    (boot scope, engine, spec-fingerprint) tuple computed by the target —
    the boot scope rather than the workload name, so workloads sharing a
    fixture prefix share one template.  *context* (the requesting
    workload) feeds the ``boot_shared_hits`` counter: a hit from a context
    that never touched the key before is a cross-workload reuse.  The
    builder runs outside the cache lock — when two threads race, one
    template wins and the loser's build is discarded, never a deadlock on a
    slow OS fixture.
    """
    with _LOCK:
        per_owner = _BOOT_TEMPLATES.get(owner)
        if per_owner is None:
            per_owner = {}
            _BOOT_TEMPLATES[owner] = per_owner
        template = per_owner.get(key)
        if template is not None:
            _STATS.boot_hits += 1
            _record_boot_context(owner, key, context, fresh=False)
            return template
        _STATS.boot_misses += 1
    template = builder()
    with _LOCK:
        per_owner = _BOOT_TEMPLATES.get(owner)
        if per_owner is None:
            per_owner = {}
            _BOOT_TEMPLATES[owner] = per_owner
        _record_boot_context(owner, key, context, fresh=key not in per_owner)
        return per_owner.setdefault(key, template)


# ----------------------------------------------------------------------
# maintenance
# ----------------------------------------------------------------------
def clear_artifact_cache() -> None:
    """Drop every cached artifact and reset the counters (tests)."""
    with _LOCK:
        _BINARIES.clear()
        _PROFILES.clear()
        _MERGED.clear()
        _BOOT_TEMPLATES.clear()
        _BOOT_CONTEXTS.clear()
        global _STATS
        _STATS = CacheStats()


def artifact_cache_stats() -> CacheStats:
    """A snapshot of the current hit/miss counters."""
    with _LOCK:
        return CacheStats(
            binary_hits=_STATS.binary_hits,
            binary_misses=_STATS.binary_misses,
            profile_hits=_STATS.profile_hits,
            profile_misses=_STATS.profile_misses,
            merged_hits=_STATS.merged_hits,
            merged_misses=_STATS.merged_misses,
            boot_hits=_STATS.boot_hits,
            boot_misses=_STATS.boot_misses,
            boot_shared_hits=_STATS.boot_shared_hits,
        )


__all__ = [
    "CacheStats",
    "artifact_cache_stats",
    "cached_all_library_binaries",
    "cached_boot_template",
    "cached_library_binary",
    "cached_library_profile",
    "cached_merged_profile",
    "clear_artifact_cache",
    "known_libraries",
    "libc_spec_fingerprint",
    "library_spec_fingerprint",
]
