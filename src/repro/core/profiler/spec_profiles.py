"""Reference (documented) fault profiles.

These profiles are built straight from the simulated libc's specification —
the analog of reading the man pages.  They serve two purposes:

* they are the ground truth against which the static profiler's inferences
  are validated (the profiler should recover them from machine code alone),
* the Python-level targets, which have no compiled binary to profile, use
  them directly when generating injection scenarios.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.profiler.fault_profile import (
    ErrorSpecification,
    FaultProfile,
    FunctionProfile,
    merge_profiles,
)
from repro.oslib.libc import LIBC_FUNCTIONS


def reference_profile(library: str = "libc") -> FaultProfile:
    """Fault profile of one simulated library, from its specification."""
    profile = FaultProfile(library=library)
    for spec in LIBC_FUNCTIONS.values():
        if spec.library != library:
            continue
        profile.add(
            FunctionProfile(
                name=spec.name,
                error_returns=[
                    ErrorSpecification(return_value=error.value, errnos=error.errnos)
                    for error in spec.error_returns
                ],
                success=spec.success,
                errno_via_return=spec.errno_via_return,
            )
        )
    return profile


def reference_profiles() -> Dict[str, FaultProfile]:
    """All reference profiles, keyed by library name."""
    libraries = sorted({spec.library for spec in LIBC_FUNCTIONS.values()})
    return {library: reference_profile(library) for library in libraries}


def combined_reference_profile() -> FaultProfile:
    """One merged profile covering every simulated library."""
    return merge_profiles(reference_profiles().values())


def reference_function_profile(function: str) -> Optional[FunctionProfile]:
    spec = LIBC_FUNCTIONS.get(function)
    if spec is None:
        return None
    return FunctionProfile(
        name=spec.name,
        error_returns=[
            ErrorSpecification(return_value=error.value, errnos=error.errnos)
            for error in spec.error_returns
        ],
        success=spec.success,
        errno_via_return=spec.errno_via_return,
    )


__all__ = [
    "combined_reference_profile",
    "reference_function_profile",
    "reference_profile",
    "reference_profiles",
]
