"""Injection log (§2).

The LFI log records each error injection, the injected side effects
(``errno``), and the events that triggered it — call count, stack trace —
so that developers can match injections to observed program behaviour,
refine scenarios, and replay failures deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.common.frames import StackFrame, format_stack
from repro.core.injection.faults import FaultSpec


@dataclass
class InjectionRecord:
    """One intercepted call, injected or passed through."""

    index: int
    function: str
    args: tuple
    injected: bool
    call_count: int
    node: str = ""
    module: str = ""
    fault: Optional[FaultSpec] = None
    trigger_ids: List[str] = field(default_factory=list)
    stack: List[StackFrame] = field(default_factory=list)
    source: str = ""
    sim_time: float = 0.0

    def describe(self) -> str:
        action = f"inject {self.fault.describe()}" if self.injected and self.fault else "pass through"
        where = f" at {self.source}" if self.source else ""
        return (
            f"[{self.index}] {self.function} (call #{self.call_count} on "
            f"{self.node or self.module}){where}: {action}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "function": self.function,
            "args": list(self.args),
            "injected": self.injected,
            "call_count": self.call_count,
            "node": self.node,
            "module": self.module,
            # ``has_fault`` disambiguates errno-only faults (a real fault
            # whose errno is None) from pass-through records: both serialize
            # ``errno: null``, and return_value alone cannot tell them apart.
            "has_fault": self.fault is not None,
            "return_value": self.fault.return_value if self.fault else None,
            "errno": self.fault.errno if self.fault else None,
            # Structured fault classes; absent/None means the classic errno
            # class so pre-taxonomy logs keep loading unchanged.
            "fault_class": self.fault.fault_class if self.fault else None,
            "fault_params": dict(self.fault.params) if self.fault else None,
            "triggers": list(self.trigger_ids),
            "stack": [frame.describe() for frame in self.stack],
            "frames": [
                {
                    "module": frame.module,
                    "function": frame.function,
                    "offset": frame.offset,
                    "file": frame.file,
                    "line": frame.line,
                }
                for frame in self.stack
            ],
            "source": self.source,
            "sim_time": self.sim_time,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "InjectionRecord":
        """Rebuild a record from :meth:`to_dict` output (e.g. a JSON log).

        Faults are reconstructed whenever the record carried one — keyed on
        ``has_fault``/``injected`` plus the return value, *not* on the errno
        field, so errno-only error-return specs (``errno=None``) come back
        as faults instead of degrading to pass-through records.
        """
        fault: Optional[FaultSpec] = None
        has_fault = payload.get("has_fault")
        if has_fault is None:  # logs written before the marker existed
            has_fault = bool(payload.get("injected")) and payload.get("return_value") is not None
        if has_fault:
            fault_class = payload.get("fault_class") or "errno"
            fault_params = payload.get("fault_params") or {}
            fault = FaultSpec(
                return_value=int(payload.get("return_value", 0) or 0),
                errno=payload.get("errno"),
                fault_class=fault_class,
                params=tuple(sorted(fault_params.items())),
            )
        stack = [
            StackFrame(
                module=frame.get("module", ""),
                function=frame.get("function", ""),
                offset=frame.get("offset"),
                file=frame.get("file", ""),
                line=frame.get("line"),
            )
            for frame in payload.get("frames", [])
        ]
        return cls(
            index=int(payload.get("index", 0)),
            function=payload.get("function", ""),
            args=tuple(payload.get("args", ())),
            injected=bool(payload.get("injected", False)),
            call_count=int(payload.get("call_count", 0)),
            node=payload.get("node", ""),
            module=payload.get("module", ""),
            fault=fault,
            trigger_ids=list(payload.get("triggers", [])),
            stack=stack,
            source=payload.get("source", ""),
            sim_time=float(payload.get("sim_time", 0.0)),
        )


class InjectionLog:
    """Accumulates :class:`InjectionRecord` entries for one test run."""

    def __init__(self, record_passthrough: bool = False) -> None:
        #: When False (default), only injections are recorded — the log stays
        #: small even under the overhead benchmarks' call rates.
        self.record_passthrough = record_passthrough
        self.records: List[InjectionRecord] = []
        self.injection_count = 0
        self.passthrough_count = 0
        self._next_index = 0

    # ------------------------------------------------------------------
    def record(
        self,
        function: str,
        args: Sequence[Any],
        injected: bool,
        call_count: int,
        node: str = "",
        module: str = "",
        fault: Optional[FaultSpec] = None,
        trigger_ids: Optional[Sequence[str]] = None,
        stack: Optional[Sequence[StackFrame]] = None,
        source: str = "",
        sim_time: float = 0.0,
    ) -> Optional[InjectionRecord]:
        if injected:
            self.injection_count += 1
        else:
            self.passthrough_count += 1
            if not self.record_passthrough:
                return None
        record = InjectionRecord(
            index=self._next_index,
            function=function,
            args=tuple(args),
            injected=injected,
            call_count=call_count,
            node=node,
            module=module,
            fault=fault,
            trigger_ids=list(trigger_ids or []),
            stack=list(stack or []),
            source=source,
            sim_time=sim_time,
        )
        self._next_index += 1
        self.records.append(record)
        return record

    # ------------------------------------------------------------------
    def injections(self, function: Optional[str] = None) -> List[InjectionRecord]:
        return [
            record
            for record in self.records
            if record.injected and (function is None or record.function == function)
        ]

    def last_injection(self) -> Optional[InjectionRecord]:
        for record in reversed(self.records):
            if record.injected:
                return record
        return None

    def clear(self) -> None:
        self.records.clear()
        self.injection_count = 0
        self.passthrough_count = 0
        self._next_index = 0

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [record.to_dict() for record in self.records]

    def summary(self) -> str:
        lines = [
            f"injection log: {self.injection_count} injections, "
            f"{self.passthrough_count} pass-throughs"
        ]
        for record in self.injections():
            lines.append("  " + record.describe())
            if record.stack:
                for stack_line in format_stack(record.stack).splitlines():
                    lines.append("      " + stack_line)
        return "\n".join(lines)


__all__ = ["InjectionLog", "InjectionRecord"]
