"""Deterministic failure replay (§2, §3.2).

The LFI log contains everything needed to re-trigger an observed injection
in a program that is driven deterministically by its environment: the
function, the call count at which the injection happened, and the fault that
was injected.  ``build_replay_scenario`` turns a log record into a scenario
whose call-count trigger pins the injection to exactly that call — the same
mechanism the paper points at for debugging with breakpoints attached.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.injection.log import InjectionLog, InjectionRecord
from repro.core.scenario.model import Scenario
from repro.oslib.libc import LIBC_FUNCTIONS


def build_replay_scenario(record: InjectionRecord, name: Optional[str] = None) -> Scenario:
    """Build a scenario that replays exactly one logged injection.

    The scenario's metadata carries the record's full trigger context —
    which triggers fired, at which call count, on which node — for *every*
    fault, including errno-only error-return specs (``fault.errno is
    None``, e.g. the apr-style functions that report errors through the
    return value): those used to be easy to conflate with pass-through
    records once a log had been serialized, losing the trigger metadata on
    the way back in (see :meth:`InjectionRecord.from_dict`).
    """
    if not record.injected or record.fault is None:
        raise ValueError("cannot build a replay scenario from a pass-through record")
    scenario = Scenario(name=name or f"replay-{record.function}-{record.call_count}")
    scenario.metadata.update(
        {
            "replay_of": record.index,
            "original_triggers": list(record.trigger_ids),
            "original_call_count": record.call_count,
            "original_node": record.node,
            "original_return_value": record.fault.return_value,
            "original_errno": record.fault.errno,
            "source": record.source,
        }
    )
    trigger_id = f"replay_{record.function}_{record.call_count}"
    scenario.declare_trigger(trigger_id, "CallCountTrigger", {"nth": record.call_count})
    argc = LIBC_FUNCTIONS[record.function].argc if record.function in LIBC_FUNCTIONS else None
    scenario.associate(record.function, [trigger_id], fault=record.fault, argc=argc)
    return scenario


def build_replay_scenarios(log: InjectionLog) -> List[Scenario]:
    """One replay scenario per injection in the log."""
    return [build_replay_scenario(record) for record in log.injections()]


def replay_script(records: Iterable[InjectionRecord]) -> str:
    """Render a human-readable replay script (the paper's 'failure replay scripts')."""
    lines = ["# LFI failure replay script", "#"]
    for record in records:
        if not record.injected or record.fault is None:
            continue
        lines.append(
            f"# step: on call #{record.call_count} to {record.function}, "
            f"{record.fault.describe()}"
        )
        lines.append(
            f"lfi replay --function {record.function} --call {record.call_count} "
            f"--return {record.fault.return_value}"
            + (f" --errno {record.fault.errno_name}" if record.fault.errno is not None else "")
        )
    return "\n".join(lines)


__all__ = ["build_replay_scenario", "build_replay_scenarios", "replay_script"]
