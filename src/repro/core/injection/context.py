"""Call context handed to triggers.

The paper's ``Trigger::Eval`` receives the intercepted function's name and
its original arguments, and a trigger "can directly obtain any other
information normally accessible to a program" — the call stack (via
``backtrace()``), global variables, OS state.  :class:`CallContext` is that
bundle: the gate fills in the cheap fields eagerly and exposes the expensive
ones (the call stack, program state) through lazy accessors so that trigger
evaluation stays inexpensive (§7.4 measures exactly this overhead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.frames import StackFrame


@dataclass
class CallContext:
    """Everything a trigger may inspect about one intercepted library call."""

    function: str
    args: Tuple[Any, ...] = ()
    #: Per-function call count (1 for the first call to this function).
    call_count: int = 0
    #: Global call index across all intercepted functions.
    global_index: int = 0
    #: Name of the node/process making the call (distributed scenarios).
    node: str = ""
    #: Name of the module (binary or Python module) making the call.
    module: str = ""
    #: Call-site address in the binary, when known.
    call_address: Optional[int] = None
    #: Source location of the call site (file:line), when known.
    source: Optional[Any] = None
    #: Simulated OS of the calling process, when known (lets triggers check
    #: descriptor types with fstat, as the ReadPipe trigger does).
    os: Optional[Any] = None
    #: Lazily evaluated call-stack provider.
    stack_provider: Optional[Callable[[], Sequence[StackFrame]]] = None
    #: Program-state reader: name -> value (or None when unknown).
    state_reader: Optional[Callable[[str], Optional[Any]]] = None
    #: Free-form extras provided by the caller environment.
    extras: Dict[str, Any] = field(default_factory=dict)

    _cached_stack: Optional[List[StackFrame]] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    @property
    def stack(self) -> List[StackFrame]:
        """The caller's stack, innermost frame first (computed lazily)."""
        if self._cached_stack is None:
            if self.stack_provider is None:
                self._cached_stack = []
            else:
                self._cached_stack = list(self.stack_provider())
        return self._cached_stack

    def read_state(self, name: str) -> Optional[Any]:
        """Read a named program variable (program-state triggers)."""
        if self.state_reader is None:
            return None
        return self.state_reader(name)

    def arg(self, index: int, default: Any = 0) -> Any:
        if 0 <= index < len(self.args):
            return self.args[index]
        return default

    def describe(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        return f"{self.function}({args}) [call #{self.call_count} on {self.node or self.module}]"


__all__ = ["CallContext"]
