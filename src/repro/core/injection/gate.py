"""The library-call gate: the LD_PRELOAD shim of the reproduction (§6).

Every library call made by a program under test — whether it runs inside the
VM (compiled mini-C targets) or is a Python-level simulated server calling
through :class:`~repro.oslib.facade.LibcFacade` — flows through one
:class:`LibraryCallGate`.  The gate:

1. counts the call (per function and globally),
2. builds the :class:`~repro.core.injection.context.CallContext` triggers
   inspect (arguments, lazy stack, program state reader, node name),
3. asks the :class:`~repro.core.injection.runtime.InjectionRuntime` whether
   to inject, and
4. either applies the fault (return value + errno side effect) without ever
   invoking the real function, or passes the call through — exactly the two
   paths of the generated stub shown in §6.

``observe_only`` reproduces the §7.4 methodology: triggers are evaluated but
all calls pass through, isolating the trigger mechanism's overhead.
"""

from __future__ import annotations

import os
import sys
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.common.frames import StackFrame
from repro.core.injection.context import CallContext
from repro.core.injection.faults import ERRNO_CLASS
from repro.core.injection.log import InjectionLog
from repro.core.injection.runtime import InjectionRuntime
from repro.oslib.libc import LibcResult


def _python_stack_provider(skip_files: FrozenSet[str]) -> Callable[[], List[StackFrame]]:
    """Build a provider that snapshots the current Python call stack.

    Used for the Python-level simulated servers, where the "program" is
    Python code: frames from the gate/facade machinery itself are skipped so
    triggers see the application's stack, mirroring how a real backtrace
    starts at the intercepted call site.  Internal frames are identified by
    the *full path* of their source file, not the basename — an application
    module that happens to be called ``runtime.py`` or ``context.py`` must
    stay visible to stack triggers.  The provider walks raw frame objects
    (no source-line loading), keeping trigger evaluation cheap — the §7.4
    experiments measure exactly this cost.

    The walk stops at the workload boundary
    (:func:`repro.core.controller.monitor.run_python_workload`): frames
    above it belong to the campaign harness, and differ between execution
    backends and scheduling paths (serial, pools, prefix sharing) — a
    program's recorded backtrace must not depend on which of those drove
    the run.
    """

    def provider(max_depth: int = 16) -> List[StackFrame]:
        frames: List[StackFrame] = []
        frame = sys._getframe(1)
        while frame is not None and len(frames) < max_depth:
            filename = frame.f_code.co_filename
            normalized = _normalized_path(filename)
            if (
                frame.f_code.co_name == "run_python_workload"
                and normalized == _WORKLOAD_BOUNDARY_FILE
            ):
                break
            if normalized not in skip_files:
                basename = os.path.basename(filename)
                module = basename[:-3] if basename.endswith(".py") else basename
                frames.append(
                    StackFrame(
                        module=module,
                        function=frame.f_code.co_name,
                        file=basename,
                        line=frame.f_lineno,
                    )
                )
            frame = frame.f_back
        return frames

    return provider


#: Normalized-path memo so per-frame filtering stays a dict lookup.
_PATH_CACHE: Dict[str, str] = {}


def _normalized_path(filename: str) -> str:
    normalized = _PATH_CACHE.get(filename)
    if normalized is None:
        normalized = os.path.normcase(os.path.normpath(os.path.abspath(filename)))
        _PATH_CACHE[filename] = normalized
    return normalized


def _gate_internal_files() -> FrozenSet[str]:
    """Source files of the interception machinery itself (by package path)."""
    injection_dir = os.path.dirname(os.path.abspath(__file__))
    files = {
        os.path.join(injection_dir, name + ".py")
        for name in ("gate", "runtime", "context")
    }
    files.add(
        os.path.join(os.path.dirname(os.path.dirname(injection_dir)), "oslib", "facade.py")
    )
    return frozenset(_normalized_path(path) for path in files)


_GATE_INTERNAL_FILES = _gate_internal_files()

#: Source file of ``run_python_workload`` — the frame at which the stack
#: walk stops (everything above is campaign harness, not program).
_WORKLOAD_BOUNDARY_FILE = _normalized_path(
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "controller",
        "monitor.py",
    )
)

#: The provider is stateless (it snapshots the stack only when called), so
#: one shared instance serves every gate and every intercepted call —
#: building it per call was pure allocation overhead on the hot path.
_DEFAULT_STACK_PROVIDER = _python_stack_provider(_GATE_INTERNAL_FILES)


class LibraryCallGate:
    """Interception point between programs and the simulated libraries."""

    def __init__(
        self,
        runtime: Optional[InjectionRuntime] = None,
        log: Optional[InjectionLog] = None,
        observe_only: bool = False,
        capture_python_stack: bool = True,
        default_node: str = "",
    ) -> None:
        self.runtime = runtime
        self.log = log if log is not None else InjectionLog()
        self.observe_only = observe_only
        self.capture_python_stack = capture_python_stack
        self.default_node = default_node

        self.call_counts: Dict[str, int] = {}
        self.total_calls = 0
        self.intercepted_calls = 0
        self.injected_calls = 0
        #: Calls whose triggers agreed to inject but that passed through
        #: because the gate is in observe-only mode (§7.4 accounting).
        self.observed_injections = 0
        #: Extra program state exposed to ProgramStateTrigger for Python-level
        #: targets (the VM provides its own reader based on global symbols).
        self.state_providers: List[Callable[[str], Optional[Any]]] = []
        #: Called as ``observer(name, args, count, ctx, decision)`` at the
        #: moment an injection decision is made, *before* the fault is
        #: applied, counted, or logged.  The prefix-sharing scheduler
        #: installs this on a probe gate to snapshot machine state at the
        #: exact divergence point; ``None`` (the default) costs one
        #: attribute check per injection.
        self.inject_observer: Optional[Callable[..., None]] = None
        #: Called as ``observer(name, args)`` at the top of :meth:`call`,
        #: *before* the call is counted or decided.  The prefix-sharing
        #: scheduler uses it to snapshot the pre-call gate state of the
        #: call an injection lands on, so later-rank scenario-group members
        #: can re-execute that call through their own gates; ``None`` (the
        #: default) costs one attribute check per gated call.
        self.call_observer: Optional[Callable[..., None]] = None

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def install_runtime(self, runtime: Optional[InjectionRuntime]) -> None:
        self.runtime = runtime

    def add_state_provider(self, provider: Callable[[str], Optional[Any]]) -> None:
        self.state_providers.append(provider)

    def reset_counters(self) -> None:
        self.call_counts.clear()
        self.total_calls = 0
        self.intercepted_calls = 0
        self.injected_calls = 0
        self.observed_injections = 0

    # ------------------------------------------------------------------
    # the interception path
    # ------------------------------------------------------------------
    def count_call(self, name: str) -> int:
        """Count one intercepted call; returns the per-function count.

        The single home of the per-call accounting invariant: ``call``
        uses it, and the VM's compiled-engine fast path calls it directly
        when pass-through needs no context (so the two paths cannot drift).
        """
        count = self.call_counts.get(name, 0) + 1
        self.call_counts[name] = count
        self.total_calls += 1
        return count

    def call(
        self,
        name: str,
        args: Tuple[Any, ...],
        invoke: Callable[[], LibcResult],
        apply_fault: Optional[Callable[[int, Optional[int]], LibcResult]] = None,
        context: Optional[Dict[str, Any]] = None,
    ) -> LibcResult:
        if self.call_observer is not None:
            self.call_observer(name, args)
        count = self.count_call(name)

        runtime = self.runtime
        if runtime is None or not runtime.handles(name):
            return invoke()
        self.intercepted_calls += 1

        ctx = self._build_context(name, args, count, context or {})
        decision = runtime.decide(ctx)

        if decision.inject and not self.observe_only:
            assert decision.fault is not None
            if self.inject_observer is not None:
                self.inject_observer(name, args, count, ctx, decision)
            self.injected_calls += 1

            def record_injection() -> None:
                self.log.record(
                    function=name,
                    args=args,
                    injected=True,
                    call_count=count,
                    node=ctx.node,
                    module=ctx.module,
                    fault=decision.fault,
                    trigger_ids=decision.fired_triggers,
                    stack=ctx.stack,
                    source=str(ctx.source) if ctx.source else "",
                    sim_time=self._sim_time(context),
                )

            if decision.fault.fault_class != ERRNO_CLASS:
                # Structured classes (partial I/O, ramps, clock, network,
                # crash points) have class-specific semantics; the applier
                # logs first because crash classes unwind the world.
                from repro.core.faults import apply_structured_fault

                result = apply_structured_fault(
                    decision.fault, name, args, invoke, apply_fault, ctx,
                    log_record=record_injection,
                )
                result.injected = True
                return result

            if apply_fault is not None:
                result = apply_fault(decision.fault.return_value, decision.fault.errno)
            else:
                result = LibcResult(
                    value=decision.fault.return_value,
                    errno=decision.fault.errno,
                    injected=True,
                )
            result.injected = True
            record_injection()
            return result

        # Pass-through (triggers disagreed, or observe-only suppressed the
        # injection).  Fired triggers are recorded here too: §7.4-style
        # observe-only runs count trigger activations from the log.
        if decision.inject and self.observe_only:
            self.observed_injections += 1
        self.log.record(
            function=name,
            args=args,
            injected=False,
            call_count=count,
            node=ctx.node,
            module=ctx.module,
            trigger_ids=decision.fired_triggers,
            source=str(ctx.source) if ctx.source else "",
            sim_time=self._sim_time(context),
        )
        return invoke()

    # ------------------------------------------------------------------
    # context assembly
    # ------------------------------------------------------------------
    def _build_context(
        self, name: str, args: Tuple[Any, ...], count: int, raw: Dict[str, Any]
    ) -> CallContext:
        # Both fallbacks are hoisted off the per-call path: the stack
        # provider is a module-level singleton, and the composed state
        # reader is a bound method that walks the live provider list.
        stack_provider = raw.get("stack")
        if stack_provider is None and self.capture_python_stack:
            stack_provider = _DEFAULT_STACK_PROVIDER

        state_reader = raw.get("state")
        if state_reader is None and self.state_providers:
            state_reader = self._read_state

        source = raw.get("source")
        return CallContext(
            function=name,
            args=args,
            call_count=count,
            global_index=self.total_calls,
            node=raw.get("node", self.default_node),
            module=raw.get("module", ""),
            call_address=raw.get("call_address"),
            source=source,
            os=raw.get("os"),
            stack_provider=stack_provider,
            state_reader=state_reader,
            extras={key: value for key, value in raw.items()
                    if key not in ("stack", "state", "source", "node", "module",
                                   "call_address", "os")},
        )

    def _read_state(self, variable: str) -> Optional[Any]:
        """First non-None answer from the registered state providers."""
        for provider in self.state_providers:
            value = provider(variable)
            if value is not None:
                return value
        return None

    @staticmethod
    def _sim_time(context: Optional[Dict[str, Any]]) -> float:
        if not context:
            return 0.0
        os_state = context.get("os")
        clock = getattr(os_state, "clock", None)
        return getattr(clock, "now", 0.0) if clock is not None else 0.0


__all__ = ["LibraryCallGate"]
