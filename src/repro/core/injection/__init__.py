"""Injection runtime: the boundary where faults are introduced."""

from repro.core.injection.context import CallContext
from repro.core.injection.faults import FaultSpec
from repro.core.injection.gate import LibraryCallGate
from repro.core.injection.log import InjectionLog, InjectionRecord
from repro.core.injection.replay import build_replay_scenario
from repro.core.injection.runtime import InjectionDecision, InjectionRuntime

__all__ = [
    "CallContext",
    "FaultSpec",
    "InjectionDecision",
    "InjectionLog",
    "InjectionRecord",
    "InjectionRuntime",
    "LibraryCallGate",
    "build_replay_scenario",
]
