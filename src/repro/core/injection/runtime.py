"""Trigger evaluation runtime (§4.3).

Responsibilities:

* turn a :class:`~repro.core.scenario.model.Scenario` into per-function
  evaluation plans with **O(1)** lookup by function name;
* **lazily** instantiate and initialize each trigger right before its first
  evaluation;
* evaluate conjunctions with short-circuiting and disjunctions across
  repeated ``<function>`` associations;
* count evaluations so the overhead experiments (Tables 5 and 6) can report
  triggerings per second.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.injection.context import CallContext
from repro.core.injection.faults import FaultSpec
from repro.core.scenario.model import FunctionPlan, Scenario
from repro.core.triggers.base import Trigger
from repro.core.triggers.registry import (
    TriggerRegistry,
    default_registry,
    ensure_stock_triggers_registered,
)


@dataclass
class InjectionDecision:
    """Outcome of consulting the runtime about one intercepted call."""

    inject: bool
    fault: Optional[FaultSpec] = None
    plan: Optional[FunctionPlan] = None
    fired_triggers: List[str] = field(default_factory=list)

    @classmethod
    def no_injection(cls) -> "InjectionDecision":
        return cls(inject=False)


@dataclass
class _PlanState:
    plan: FunctionPlan
    trigger_ids: List[str]


class InjectionRuntime:
    """Evaluates a scenario's triggers for intercepted calls."""

    def __init__(
        self,
        scenario: Scenario,
        registry: Optional[TriggerRegistry] = None,
        shared_objects: Optional[Dict[str, Any]] = None,
        run_seed: Optional[int] = None,
    ) -> None:
        ensure_stock_triggers_registered()
        self.scenario = scenario
        self.registry = registry or default_registry()
        #: Objects injectable into trigger parameters by name (e.g. the
        #: central controller for distributed triggers): a parameter whose
        #: value is ``"@name"`` is replaced by ``shared_objects["name"]``.
        self.shared_objects = dict(shared_objects or {})
        #: Per-run seed threaded down from the campaign executor.  Triggers
        #: that consume randomness (``consumes_run_seed``) and were declared
        #: without an explicit ``seed`` get one derived from this value and
        #: their trigger id, so parallel campaigns stay bit-identical to
        #: serial ones even for stochastic scenarios.
        self.run_seed = run_seed

        self._plans_by_function: Dict[str, List[_PlanState]] = {}
        for plan in scenario.plans:
            self._plans_by_function.setdefault(plan.function, []).append(
                _PlanState(plan=plan, trigger_ids=list(plan.trigger_ids))
            )

        #: Trigger instances, created lazily on first use (§4.3).
        self._instances: Dict[str, Trigger] = {}
        self.trigger_evaluations = 0
        self.decisions = 0
        self.injections = 0

    # ------------------------------------------------------------------
    # trigger instantiation
    # ------------------------------------------------------------------
    def _resolve_params(self, params: Dict[str, Any]) -> Dict[str, Any]:
        resolved: Dict[str, Any] = {}
        for key, value in params.items():
            if isinstance(value, str) and value.startswith("@") and value[1:] in self.shared_objects:
                resolved[key] = self.shared_objects[value[1:]]
            else:
                resolved[key] = value
        return resolved

    def _derived_trigger_seed(self, trigger_id: str) -> int:
        """Seed for one trigger: stable in (run seed, trigger id) only."""
        assert self.run_seed is not None
        return (self.run_seed ^ zlib.crc32(trigger_id.encode("utf-8"))) & 0x7FFFFFFF

    def trigger_instance(self, trigger_id: str) -> Trigger:
        """Return (lazily creating) the instance for a declared trigger."""
        instance = self._instances.get(trigger_id)
        if instance is not None:
            return instance
        declaration = self.scenario.triggers.get(trigger_id)
        if declaration is None:
            raise KeyError(f"scenario {self.scenario.name!r} has no trigger {trigger_id!r}")
        trigger_class = self.registry.lookup(declaration.class_name)
        params = self._resolve_params(declaration.params)
        if self.run_seed is not None and trigger_class.consumes_run_seed:
            params.setdefault("seed", self._derived_trigger_seed(trigger_id))
        instance = trigger_class()
        instance.init(params)
        self._instances[trigger_id] = instance
        return instance

    def instantiated_triggers(self) -> Dict[str, Trigger]:
        return dict(self._instances)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def handles(self, function: str) -> bool:
        """True when the scenario intercepts *function* at all."""
        return function in self._plans_by_function

    def intercepted_functions(self) -> List[str]:
        return sorted(self._plans_by_function)

    def decide(self, ctx: CallContext) -> InjectionDecision:
        """Evaluate all plans for this call; first agreeing plan that injects wins."""
        plans = self._plans_by_function.get(ctx.function)
        if not plans:
            return InjectionDecision.no_injection()
        self.decisions += 1

        #: Triggers that fired for fully-agreed *observe* associations
        #: (``injects=False``): reported on the non-injecting decision so
        #: their activations reach the log.
        observed_fired: List[str] = []
        for state in plans:
            fired: List[str] = []
            agreed = True
            if not state.trigger_ids:
                # No triggers referenced: the association fires on every call
                # (useful for unconditional observe/inject plans).
                agreed = True
            for trigger_id in state.trigger_ids:
                trigger = self.trigger_instance(trigger_id)
                self.trigger_evaluations += 1
                if trigger.eval(ctx):
                    fired.append(trigger_id)
                else:
                    agreed = False
                    break  # short-circuit: remaining triggers are not invoked
            if agreed:
                if state.plan.injects:
                    self.injections += 1
                    # Activations of earlier observe plans on this same call
                    # ride along so log-derived counts do not lose them.
                    for trigger_id in fired:
                        if trigger_id not in observed_fired:
                            observed_fired.append(trigger_id)
                    return InjectionDecision(
                        inject=True,
                        fault=state.plan.fault,
                        plan=state.plan,
                        fired_triggers=observed_fired,
                    )
                for trigger_id in fired:
                    if trigger_id not in observed_fired:
                        observed_fired.append(trigger_id)
        return InjectionDecision(inject=False, fired_triggers=observed_fired)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Reset all instantiated triggers (between test runs)."""
        for trigger in self._instances.values():
            trigger.reset()
        self.trigger_evaluations = 0
        self.decisions = 0
        self.injections = 0


__all__ = ["InjectionDecision", "InjectionRuntime"]
