"""Fault specification: what gets injected when a trigger fires.

A fault is an error return value plus its side effects.  In this
reproduction the side effects are the ``errno`` value (as in the paper's
examples) and an optional free-form dictionary for extensions.

Since the structured fault-class layer (``repro.core.faults``) the spec also
names *which class* of fault it is.  The classic (return value, errno) fault
is the ``"errno"`` class; partial I/O, resource-exhaustion ramps, clock
perturbations, network partitions, and crash points each carry their own
class name plus a deterministic, hashable parameter tuple.  The gate keeps
handling ``"errno"`` faults inline and dispatches every other class to
:func:`repro.core.faults.apply_structured_fault`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.oslib.errno_codes import errno_name, errno_value

#: Class name of the classic (return value, errno) fault.
ERRNO_CLASS = "errno"


@dataclass(frozen=True)
class FaultSpec:
    """The injected error: return value + errno side effect.

    ``fault_class``/``params`` participate in equality and hashing so two
    specs of different classes (or the same class with different knobs)
    never compare equal — prefix-group sibling matching and dedup rely on
    this.
    """

    return_value: int
    errno: Optional[int] = None
    side_effects: Dict[str, int] = field(default_factory=dict, hash=False, compare=False)
    #: Fault-class name (see ``repro.core.faults.FAULT_CLASSES``).
    fault_class: str = ERRNO_CLASS
    #: Class-specific knobs as a sorted, hashable ``((key, value), ...)``.
    params: Tuple[Tuple[str, Any], ...] = ()

    @property
    def errno_name(self) -> str:
        return errno_name(self.errno) if self.errno is not None else ""

    @property
    def is_errno_class(self) -> bool:
        return self.fault_class == ERRNO_CLASS

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def param(self, key: str, default: Any = None) -> Any:
        for name, value in self.params:
            if name == key:
                return value
        return default

    def describe(self) -> str:
        if self.is_errno_class:
            if self.errno is None:
                return f"return {self.return_value}"
            return f"return {self.return_value}, errno={self.errno_name}"
        knobs = ", ".join(f"{key}={value}" for key, value in self.params)
        return f"{self.fault_class}({knobs})" if knobs else self.fault_class

    @classmethod
    def from_strings(cls, return_value: str, errno: Optional[str]) -> "FaultSpec":
        """Build a fault from the scenario language's string attributes."""
        value = int(str(return_value), 0)
        errno_int: Optional[int] = None
        if errno is not None and errno.strip() and errno.strip().lower() not in ("unused", "none"):
            errno_int = errno_value(errno)
        return cls(return_value=value, errno=errno_int)

    @classmethod
    def structured(
        cls,
        fault_class: str,
        params: Optional[Dict[str, Any]] = None,
        return_value: int = 0,
        errno: Optional[int] = None,
    ) -> "FaultSpec":
        """Build a structured (non-errno-class) fault.

        Parameters are sorted by key so equal dictionaries always produce
        equal (and equally hashed) specs regardless of insertion order.
        """
        items = tuple(sorted((params or {}).items()))
        return cls(
            return_value=return_value,
            errno=errno,
            fault_class=fault_class,
            params=items,
        )


__all__ = ["ERRNO_CLASS", "FaultSpec"]
