"""Fault specification: what gets injected when a trigger fires.

A fault is an error return value plus its side effects.  In this
reproduction the side effects are the ``errno`` value (as in the paper's
examples) and an optional free-form dictionary for extensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.oslib.errno_codes import errno_name, errno_value


@dataclass(frozen=True)
class FaultSpec:
    """The injected error: return value + errno side effect."""

    return_value: int
    errno: Optional[int] = None
    side_effects: Dict[str, int] = field(default_factory=dict, hash=False, compare=False)

    @property
    def errno_name(self) -> str:
        return errno_name(self.errno) if self.errno is not None else ""

    def describe(self) -> str:
        if self.errno is None:
            return f"return {self.return_value}"
        return f"return {self.return_value}, errno={self.errno_name}"

    @classmethod
    def from_strings(cls, return_value: str, errno: Optional[str]) -> "FaultSpec":
        """Build a fault from the scenario language's string attributes."""
        value = int(str(return_value), 0)
        errno_int: Optional[int] = None
        if errno is not None and errno.strip() and errno.strip().lower() not in ("unused", "none"):
            errno_int = errno_value(errno)
        return cls(return_value=value, errno=errno_int)


__all__ = ["FaultSpec"]
