"""The LFI core: the paper's primary contribution.

Subpackages:

* :mod:`repro.core.profiler` — library profiler inferring fault profiles
  (error return codes + errno side effects) from library binaries (§2).
* :mod:`repro.core.triggers` — the trigger interface, registry, stock
  triggers and composition (§3).
* :mod:`repro.core.scenario` — the XML fault-injection language (§4).
* :mod:`repro.core.injection` — the injection runtime, the library-call
  gate (LD_PRELOAD shim analog), logs and replay (§2, §6).
* :mod:`repro.core.analysis` — the call-site analyzer: partial CFGs,
  dataflow on return-value copies, Algorithm 1 classification, scenario
  generation (§5).
* :mod:`repro.core.controller` — the LFI controller orchestrating test
  campaigns and monitoring outcomes (§2).
* :mod:`repro.core.exploration` — systematic fault-space exploration:
  (site x errno) enumeration, pluggable selection strategies, failure
  deduplication, and a resumable JSON-lines result store (§5, §7.1).
"""

from repro.core.injection.context import CallContext
from repro.core.injection.faults import FaultSpec
from repro.core.injection.gate import LibraryCallGate
from repro.core.injection.log import InjectionLog
from repro.core.injection.runtime import InjectionRuntime
from repro.core.scenario.model import FunctionPlan, Scenario, TriggerDecl
from repro.core.triggers.base import Trigger
from repro.core.triggers.registry import TriggerRegistry, default_registry

__all__ = [
    "CallContext",
    "FaultSpec",
    "FunctionPlan",
    "InjectionLog",
    "InjectionRuntime",
    "LibraryCallGate",
    "Scenario",
    "Trigger",
    "TriggerDecl",
    "TriggerRegistry",
    "default_registry",
]
