"""Deterministic network-fault delivery hooks.

:class:`~repro.oslib.net.SimNetwork` runs every registered delivery hook on
each ``sendto``; a hook returning ``False`` drops the datagram.  The hooks
here are small *value objects* — equality and hashing are structural — so
snapshot capture/restore round-trips compare them correctly and installing
the same partition twice is detectable.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from repro.oslib.net import Datagram


class PartitionHook:
    """Drop every datagram to or from a partitioned set of addresses."""

    def __init__(self, blocked: Iterable[int]) -> None:
        self.blocked: FrozenSet[int] = frozenset(int(address) for address in blocked)

    def __call__(self, datagram: Datagram) -> bool:
        return (
            datagram.destination not in self.blocked
            and datagram.source not in self.blocked
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PartitionHook) and self.blocked == other.blocked

    def __hash__(self) -> int:
        return hash(("PartitionHook", self.blocked))

    def __repr__(self) -> str:
        return f"PartitionHook(blocked={sorted(self.blocked)})"


class DropAllHook:
    """Drop every datagram (total blackout; also the hook-leak regression probe)."""

    def __call__(self, datagram: Datagram) -> bool:
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DropAllHook)

    def __hash__(self) -> int:
        return hash("DropAllHook")

    def __repr__(self) -> str:
        return "DropAllHook()"


__all__ = ["DropAllHook", "PartitionHook"]
