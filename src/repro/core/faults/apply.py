"""Applying structured faults at the gate and at mid-run resume.

Two entry points:

* :func:`apply_structured_fault` — called by the library-call gate when the
  injection decision carries a non-errno fault class.  It receives the same
  machinery the gate has (the pass-through thunk, the VM's apply-fault
  callback, the call context) and produces the faulted
  :class:`~repro.oslib.libc.LibcResult`, or unwinds the world for
  ``crash_point``.
* :func:`apply_fault_on_machine` — called by the prefix-sharing scheduler
  when a sibling scenario resumes from a mid-run capture: it replays the
  class's semantics directly against the restored machine (its libc,
  memory, and simulated OS), mirroring what the gate would have done at the
  captured call.

Both depend only on simulated state, so replayed and straight-line
executions are bit-identical — the property the differential tests pin.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from repro.core.faults.netfx import PartitionHook
from repro.core.injection.context import CallContext
from repro.core.injection.faults import ERRNO_CLASS, FaultSpec
from repro.oslib.errors import WorldCrash
from repro.oslib.libc import LibcResult

#: Functions a partial-I/O fault can truncate: the byte-count calls
#: (``write``/``read``) and the stdio item-count calls (``fwrite``/``fread``).
#: The VM convention always carries the count at index 2 (``(fd, buf,
#: count)`` / ``(buf, size, count, handle)``); the Python facade abbreviates
#: ``write``/``read`` to ``(fd, count)``, so the count extraction below is
#: shape-aware.
_PARTIAL_CAPABLE = frozenset({"write", "read", "fwrite", "fread"})

#: Ramp classes deliver a plain errno fault once the budget is spent.
_RAMP_CLASSES = frozenset({"fd_exhaustion", "heap_exhaustion"})

_CLOCK_CLASSES = frozenset({"clock_skew", "clock_jump"})


def _clamped_count(name: str, args: Tuple[Any, ...], fault: FaultSpec) -> int:
    """The short count a partial-I/O fault leaves of the requested count."""
    if name not in _PARTIAL_CAPABLE:
        raise ValueError(f"partial I/O fault cannot target {name!r}")
    if len(args) > 2:
        requested = int(args[2])
    elif name in ("write", "read") and len(args) == 2:
        requested = int(args[1])  # facade shape: (fd, count)
    else:
        requested = 0
    if requested <= 0:
        return 0
    fraction = float(fault.param("fraction", 0.5))
    clamped = int(requested * fraction)
    return min(max(clamped, 0), requested - 1)


def _clamped_args(args: Tuple[Any, ...], clamped: int) -> Tuple[Any, ...]:
    new_args = list(args)
    new_args[2] = clamped
    return tuple(new_args)


def _partial_result(
    fault: FaultSpec,
    name: str,
    args: Tuple[Any, ...],
    machine: Optional[Any],
    partial_io: Optional[Callable[[int], LibcResult]],
) -> LibcResult:
    clamped = _clamped_count(name, args, fault)
    if machine is not None:
        return machine.libc.call(name, _clamped_args(args, clamped), machine.memory)
    if partial_io is not None:
        return partial_io(clamped)
    raise ValueError(
        f"partial I/O fault on {name!r} needs a 'machine' or 'partial_io' call context"
    )


def _errno_result(
    fault: FaultSpec,
    apply_fault: Optional[Callable[[int, Optional[int]], LibcResult]],
) -> LibcResult:
    if apply_fault is not None:
        result = apply_fault(fault.return_value, fault.errno)
    else:
        result = LibcResult(value=fault.return_value, errno=fault.errno, injected=True)
    result.injected = True
    return result


def apply_structured_fault(
    fault: FaultSpec,
    name: str,
    args: Tuple[Any, ...],
    invoke: Callable[[], LibcResult],
    apply_fault: Optional[Callable[[int, Optional[int]], LibcResult]],
    ctx: CallContext,
    log_record: Callable[[], None],
) -> LibcResult:
    """Perform one structured injection at the gate.

    ``log_record`` writes the injection record; it runs *before* the fault
    is applied so crash classes (which never return) still leave the record
    the prefix scheduler and replay tooling rely on.
    """
    klass = fault.fault_class
    os_state = ctx.os
    machine = ctx.extras.get("machine")
    partial_io = ctx.extras.get("partial_io")
    log_record()

    if klass in ("partial_write", "short_read"):
        result = _partial_result(fault, name, args, machine, partial_io)
        result.injected = True
        return result

    if klass in _RAMP_CLASSES:
        return _errno_result(fault, apply_fault)

    if klass in _CLOCK_CLASSES:
        if os_state is None:
            raise ValueError(f"{klass} fault needs an 'os' call context")
        os_state.clock.advance(float(fault.param("delta", 0.0)))
        result = invoke()
        result.injected = True
        return result

    if klass == "net_drop":
        count = int(args[2]) if len(args) > 2 else 0
        return LibcResult(value=count, errno=None, injected=True)

    if klass == "net_partition":
        if os_state is None:
            raise ValueError("net_partition fault needs an 'os' call context")
        destination = int(args[4]) if len(args) > 4 else -1
        hook = PartitionHook({destination})
        if not os_state.network.has_delivery_hook(hook):
            os_state.network.add_delivery_hook(hook)
        result = invoke()  # this very datagram already hits the partition
        result.injected = True
        return result

    if klass == "net_reorder":
        if os_state is None:
            raise ValueError("net_reorder fault needs an 'os' call context")
        destination = int(args[4]) if len(args) > 4 else -1
        result = invoke()
        os_state.network.promote_last(destination)
        result.injected = True
        return result

    if klass == "crash_point":
        torn = bool(fault.param("torn", 0))
        if torn and name in _PARTIAL_CAPABLE:
            # The power loss lands mid-write: commit a torn prefix first.
            _partial_result(fault, name, args, machine, partial_io)
        raise WorldCrash(f"crash injected at {name} (call #{ctx.call_count})", torn=torn)

    raise ValueError(f"unknown structured fault class {klass!r}")


def apply_fault_on_machine(
    fault: FaultSpec,
    name: str,
    args: Tuple[Any, ...],
    machine: Any,
) -> LibcResult:
    """Replay one injection against a restored machine (prefix mid-resume).

    Only suffix-only classes are legal here; classes that perturb global
    delivery order or kill the world are excluded from prefix groups by
    :func:`repro.core.controller.prefix.scenario_group_key_parts`.
    """
    klass = fault.fault_class
    if klass == ERRNO_CLASS or klass in _RAMP_CLASSES:
        return machine.libc.apply_injected_fault(
            name, fault.return_value, fault.errno, machine.memory
        )
    if klass in ("partial_write", "short_read"):
        clamped = _clamped_count(name, args, fault)
        return machine.libc.call(name, _clamped_args(args, clamped), machine.memory)
    if klass in _CLOCK_CLASSES:
        machine.os.clock.advance(float(fault.param("delta", 0.0)))
        return machine.libc.call(name, tuple(args), machine.memory)
    raise ValueError(f"fault class {klass!r} cannot resume from a mid-run capture")


__all__ = ["apply_fault_on_machine", "apply_structured_fault"]
