"""The fault-class registry: definitions, parameter grids, scenario builders.

Each :class:`FaultClassDef` names one structured class, the library
functions it can target, and a deterministic grid of parameter sets.  The
grid is what campaigns enumerate: the fault space of a class is the cross
product ``functions x grid x occurrence``, exactly parallel to the
``site x errno`` enumeration of the classic class.

Scenario construction is *function-level*: a ``CallCountTrigger`` (plus a
``SingletonTrigger`` for one-shot classes) picks the N-th call to the
target function, which works identically for compiled (VM) targets and
Python-level facade targets — no static call-site analysis is needed.
Ramp classes (``fd_exhaustion``/``heap_exhaustion``) instead arm a
periodic trigger that fires on *every* call once the budget is spent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.core.injection.faults import ERRNO_CLASS, FaultSpec
from repro.core.scenario.builder import ScenarioBuilder
from repro.core.scenario.model import Scenario
from repro.oslib.errno_codes import Errno


def _grid(*entries: Dict[str, Any]) -> Tuple[Tuple[Tuple[str, Any], ...], ...]:
    return tuple(tuple(sorted(entry.items())) for entry in entries)


@dataclass(frozen=True)
class FaultClassDef:
    """Static description of one structured fault class."""

    name: str
    #: Library functions this class can target, in enumeration order.
    functions: Tuple[str, ...]
    #: Deterministic parameter grid (each entry a sorted key/value tuple).
    grid: Tuple[Tuple[Tuple[str, Any], ...], ...]
    #: True when the class only perturbs the post-injection suffix, so a
    #: mid-run prefix capture can be resumed under it.
    suffix_only: bool
    #: True when scenarios of this class may join prefix scenario-groups.
    shareable: bool
    #: True for budget ramps: the trigger re-fires on every call after the
    #: budget is spent, so the occurrence dimension is the budget itself.
    ramp: bool = False
    description: str = ""

    def param_dicts(self) -> Tuple[Dict[str, Any], ...]:
        return tuple(dict(entry) for entry in self.grid)


#: Registry of every structured class, keyed by name (sorted iteration is
#: the canonical enumeration order).
FAULT_CLASSES: Dict[str, FaultClassDef] = {
    definition.name: definition
    for definition in [
        FaultClassDef(
            name="partial_write",
            functions=("write", "fwrite"),
            grid=_grid({"fraction": 0.5}, {"fraction": 0.0}),
            suffix_only=True,
            shareable=True,
            description="the write performs a truncated real write and returns the short count",
        ),
        FaultClassDef(
            name="short_read",
            functions=("read", "fread"),
            grid=_grid({"fraction": 0.5}, {"fraction": 0.0}),
            suffix_only=True,
            shareable=True,
            description="the read returns fewer bytes than requested",
        ),
        FaultClassDef(
            name="fd_exhaustion",
            functions=("open", "socket"),
            grid=_grid({"budget": 0}, {"budget": 2}),
            suffix_only=True,
            shareable=False,
            ramp=True,
            description="descriptor budget counts down, then every open fails EMFILE",
        ),
        FaultClassDef(
            name="heap_exhaustion",
            functions=("malloc",),
            grid=_grid({"budget": 0}, {"budget": 4}),
            suffix_only=True,
            shareable=False,
            ramp=True,
            description="allocation budget counts down, then every malloc fails ENOMEM",
        ),
        FaultClassDef(
            name="clock_skew",
            functions=("time",),
            grid=_grid({"delta": 0.5}, {"delta": 5.0}),
            suffix_only=True,
            shareable=True,
            description="the clock drifts forward a small delta before the call",
        ),
        FaultClassDef(
            name="clock_jump",
            functions=("time",),
            grid=_grid({"delta": 3600.0}, {"delta": 86400.0}),
            suffix_only=True,
            shareable=True,
            description="the clock leaps forward (NTP step / suspend-resume) before the call",
        ),
        FaultClassDef(
            name="net_drop",
            functions=("sendto",),
            grid=_grid({}),
            suffix_only=True,
            shareable=False,
            description="the triggered datagram vanishes; the sender sees a full count",
        ),
        FaultClassDef(
            name="net_partition",
            functions=("sendto",),
            grid=_grid({"scope": "dst"}),
            suffix_only=True,
            shareable=False,
            description="from the triggered send on, the destination is partitioned off",
        ),
        FaultClassDef(
            name="net_reorder",
            functions=("sendto",),
            grid=_grid({}),
            suffix_only=True,
            shareable=False,
            description="the triggered datagram jumps ahead of the queued ones",
        ),
        FaultClassDef(
            name="crash_point",
            functions=("write", "fwrite"),
            grid=_grid({"torn": 0}, {"fraction": 0.5, "torn": 1}),
            suffix_only=False,
            shareable=False,
            description="the world is killed at the call (optionally after a torn write)",
        ),
    ]
}

#: Classes whose scenarios must never join a prefix scenario-group.
UNSHAREABLE_CLASSES = frozenset(
    definition.name for definition in FAULT_CLASSES.values() if not definition.shareable
)

#: Classes a mid-run capture can be resumed under (suffix-only semantics).
MID_RESUMABLE_CLASSES = frozenset(
    definition.name for definition in FAULT_CLASSES.values() if definition.suffix_only
) | {ERRNO_CLASS}


def class_names() -> Tuple[str, ...]:
    return tuple(sorted(FAULT_CLASSES))


def is_structured_class(name: str) -> bool:
    return name in FAULT_CLASSES


def make_fault(klass: str, params: Optional[Dict[str, Any]] = None) -> FaultSpec:
    """Build the :class:`FaultSpec` carried by a structured scenario."""
    if klass == ERRNO_CLASS:
        raise ValueError("errno faults are built by ScenarioBuilder.inject, not make_fault")
    definition = FAULT_CLASSES.get(klass)
    if definition is None:
        raise ValueError(f"unknown fault class {klass!r} (known: {', '.join(class_names())})")
    params = dict(params or {})
    if klass == "fd_exhaustion":
        return FaultSpec.structured(klass, params, return_value=-1, errno=int(Errno.EMFILE))
    if klass == "heap_exhaustion":
        return FaultSpec.structured(klass, params, return_value=0, errno=int(Errno.ENOMEM))
    return FaultSpec.structured(klass, params)


def structured_scenario(
    klass: str,
    function: str,
    nth: int = 1,
    params: Optional[Dict[str, Any]] = None,
    name: Optional[str] = None,
    recovery_workload: Optional[str] = None,
) -> Scenario:
    """Build the scenario injecting one structured fault.

    ``nth`` selects the occurrence for one-shot classes; ramps derive their
    arming point from ``params["budget"]`` instead (the budget'th+1 call and
    every call after it fail).  ``recovery_workload`` is recorded for
    ``crash_point`` scenarios: after the world crash the target re-runs that
    workload (empty string means "re-run the crashed workload") against the
    surviving fs state to exercise recovery code.
    """
    definition = FAULT_CLASSES.get(klass)
    if definition is None:
        raise ValueError(f"unknown fault class {klass!r} (known: {', '.join(class_names())})")
    params = dict(params or {})
    fault = make_fault(klass, params)
    scenario_name = name or f"{klass}-{function}-n{int(nth)}"
    builder = ScenarioBuilder(scenario_name)
    if definition.ramp:
        budget = int(params.get("budget", 0))
        builder.trigger("rampTrig", "CallCountTrigger", nth=budget + 1, every=1)
        trigger_ids = ["rampTrig"]
    else:
        builder.trigger("countTrig", "CallCountTrigger", nth=int(nth))
        builder.trigger("onceTrig", "SingletonTrigger")
        trigger_ids = ["countTrig", "onceTrig"]
    builder.inject_fault(function, trigger_ids, fault)
    metadata: Dict[str, Any] = {
        "fault_class": klass,
        "fault_params": dict(params),
        "target_function": function,
        "occurrence": int(nth),
    }
    if klass == "crash_point":
        if recovery_workload is None:
            # A "recovery" grid param lets enumerated points carry the
            # post-crash workload in their identity (key/fingerprint).
            recovery_workload = params.get("recovery", "")
        metadata["recovery_workload"] = str(recovery_workload)
    builder.metadata(**metadata)
    return builder.build()


__all__ = [
    "FAULT_CLASSES",
    "MID_RESUMABLE_CLASSES",
    "UNSHAREABLE_CLASSES",
    "FaultClassDef",
    "class_names",
    "is_structured_class",
    "make_fault",
    "structured_scenario",
]
