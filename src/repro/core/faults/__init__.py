"""Structured fault classes: the taxonomy beyond (return value, errno).

The classic LFI fault — an error return plus an ``errno`` side effect at a
library call site — is one *class* of fault.  This package makes the class
dimension explicit and adds the families the simulated OS can already
almost express:

==================  =====================================================
class               semantics
==================  =====================================================
``errno``           classic error return + errno (handled inline by the
                    gate; never dispatched here)
``partial_write``   ``write``/``fwrite`` performs a *truncated* real write
                    and returns the short count
``short_read``      ``read``/``fread`` performs a truncated real read
``fd_exhaustion``   a descriptor budget counts down; once spent, every
                    ``open``/``socket`` fails with ``EMFILE``
``heap_exhaustion`` an allocation budget counts down; once spent, every
                    ``malloc`` fails with ``ENOMEM``
``clock_skew``      the simulated clock drifts forward a small delta just
                    before the call executes
``clock_jump``      the clock leaps forward a large delta (NTP step,
                    suspend/resume) before the call executes
``net_drop``        the triggered datagram silently vanishes (the sender
                    still sees a full byte count — UDP semantics)
``net_partition``   from the triggered send onward, the destination
                    address is partitioned off: every datagram to or from
                    it is dropped by a delivery hook
``net_reorder``     the triggered datagram is delivered *ahead* of the
                    datagrams already queued at its destination
``crash_point``     the world is killed at the triggered call (optionally
                    after a torn partial write); recovery code then runs
                    against the surviving fs state
==================  =====================================================

Every class is deterministic — parameters are explicit, grids are sorted,
and application depends only on simulated state — so campaigns sweep the
new classes under the exact determinism contract errno faults already have
(serial == pooled == distributed, compiled == reference engine).
"""

from repro.core.faults.apply import apply_fault_on_machine, apply_structured_fault
from repro.core.faults.classes import (
    FAULT_CLASSES,
    MID_RESUMABLE_CLASSES,
    UNSHAREABLE_CLASSES,
    FaultClassDef,
    class_names,
    is_structured_class,
    make_fault,
    structured_scenario,
)
from repro.core.faults.netfx import DropAllHook, PartitionHook

__all__ = [
    "FAULT_CLASSES",
    "MID_RESUMABLE_CLASSES",
    "UNSHAREABLE_CLASSES",
    "DropAllHook",
    "FaultClassDef",
    "PartitionHook",
    "apply_fault_on_machine",
    "apply_structured_fault",
    "class_names",
    "is_structured_class",
    "make_fault",
    "structured_scenario",
]
