"""In-memory model of fault-injection scenarios.

A scenario has two constructs (§4.1):

* **trigger declarations** — create a named trigger instance from a trigger
  class, optionally with initialization parameters;
* **function associations** — link trigger instances to an intercepted
  library function and specify the fault (return value + errno) to inject
  when all referenced triggers agree.

Associating several triggers within one ``<function>`` element means
conjunction; repeating ``<function>`` elements for the same function means
disjunction (§4.2).  Setting the return value to ``"unused"`` declares an
association that exists only so a stateful trigger sees the call (e.g. the
mutex lock/unlock bookkeeping of the WithMutex trigger).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.injection.faults import FaultSpec


@dataclass
class TriggerDecl:
    """Declaration of one named trigger instance."""

    trigger_id: str
    class_name: str
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass
class FunctionPlan:
    """One ``<function>`` association."""

    function: str
    trigger_ids: List[str] = field(default_factory=list)
    #: Fault to inject; ``None`` reproduces the "unused" return/errno case.
    fault: Optional[FaultSpec] = None
    #: Number of original arguments to forward to triggers (the paper's
    #: ``argc`` attribute; informational for the Python reproduction since
    #: argument marshalling is handled by the VM/facade).
    argc: Optional[int] = None

    @property
    def injects(self) -> bool:
        return self.fault is not None


@dataclass
class Scenario:
    """A complete fault-injection scenario."""

    name: str = "scenario"
    triggers: Dict[str, TriggerDecl] = field(default_factory=dict)
    plans: List[FunctionPlan] = field(default_factory=list)
    #: Free-form provenance (e.g. which analyzer finding produced it).
    metadata: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def declare_trigger(
        self, trigger_id: str, class_name: str, params: Optional[Dict[str, Any]] = None
    ) -> TriggerDecl:
        if trigger_id in self.triggers:
            raise ValueError(f"duplicate trigger id {trigger_id!r} in scenario {self.name!r}")
        declaration = TriggerDecl(trigger_id=trigger_id, class_name=class_name, params=dict(params or {}))
        self.triggers[trigger_id] = declaration
        return declaration

    def associate(
        self,
        function: str,
        trigger_ids: Sequence[str],
        fault: Optional[FaultSpec] = None,
        argc: Optional[int] = None,
    ) -> FunctionPlan:
        plan = FunctionPlan(
            function=function, trigger_ids=list(trigger_ids), fault=fault, argc=argc
        )
        self.plans.append(plan)
        return plan

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def functions(self) -> List[str]:
        seen: List[str] = []
        for plan in self.plans:
            if plan.function not in seen:
                seen.append(plan.function)
        return seen

    def plans_for(self, function: str) -> List[FunctionPlan]:
        return [plan for plan in self.plans if plan.function == function]

    def injecting_plans(self) -> List[FunctionPlan]:
        return [plan for plan in self.plans if plan.injects]

    def describe(self) -> str:
        lines = [f"scenario {self.name!r}:"]
        for trigger_id, declaration in self.triggers.items():
            lines.append(f"  trigger {trigger_id} = {declaration.class_name}({declaration.params})")
        for plan in self.plans:
            fault = plan.fault.describe() if plan.fault else "observe only"
            lines.append(f"  {plan.function}: [{', '.join(plan.trigger_ids)}] -> {fault}")
        return "\n".join(lines)


__all__ = ["FunctionPlan", "Scenario", "TriggerDecl"]
