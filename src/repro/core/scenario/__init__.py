"""The fault-injection scenario language (§4)."""

from repro.core.scenario.builder import ScenarioBuilder
from repro.core.scenario.model import FunctionPlan, Scenario, TriggerDecl
from repro.core.scenario.validate import ScenarioValidationError, validate_scenario
from repro.core.scenario.xml_io import parse_scenario_xml, scenario_to_xml

__all__ = [
    "FunctionPlan",
    "Scenario",
    "ScenarioBuilder",
    "ScenarioValidationError",
    "TriggerDecl",
    "parse_scenario_xml",
    "scenario_to_xml",
    "validate_scenario",
]
