"""Fluent programmatic builder for scenarios.

Scenario files can be written by hand in XML, but the paper expects most
scenarios to come from tools (the call-site analyzer) or from short test
scripts; this builder is the Python-side convenience for the latter::

    scenario = (
        ScenarioBuilder("pipe-read")
        .trigger("readTrig", "ReadPipe", low=1024, high=4096)
        .trigger("mutexTrig", "WithMutex")
        .inject("read", ["readTrig", "mutexTrig"], return_value=-1, errno="EINVAL", argc=3)
        .observe("pthread_mutex_lock", ["mutexTrig"])
        .observe("pthread_mutex_unlock", ["mutexTrig"])
        .build()
    )
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Union

from repro.core.injection.faults import FaultSpec
from repro.core.scenario.model import Scenario
from repro.oslib.errno_codes import errno_value
from repro.oslib.libc import LIBC_FUNCTIONS


class ScenarioBuilder:
    """Build :class:`Scenario` objects step by step."""

    def __init__(self, name: str = "scenario") -> None:
        self._scenario = Scenario(name=name)

    def trigger(self, trigger_id: str, class_name: str, **params: Any) -> "ScenarioBuilder":
        self._scenario.declare_trigger(trigger_id, class_name, params)
        return self

    def trigger_with_params(
        self, trigger_id: str, class_name: str, params: Dict[str, Any]
    ) -> "ScenarioBuilder":
        self._scenario.declare_trigger(trigger_id, class_name, params)
        return self

    def inject(
        self,
        function: str,
        trigger_ids: Sequence[str],
        return_value: int,
        errno: Optional[Union[int, str]] = None,
        argc: Optional[int] = None,
    ) -> "ScenarioBuilder":
        """Associate triggers with *function* and inject on agreement."""
        errno_int: Optional[int] = None
        if errno is not None:
            errno_int = errno if isinstance(errno, int) else errno_value(errno)
        if argc is None and function in LIBC_FUNCTIONS:
            argc = LIBC_FUNCTIONS[function].argc
        fault = FaultSpec(return_value=int(return_value), errno=errno_int)
        self._scenario.associate(function, trigger_ids, fault=fault, argc=argc)
        return self

    def inject_fault(
        self,
        function: str,
        trigger_ids: Sequence[str],
        fault: FaultSpec,
        argc: Optional[int] = None,
    ) -> "ScenarioBuilder":
        """Associate triggers with *function* injecting a pre-built fault.

        This is how structured fault classes (``repro.core.faults``) attach:
        the spec already carries its class name and parameter tuple.
        """
        if argc is None and function in LIBC_FUNCTIONS:
            argc = LIBC_FUNCTIONS[function].argc
        self._scenario.associate(function, trigger_ids, fault=fault, argc=argc)
        return self

    def observe(
        self, function: str, trigger_ids: Sequence[str], argc: Optional[int] = None
    ) -> "ScenarioBuilder":
        """Associate triggers with *function* without ever injecting.

        This is the "return=unused" form: the triggers see the call (so they
        can update their state) but the call always passes through.
        """
        if argc is None and function in LIBC_FUNCTIONS:
            argc = LIBC_FUNCTIONS[function].argc
        self._scenario.associate(function, trigger_ids, fault=None, argc=argc)
        return self

    def metadata(self, **values: Any) -> "ScenarioBuilder":
        self._scenario.metadata.update(values)
        return self

    def build(self) -> Scenario:
        return self._scenario


__all__ = ["ScenarioBuilder"]
