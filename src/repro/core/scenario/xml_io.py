"""XML serialization of fault-injection scenarios (§4.1).

The format follows the paper's examples::

    <scenario name="pipe-read">
      <trigger id="readTrig2" class="ReadPipe">
        <args>
          <low>1024</low>
          <high>4096</high>
        </args>
      </trigger>
      <trigger id="mutexTrig" class="WithMutex" />

      <function name="read" argc="3" return="-1" errno="EINVAL">
        <reftrigger ref="readTrig2" />
        <reftrigger ref="mutexTrig" />
      </function>
      <function name="pthread_mutex_lock" return="unused" errno="unused">
        <reftrigger ref="mutexTrig" />
      </function>
    </scenario>

``<args>`` children are converted to a plain dictionary; repeated elements
of the same name become a list (which is how the call-stack trigger receives
several ``<frame>`` specs).
"""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree
from typing import Any, Dict, Optional, Union
from xml.dom import minidom

from repro.core.injection.faults import FaultSpec
from repro.core.scenario.model import FunctionPlan, Scenario, TriggerDecl
from repro.oslib.errno_codes import errno_name


class ScenarioParseError(Exception):
    """Raised when a scenario document is malformed."""


# ----------------------------------------------------------------------
# generic element <-> python conversion for <args>
# ----------------------------------------------------------------------
def _element_to_value(element: ElementTree.Element) -> Union[str, Dict[str, Any]]:
    children = list(element)
    if not children:
        return (element.text or "").strip()
    result: Dict[str, Any] = {}
    for child in children:
        value = _element_to_value(child)
        if child.tag in result:
            existing = result[child.tag]
            if not isinstance(existing, list):
                result[child.tag] = [existing]
            result[child.tag].append(value)
        else:
            result[child.tag] = value
    return result


def _value_to_elements(parent: ElementTree.Element, key: str, value: Any) -> None:
    if isinstance(value, list):
        for item in value:
            _value_to_elements(parent, key, item)
        return
    child = ElementTree.SubElement(parent, key)
    if isinstance(value, dict):
        for sub_key, sub_value in value.items():
            _value_to_elements(child, sub_key, sub_value)
    else:
        child.text = str(value)


def args_to_dict(args_element: Optional[ElementTree.Element]) -> Dict[str, Any]:
    if args_element is None:
        return {}
    value = _element_to_value(args_element)
    if isinstance(value, str):
        return {} if not value else {"value": value}
    return value


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------
def parse_scenario_xml(text: str) -> Scenario:
    """Parse a scenario document into a :class:`Scenario`."""
    try:
        root = ElementTree.fromstring(text)
    except ElementTree.ParseError as error:
        raise ScenarioParseError(f"malformed scenario XML: {error}") from error
    if root.tag != "scenario":
        raise ScenarioParseError(f"expected <scenario> root element, found <{root.tag}>")

    scenario = Scenario(name=root.get("name", "scenario"))
    for trigger_element in root.findall("trigger"):
        trigger_id = trigger_element.get("id")
        class_name = trigger_element.get("class")
        if not trigger_id or not class_name:
            raise ScenarioParseError("<trigger> requires 'id' and 'class' attributes")
        params = args_to_dict(trigger_element.find("args"))
        scenario.declare_trigger(trigger_id, class_name, params)

    for function_element in root.findall("function"):
        name = function_element.get("name")
        if not name:
            raise ScenarioParseError("<function> requires a 'name' attribute")
        return_attr = function_element.get("return", function_element.get("retval", "unused"))
        errno_attr = function_element.get("errno", "unused")
        argc_attr = function_element.get("argc")
        fault: Optional[FaultSpec] = None
        if return_attr is not None and return_attr.strip().lower() != "unused":
            fault = FaultSpec.from_strings(return_attr, errno_attr)
        trigger_ids = []
        for reference in function_element.findall("reftrigger"):
            ref = reference.get("ref")
            if not ref:
                raise ScenarioParseError("<reftrigger> requires a 'ref' attribute")
            if ref not in scenario.triggers:
                raise ScenarioParseError(
                    f"<reftrigger ref={ref!r}> references an undeclared trigger"
                )
            trigger_ids.append(ref)
        scenario.associate(
            name,
            trigger_ids,
            fault=fault,
            argc=int(argc_attr) if argc_attr is not None else None,
        )
    return scenario


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
def scenario_to_xml(scenario: Scenario, pretty: bool = True) -> str:
    """Serialize a :class:`Scenario` back to the XML language."""
    root = ElementTree.Element("scenario", {"name": scenario.name})
    for declaration in scenario.triggers.values():
        trigger_element = ElementTree.SubElement(
            root, "trigger", {"id": declaration.trigger_id, "class": declaration.class_name}
        )
        serializable = {
            key: value
            for key, value in declaration.params.items()
            if isinstance(value, (str, int, float, dict, list))
        }
        if serializable:
            args_element = ElementTree.SubElement(trigger_element, "args")
            for key, value in serializable.items():
                _value_to_elements(args_element, key, value)

    for plan in scenario.plans:
        attributes = {"name": plan.function}
        if plan.argc is not None:
            attributes["argc"] = str(plan.argc)
        if plan.fault is not None:
            attributes["return"] = str(plan.fault.return_value)
            attributes["errno"] = (
                errno_name(plan.fault.errno) if plan.fault.errno is not None else "unused"
            )
        else:
            attributes["return"] = "unused"
            attributes["errno"] = "unused"
        function_element = ElementTree.SubElement(root, "function", attributes)
        for trigger_id in plan.trigger_ids:
            ElementTree.SubElement(function_element, "reftrigger", {"ref": trigger_id})

    raw = ElementTree.tostring(root, encoding="unicode")
    if not pretty:
        return raw
    return minidom.parseString(raw).toprettyxml(indent="  ")


__all__ = ["ScenarioParseError", "args_to_dict", "parse_scenario_xml", "scenario_to_xml"]
