"""XML serialization of fault-injection scenarios (§4.1).

The format follows the paper's examples::

    <scenario name="pipe-read">
      <trigger id="readTrig2" class="ReadPipe">
        <args>
          <low>1024</low>
          <high>4096</high>
        </args>
      </trigger>
      <trigger id="mutexTrig" class="WithMutex" />

      <function name="read" argc="3" return="-1" errno="EINVAL">
        <reftrigger ref="readTrig2" />
        <reftrigger ref="mutexTrig" />
      </function>
      <function name="pthread_mutex_lock" return="unused" errno="unused">
        <reftrigger ref="mutexTrig" />
      </function>
    </scenario>

``<args>`` children are converted to a plain dictionary; repeated elements
of the same name become a list (which is how the call-stack trigger receives
several ``<frame>`` specs).

Round-trip fidelity: hand-written documents stay plain (untyped text values
parse as strings, exactly as the paper's examples read), but documents
*emitted* by :func:`scenario_to_xml` annotate non-string leaf values with a
``type`` attribute (``int``/``float``/``bool``/``null``) and list membership
with a ``many`` attribute, and persist ``scenario.metadata`` in a
``<metadata>`` element — so ``parse_scenario_xml(scenario_to_xml(s))``
reconstructs *s* exactly, including trigger parameter types, metadata, and
errno-only faults (``errno="unused"`` with a concrete return value).
"""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree
from typing import Any, Dict, Optional, Union
from xml.dom import minidom

from repro.core.injection.faults import FaultSpec
from repro.core.scenario.model import FunctionPlan, Scenario, TriggerDecl
from repro.oslib.errno_codes import errno_name


class ScenarioParseError(Exception):
    """Raised when a scenario document is malformed."""


# ----------------------------------------------------------------------
# generic element <-> python conversion for <args>
# ----------------------------------------------------------------------
def _leaf_to_value(element: ElementTree.Element) -> Any:
    """Decode one childless element, honouring its ``type`` annotation."""
    text = (element.text or "").strip()
    declared = element.get("type")
    if declared is None:
        return text  # hand-written documents: plain strings (historical)
    if declared == "str":
        return element.text or ""
    if declared == "int":
        return int(text, 0)
    if declared == "float":
        return float(text)
    if declared == "bool":
        return text == "true"
    if declared == "null":
        return None
    if declared == "dict":
        return {}  # annotated empty mapping (no children to recurse into)
    raise ScenarioParseError(f"unknown value type {declared!r} in <{element.tag}>")


def _element_to_value(element: ElementTree.Element) -> Any:
    children = list(element)
    if not children:
        return _leaf_to_value(element)
    result: Dict[str, Any] = {}
    tuple_keys = set()
    for child in children:
        if child.get("tuple") == "true":
            tuple_keys.add(child.tag)
        if child.get("many") == "empty":
            result[child.tag] = []
            continue
        value = _element_to_value(child)
        if child.tag in result:
            existing = result[child.tag]
            if not isinstance(existing, list):
                result[child.tag] = [existing]
            result[child.tag].append(value)
        elif child.get("many") == "item":
            # Single-element lists survive: the writer marks each member.
            result[child.tag] = [value]
        else:
            result[child.tag] = value
    for key in tuple_keys:
        if isinstance(result.get(key), list):
            result[key] = tuple(result[key])
    return result


def _type_label(value: Any) -> Optional[str]:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if value is None:
        return "null"
    return None


def _value_to_elements(
    parent: ElementTree.Element, key: str, value: Any, in_list: bool = False,
    in_tuple: bool = False,
) -> None:
    if isinstance(value, (list, tuple)):
        if in_list:
            # The repeated-element encoding cannot tell [[a], [b]] from
            # [a, b]; refuse rather than silently flatten.
            raise ValueError(
                f"cannot serialize directly nested list under <{key}>; "
                "wrap inner lists in a dict"
            )
        is_tuple = isinstance(value, tuple)
        if not value:
            attributes = {"many": "empty"}
            if is_tuple:
                attributes["tuple"] = "true"
            ElementTree.SubElement(parent, key, attributes)
            return
        for item in value:
            _value_to_elements(parent, key, item, in_list=True, in_tuple=is_tuple)
        return
    attributes: Dict[str, str] = {}
    if in_list:
        attributes["many"] = "item"
        if in_tuple:
            attributes["tuple"] = "true"
    label = _type_label(value)
    if label is not None:
        attributes["type"] = label
    child = ElementTree.SubElement(parent, key, attributes)
    if isinstance(value, dict):
        if not value:
            child.set("type", "dict")
        for sub_key, sub_value in value.items():
            _value_to_elements(child, sub_key, sub_value)
    elif isinstance(value, str):
        if value != value.strip():
            # Preserve significant whitespace through the pretty-printer.
            child.set("type", "str")
        child.text = value
    elif isinstance(value, bool):
        child.text = "true" if value else "false"
    elif value is not None:
        child.text = repr(value)


def args_to_dict(args_element: Optional[ElementTree.Element]) -> Dict[str, Any]:
    if args_element is None:
        return {}
    value = _element_to_value(args_element)
    if isinstance(value, str):
        return {} if not value else {"value": value}
    return value


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------
def parse_scenario_xml(text: str) -> Scenario:
    """Parse a scenario document into a :class:`Scenario`."""
    try:
        root = ElementTree.fromstring(text)
    except ElementTree.ParseError as error:
        raise ScenarioParseError(f"malformed scenario XML: {error}") from error
    if root.tag != "scenario":
        raise ScenarioParseError(f"expected <scenario> root element, found <{root.tag}>")

    scenario = Scenario(name=root.get("name", "scenario"))
    for trigger_element in root.findall("trigger"):
        trigger_id = trigger_element.get("id")
        class_name = trigger_element.get("class")
        if not trigger_id or not class_name:
            raise ScenarioParseError("<trigger> requires 'id' and 'class' attributes")
        params = args_to_dict(trigger_element.find("args"))
        scenario.declare_trigger(trigger_id, class_name, params)

    for function_element in root.findall("function"):
        name = function_element.get("name")
        if not name:
            raise ScenarioParseError("<function> requires a 'name' attribute")
        return_attr = function_element.get("return", function_element.get("retval", "unused"))
        errno_attr = function_element.get("errno", "unused")
        argc_attr = function_element.get("argc")
        fault: Optional[FaultSpec] = None
        if return_attr is not None and return_attr.strip().lower() != "unused":
            fault = FaultSpec.from_strings(return_attr, errno_attr)
        trigger_ids = []
        for reference in function_element.findall("reftrigger"):
            ref = reference.get("ref")
            if not ref:
                raise ScenarioParseError("<reftrigger> requires a 'ref' attribute")
            if ref not in scenario.triggers:
                raise ScenarioParseError(
                    f"<reftrigger ref={ref!r}> references an undeclared trigger"
                )
            trigger_ids.append(ref)
        scenario.associate(
            name,
            trigger_ids,
            fault=fault,
            argc=int(argc_attr) if argc_attr is not None else None,
        )

    metadata_element = root.find("metadata")
    if metadata_element is not None:
        value = _element_to_value(metadata_element)
        if isinstance(value, dict):
            scenario.metadata.update(value)
    return scenario


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
def scenario_to_xml(scenario: Scenario, pretty: bool = True) -> str:
    """Serialize a :class:`Scenario` back to the XML language."""
    root = ElementTree.Element("scenario", {"name": scenario.name})
    for declaration in scenario.triggers.values():
        trigger_element = ElementTree.SubElement(
            root, "trigger", {"id": declaration.trigger_id, "class": declaration.class_name}
        )
        serializable = {
            key: value
            for key, value in declaration.params.items()
            if value is None or isinstance(value, (str, int, float, dict, list, tuple))
        }
        if serializable:
            args_element = ElementTree.SubElement(trigger_element, "args")
            for key, value in serializable.items():
                _value_to_elements(args_element, key, value)

    for plan in scenario.plans:
        attributes = {"name": plan.function}
        if plan.argc is not None:
            attributes["argc"] = str(plan.argc)
        if plan.fault is not None:
            attributes["return"] = str(plan.fault.return_value)
            attributes["errno"] = (
                errno_name(plan.fault.errno) if plan.fault.errno is not None else "unused"
            )
        else:
            attributes["return"] = "unused"
            attributes["errno"] = "unused"
        function_element = ElementTree.SubElement(root, "function", attributes)
        for trigger_id in plan.trigger_ids:
            ElementTree.SubElement(function_element, "reftrigger", {"ref": trigger_id})

    serializable_metadata = {
        key: value
        for key, value in scenario.metadata.items()
        if value is None or isinstance(value, (str, int, float, dict, list, tuple))
    }
    if serializable_metadata:
        metadata_element = ElementTree.SubElement(root, "metadata")
        for key, value in serializable_metadata.items():
            _value_to_elements(metadata_element, key, value)

    raw = ElementTree.tostring(root, encoding="unicode")
    if not pretty:
        return raw
    return minidom.parseString(raw).toprettyxml(indent="  ")


__all__ = ["ScenarioParseError", "args_to_dict", "parse_scenario_xml", "scenario_to_xml"]
