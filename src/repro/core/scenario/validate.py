"""Structural validation of scenarios before they reach the runtime."""

from __future__ import annotations

from typing import List, Optional

from repro.core.scenario.model import Scenario
from repro.core.triggers.registry import TriggerRegistry, default_registry
from repro.oslib.libc import LIBC_FUNCTIONS


class ScenarioValidationError(Exception):
    """Raised when a scenario cannot possibly run correctly."""

    def __init__(self, problems: List[str]) -> None:
        super().__init__("; ".join(problems))
        self.problems = problems


def validate_scenario(
    scenario: Scenario,
    registry: Optional[TriggerRegistry] = None,
    known_functions: Optional[set] = None,
    strict_functions: bool = False,
) -> List[str]:
    """Validate *scenario*; returns a list of warnings.

    Hard errors (undeclared trigger references, unknown trigger classes,
    plans with no triggers that would inject unconditionally into every
    call without that being explicit) raise :class:`ScenarioValidationError`.
    Unknown library functions are warnings by default because LFI can
    intercept arbitrary libraries; pass ``strict_functions=True`` to make
    them errors.
    """
    registry = registry or default_registry()
    known_functions = known_functions if known_functions is not None else set(LIBC_FUNCTIONS)
    problems: List[str] = []
    warnings: List[str] = []

    if not scenario.plans:
        problems.append("scenario has no <function> associations")

    for trigger_id, declaration in scenario.triggers.items():
        if not registry.known(declaration.class_name):
            problems.append(
                f"trigger {trigger_id!r} uses unknown class {declaration.class_name!r}"
            )

    referenced = set()
    for plan in scenario.plans:
        for trigger_id in plan.trigger_ids:
            referenced.add(trigger_id)
            if trigger_id not in scenario.triggers:
                problems.append(
                    f"function {plan.function!r} references undeclared trigger {trigger_id!r}"
                )
        if plan.function not in known_functions:
            message = f"function {plan.function!r} is not a known library function"
            if strict_functions:
                problems.append(message)
            else:
                warnings.append(message)
        if plan.injects and not plan.trigger_ids:
            warnings.append(
                f"function {plan.function!r} injects unconditionally (no triggers referenced)"
            )

    for trigger_id in scenario.triggers:
        if trigger_id not in referenced:
            warnings.append(f"trigger {trigger_id!r} is declared but never referenced")

    if problems:
        raise ScenarioValidationError(problems)
    return warnings


__all__ = ["ScenarioValidationError", "validate_scenario"]
