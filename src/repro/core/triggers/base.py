"""The Trigger interface (§3.1).

The C++ interface in the paper is::

    class Trigger {
        virtual void Init(xmlNodePtr initData) {}
        virtual bool Eval(const string& libFuncName, ...) = 0;
    }

The Python analog replaces the variadic ``Eval`` with a single
:class:`~repro.core.injection.context.CallContext` argument carrying the
function name, the original call arguments and lazy access to the stack and
program state.  ``init`` receives the parameters from the scenario's
``<args>`` element, already converted to plain Python values.

Triggers may keep state across calls (the paper's mutex-tracking example
does), so the runtime also calls :meth:`Trigger.reset` between test runs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Optional, Type

from repro.core.injection.context import CallContext


class TriggerError(Exception):
    """Raised for malformed trigger parameters or unknown trigger classes."""


class Trigger(ABC):
    """Base class for all triggers."""

    #: Name under which the trigger is registered (set by ``declare_trigger``).
    trigger_name: str = ""

    #: True for triggers whose ``init`` accepts a ``seed`` parameter.  When a
    #: campaign threads a per-run seed (``TestCampaign.run(seed=...)``), the
    #: injection runtime derives a seed for each such trigger that was
    #: declared *without* an explicit one, making otherwise-unseeded
    #: stochastic triggers reproducible and schedule-independent.
    consumes_run_seed: bool = False

    def init(self, params: Optional[Dict[str, Any]] = None) -> None:
        """Receive scenario parameters before the first ``eval`` call.

        The default implementation accepts no parameters; triggers that are
        parametrizable override this.  Called lazily, right before the first
        evaluation (§4.3).
        """

    @abstractmethod
    def eval(self, ctx: CallContext) -> bool:
        """Return True when a fault should be injected for this call."""

    def reset(self) -> None:
        """Clear accumulated state between test runs (optional)."""

    # -- bookkeeping helpers -------------------------------------------
    def describe(self) -> str:
        return self.trigger_name or type(self).__name__


def declare_trigger(name: Optional[str] = None):
    """Class decorator mirroring the paper's ``DECLARE_TRIGGER`` macro.

    Registers the class in the default registry under *name* (or the class
    name) so scenario files can reference it directly::

        @declare_trigger("ReadPipe")
        class ReadPipeTrigger(Trigger):
            ...
    """

    def decorate(cls: Type[Trigger]) -> Type[Trigger]:
        from repro.core.triggers.registry import default_registry

        trigger_name = name or cls.__name__
        cls.trigger_name = trigger_name
        default_registry().register(trigger_name, cls)
        return cls

    return decorate


__all__ = ["Trigger", "TriggerError", "declare_trigger"]
