"""Call stack-based trigger (§3.2).

Injects when the current call stack matches a user-defined set of frames.
Frames can be identified by module (object file) name, offset within the
binary, file/line pairs, function names, or combinations thereof — the same
identification options the paper lists, DWARF-style file/line included.

This is the trigger the call-site analyzer emits: each generated scenario
carries one frame spec naming the target module and the call-site offset, so
the injection happens exactly at the suspicious site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.common.frames import StackFrame
from repro.core.injection.context import CallContext
from repro.core.triggers.base import Trigger, TriggerError, declare_trigger


@dataclass(frozen=True)
class FrameSpec:
    """A partial description of one stack frame; unset fields match anything."""

    module: Optional[str] = None
    function: Optional[str] = None
    offset: Optional[int] = None
    file: Optional[str] = None
    line: Optional[int] = None

    def matches(self, frame: StackFrame) -> bool:
        if self.module is not None and self.module != frame.module:
            return False
        if self.function is not None and self.function != frame.function:
            return False
        if self.offset is not None and self.offset != frame.offset:
            return False
        if self.file is not None and self.file != frame.file:
            return False
        if self.line is not None and self.line != frame.line:
            return False
        return True

    @classmethod
    def from_params(cls, raw: Dict[str, Any]) -> "FrameSpec":
        def _maybe_int(value: Any) -> Optional[int]:
            if value is None or value == "":
                return None
            if isinstance(value, int):
                return value
            return int(str(value), 0)

        return cls(
            module=raw.get("module") or None,
            function=raw.get("function") or None,
            offset=_maybe_int(raw.get("offset")),
            file=raw.get("file") or None,
            line=_maybe_int(raw.get("line")),
        )


@declare_trigger("CallStackTrigger")
class CallStackTrigger(Trigger):
    """Match the caller's stack against a set of frame specifications.

    ``mode`` selects how specs are applied:

    * ``"contains"`` (default) — every spec must match *some* frame anywhere
      in the stack ("part of the stack matches the user-defined frames");
    * ``"top"`` — the innermost frame must match the first spec, the next
      frame the second spec, and so on (an exact prefix match).
    """

    def __init__(self, frames: Optional[Sequence[FrameSpec]] = None, mode: str = "contains") -> None:
        self.frames: List[FrameSpec] = list(frames or [])
        self.mode = mode
        self.evaluations = 0
        self.matches = 0

    def init(self, params: Optional[Dict[str, Any]] = None) -> None:
        params = params or {}
        raw_frames = params.get("frame", params.get("frames", []))
        if isinstance(raw_frames, dict):
            raw_frames = [raw_frames]
        parsed: List[FrameSpec] = []
        for raw in raw_frames:
            if isinstance(raw, FrameSpec):
                parsed.append(raw)
            elif isinstance(raw, dict):
                parsed.append(FrameSpec.from_params(raw))
            else:
                raise TriggerError(f"cannot interpret frame spec {raw!r}")
        if parsed:
            self.frames = parsed
        self.mode = str(params.get("mode", self.mode))
        if self.mode not in ("contains", "top"):
            raise TriggerError(f"unknown call-stack match mode {self.mode!r}")
        if not self.frames:
            raise TriggerError("CallStackTrigger requires at least one frame spec")

    # ------------------------------------------------------------------
    def eval(self, ctx: CallContext) -> bool:
        self.evaluations += 1
        stack = ctx.stack
        if not stack:
            return False
        if self.mode == "top":
            if len(stack) < len(self.frames):
                return False
            matched = all(spec.matches(frame) for spec, frame in zip(self.frames, stack))
        else:
            matched = all(self._spec_in_stack(spec, stack) for spec in self.frames)
        if matched:
            self.matches += 1
        return matched

    @staticmethod
    def _spec_in_stack(spec: FrameSpec, stack: Iterable[StackFrame]) -> bool:
        return any(spec.matches(frame) for frame in stack)

    def reset(self) -> None:
        self.evaluations = 0
        self.matches = 0


__all__ = ["CallStackTrigger", "FrameSpec"]
