"""Trigger composition (§4.2) with short-circuit evaluation (§4.3).

Within one ``<function>`` element, multiple ``<reftrigger>`` references form
a **conjunction**: all triggers must agree before a fault is injected, and
evaluation stops at the first trigger that says no.  Multiple ``<function>``
elements for the same library function form a **disjunction**.  Negation
simply inverts a trigger's answer.  These three operators compose into
arbitrary combinations, which is what makes stock triggers reusable.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.core.injection.context import CallContext
from repro.core.triggers.base import Trigger, TriggerError, declare_trigger


class _CompositeTrigger(Trigger):
    """Common plumbing for conjunction/disjunction."""

    def __init__(self, children: Optional[Sequence[Trigger]] = None) -> None:
        self.children: List[Trigger] = list(children or [])
        #: Number of child evaluations actually performed (short-circuiting
        #: makes this smaller than len(children) * calls).
        self.child_evaluations = 0

    def init(self, params: Optional[Dict[str, Any]] = None) -> None:
        params = params or {}
        children = params.get("children")
        if children is not None:
            if not all(isinstance(child, Trigger) for child in children):
                raise TriggerError("composite trigger children must be Trigger instances")
            self.children = list(children)
        if not self.children:
            raise TriggerError(f"{type(self).__name__} requires at least one child trigger")

    def reset(self) -> None:
        self.child_evaluations = 0
        for child in self.children:
            child.reset()


@declare_trigger("ConjunctionTrigger")
class ConjunctionTrigger(_CompositeTrigger):
    """All children must return True; evaluation stops at the first False."""

    def eval(self, ctx: CallContext) -> bool:
        for child in self.children:
            self.child_evaluations += 1
            if not child.eval(ctx):
                return False
        return True


@declare_trigger("DisjunctionTrigger")
class DisjunctionTrigger(_CompositeTrigger):
    """Any child returning True fires; evaluation stops at the first True."""

    def eval(self, ctx: CallContext) -> bool:
        for child in self.children:
            self.child_evaluations += 1
            if child.eval(ctx):
                return True
        return False


@declare_trigger("NegationTrigger")
class NegationTrigger(Trigger):
    """Invert the decision of the wrapped trigger."""

    def __init__(self, inner: Optional[Trigger] = None) -> None:
        self.inner = inner

    def init(self, params: Optional[Dict[str, Any]] = None) -> None:
        params = params or {}
        inner = params.get("inner", params.get("child"))
        if inner is not None:
            if not isinstance(inner, Trigger):
                raise TriggerError("NegationTrigger 'inner' must be a Trigger instance")
            self.inner = inner
        if self.inner is None:
            raise TriggerError("NegationTrigger requires an inner trigger")

    def eval(self, ctx: CallContext) -> bool:
        assert self.inner is not None
        return not self.inner.eval(ctx)

    def reset(self) -> None:
        if self.inner is not None:
            self.inner.reset()


def conjunction(triggers: Iterable[Trigger]) -> Trigger:
    """Collapse an iterable of triggers into a single decision point.

    A single trigger is returned unchanged, so the common case (one
    ``<reftrigger>`` per function) costs nothing extra per call.
    """
    items = list(triggers)
    if len(items) == 1:
        return items[0]
    composite = ConjunctionTrigger(items)
    return composite


__all__ = ["ConjunctionTrigger", "DisjunctionTrigger", "NegationTrigger", "conjunction"]
