"""Custom triggers used as running examples in the paper.

* :class:`ReadPipeTrigger` — parametrized version of the pipe-read example
  of §3.1/§4.1: fire for ``read`` calls whose descriptor is a pipe and whose
  requested size falls within ``[low, high]``.
* :class:`WithMutexTrigger` — fire for any call made while the calling
  thread holds a POSIX mutex; tracks ``pthread_mutex_lock``/``unlock``.
* :class:`ReadPipe1K4KwithMutexTrigger` — the exact hard-coded composite
  sketched in §3.1 (pipe, 1 KB-4 KB, mutex held), kept for fidelity even
  though composition of the two triggers above is the recommended spelling.
* :class:`CloseAfterMutexUnlockTrigger` — the parametrized trigger built in
  §7.1 step 3 for the MySQL double-unlock bug: inject into ``close`` calls
  that happen within a configurable distance of the last mutex unlock.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.injection.context import CallContext
from repro.core.triggers.base import Trigger, TriggerError, declare_trigger


def _descriptor_is_pipe(ctx: CallContext, fd: Any) -> bool:
    """Check the descriptor type with fstat, as the paper's trigger does."""
    if ctx.os is None or not isinstance(fd, int):
        return False
    try:
        stat = ctx.os.fs.fstat(fd)
    except Exception:  # genuine EBADF and friends simply mean "not a pipe"
        return False
    return stat.is_fifo()


@declare_trigger("ReadPipe")
class ReadPipeTrigger(Trigger):
    """Fire for ``read`` calls on pipes requesting between low and high bytes."""

    def __init__(self, low: int = 1024, high: int = 4096) -> None:
        self.low = low
        self.high = high

    def init(self, params: Optional[Dict[str, Any]] = None) -> None:
        params = params or {}
        self.low = int(params.get("low", self.low))
        self.high = int(params.get("high", self.high))
        if self.low > self.high:
            raise TriggerError(f"ReadPipe low ({self.low}) must not exceed high ({self.high})")

    def eval(self, ctx: CallContext) -> bool:
        if ctx.function != "read":
            return False
        fd = ctx.arg(0)
        size = ctx.arg(2)
        if not isinstance(size, int) or not self.low <= size <= self.high:
            return False
        return _descriptor_is_pipe(ctx, fd)


@declare_trigger("WithMutex")
class WithMutexTrigger(Trigger):
    """Fire for any call made while the caller holds at least one mutex.

    The trigger is stateful: it must also be associated (with ``return`` set
    to "unused") with ``pthread_mutex_lock`` and ``pthread_mutex_unlock`` so
    it can maintain the lock count, exactly as in the paper's example
    scenario.
    """

    def __init__(self) -> None:
        self._lock_count = 0

    def eval(self, ctx: CallContext) -> bool:
        if ctx.function == "pthread_mutex_lock":
            self._lock_count += 1
            return False
        if ctx.function == "pthread_mutex_unlock":
            if self._lock_count > 0:
                self._lock_count -= 1
            return False
        return self._lock_count > 0

    def reset(self) -> None:
        self._lock_count = 0

    @property
    def lock_count(self) -> int:
        return self._lock_count


@declare_trigger("ReadPipe1K4KwithMutex")
class ReadPipe1K4KwithMutexTrigger(Trigger):
    """The hard-coded example trigger from §3.1 (1 KB-4 KB pipe read + mutex)."""

    def __init__(self) -> None:
        self._lock_count = 0

    def eval(self, ctx: CallContext) -> bool:
        if ctx.function == "pthread_mutex_lock":
            self._lock_count += 1
            return False
        if ctx.function == "pthread_mutex_unlock":
            if self._lock_count > 0:
                self._lock_count -= 1
            return False
        if ctx.function != "read":
            return False
        if self._lock_count <= 0:
            return False
        size = ctx.arg(2)
        if not isinstance(size, int) or not 1024 <= size <= 4096:
            return False
        return _descriptor_is_pipe(ctx, ctx.arg(0))

    def reset(self) -> None:
        self._lock_count = 0


@declare_trigger("CloseAfterMutexUnlock")
class CloseAfterMutexUnlockTrigger(Trigger):
    """Inject into ``close`` calls issued shortly after a mutex unlock.

    ``distance`` bounds how far the ``close`` may be from the most recent
    ``pthread_mutex_unlock``: it is measured in intercepted library calls
    (and additionally in source lines when both call sites carry line
    information), which reproduces the "maximum distance in lines of code"
    parametrization of §7.1 and yields the 100%-precision scenario of
    Table 2.
    """

    def __init__(self, distance: int = 2, target: str = "close") -> None:
        self.distance = distance
        self.target = target
        self._last_unlock_index: Optional[int] = None
        self._last_unlock_line: Optional[int] = None
        self._last_unlock_file: str = ""

    def init(self, params: Optional[Dict[str, Any]] = None) -> None:
        params = params or {}
        self.distance = int(params.get("distance", self.distance))
        self.target = str(params.get("target", self.target))
        if self.distance < 0:
            raise TriggerError(f"distance must be >= 0, got {self.distance}")

    def eval(self, ctx: CallContext) -> bool:
        if ctx.function == "pthread_mutex_unlock":
            self._last_unlock_index = ctx.global_index
            source = ctx.source
            self._last_unlock_file = getattr(source, "file", "") if source else ""
            self._last_unlock_line = getattr(source, "line", None) if source else None
            return False
        if ctx.function != self.target:
            return False
        if self._last_unlock_index is None:
            return False
        call_distance = ctx.global_index - self._last_unlock_index
        if call_distance <= self.distance:
            return True
        source = ctx.source
        if (
            source is not None
            and self._last_unlock_line is not None
            and getattr(source, "file", "") == self._last_unlock_file
        ):
            line_distance = abs(getattr(source, "line", 0) - self._last_unlock_line)
            return line_distance <= self.distance
        return False

    def reset(self) -> None:
        self._last_unlock_index = None
        self._last_unlock_line = None
        self._last_unlock_file = ""


@declare_trigger("ArgumentEquals")
class ArgumentEqualsTrigger(Trigger):
    """Fire when a positional argument of the intercepted call equals a value.

    This is the shape of the paper's MySQL overhead trigger 1 ("inject when
    the ``cmd`` argument is ``F_GETLK``"): purely argument-based, no state.
    """

    def __init__(self, index: int = 0, value: Any = 0) -> None:
        self.index = index
        self.value = value

    def init(self, params: Optional[Dict[str, Any]] = None) -> None:
        params = params or {}
        self.index = int(params.get("index", self.index))
        if "value" in params:
            raw = params["value"]
            if isinstance(raw, str):
                try:
                    self.value = int(raw, 0)
                except ValueError:
                    self.value = raw
            else:
                self.value = raw
        if self.index < 0:
            raise TriggerError(f"argument index must be >= 0, got {self.index}")

    def eval(self, ctx: CallContext) -> bool:
        return ctx.arg(self.index, default=None) == self.value


__all__ = [
    "ArgumentEqualsTrigger",
    "CloseAfterMutexUnlockTrigger",
    "ReadPipe1K4KwithMutexTrigger",
    "ReadPipeTrigger",
    "WithMutexTrigger",
]
