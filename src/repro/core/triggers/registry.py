"""Trigger registry (the Registry-pattern piece of §6).

The paper wants ``Class.forName``-like behaviour: drop a trigger class into
a known location and reference it from scenarios by class name.  Here the
registry maps names to classes; ``declare_trigger`` performs the automatic
registration that the C++ static-initializer trick performs in LFI.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Type

from repro.core.triggers.base import Trigger, TriggerError


class TriggerRegistry:
    """Maps trigger class names to classes and instantiates them."""

    def __init__(self) -> None:
        self._classes: Dict[str, Type[Trigger]] = {}

    def register(self, name: str, cls: Type[Trigger]) -> None:
        if not issubclass(cls, Trigger):
            raise TriggerError(f"{cls!r} does not implement the Trigger interface")
        self._classes[name] = cls

    def unregister(self, name: str) -> None:
        self._classes.pop(name, None)

    def known(self, name: str) -> bool:
        return name in self._classes

    def names(self) -> list:
        return sorted(self._classes)

    def lookup(self, name: str) -> Type[Trigger]:
        cls = self._classes.get(name)
        if cls is None:
            raise TriggerError(
                f"unknown trigger class {name!r} (registered: {', '.join(self.names()) or 'none'})"
            )
        return cls

    def create(self, name: str, params: Optional[Dict[str, Any]] = None) -> Trigger:
        """Instantiate and initialize a trigger by class name."""
        instance = self.lookup(name)()
        instance.init(params or {})
        return instance


_DEFAULT_REGISTRY: Optional[TriggerRegistry] = None


def default_registry() -> TriggerRegistry:
    """The process-wide registry used by ``declare_trigger`` and scenarios."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = TriggerRegistry()
    return _DEFAULT_REGISTRY


def ensure_stock_triggers_registered() -> TriggerRegistry:
    """Import the stock/custom trigger modules so their classes register."""
    # Imports are intentionally local: importing the modules runs their
    # ``declare_trigger`` decorators, which is all that is needed.
    from repro.core.triggers import (  # noqa: F401  (imported for side effects)
        callcount,
        callstack,
        composite,
        custom,
        distributed,
        random_trigger,
        singleton,
        state,
    )

    return default_registry()


__all__ = ["TriggerRegistry", "default_registry", "ensure_stock_triggers_registered"]
