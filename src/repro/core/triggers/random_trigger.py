"""Random trigger (§3.2).

Injects with a configurable probability.  The paper uses it for the MySQL
random-injection campaign (1,000 tests, 35 distinct crashes) and as the
loss model for the PBFT network-degradation study (Figure 3).  A seed makes
experiments reproducible.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional

from repro.core.injection.context import CallContext
from repro.core.triggers.base import Trigger, TriggerError, declare_trigger


@declare_trigger("RandomTrigger")
class RandomTrigger(Trigger):
    """Inject with probability ``probability`` on every evaluation."""

    consumes_run_seed = True

    def __init__(self) -> None:
        self.probability = 0.0
        self._rng = random.Random(0)
        self._seed: Optional[int] = None
        self.evaluations = 0
        self.fired = 0

    def init(self, params: Optional[Dict[str, Any]] = None) -> None:
        params = params or {}
        self.probability = float(params.get("probability", params.get("p", 0.0)))
        if not 0.0 <= self.probability <= 1.0:
            raise TriggerError(
                f"RandomTrigger probability must be in [0, 1], got {self.probability}"
            )
        seed = params.get("seed")
        self._seed = int(seed) if seed is not None else None
        self._rng = random.Random(self._seed)

    def eval(self, ctx: CallContext) -> bool:
        self.evaluations += 1
        if self.probability <= 0.0:
            return False
        fire = self._rng.random() < self.probability
        if fire:
            self.fired += 1
        return fire

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
        self.evaluations = 0
        self.fired = 0


__all__ = ["RandomTrigger"]
