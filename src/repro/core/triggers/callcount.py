"""Call count-based trigger (§3.2).

Fires exactly on the *n*-th call to the associated function (or on every
*k*-th call when ``every`` is given).  Besides its obvious use, the paper
notes this trigger is what makes observed failures replayable in programs
driven deterministically by their environment — the replay generator
(:mod:`repro.core.injection.replay`) emits exactly this trigger.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.injection.context import CallContext
from repro.core.triggers.base import Trigger, TriggerError, declare_trigger


@declare_trigger("CallCountTrigger")
class CallCountTrigger(Trigger):
    """Inject on the n-th call (and optionally periodically afterwards)."""

    def __init__(self) -> None:
        self.nth = 1
        self.every: Optional[int] = None
        self._observed = 0

    def init(self, params: Optional[Dict[str, Any]] = None) -> None:
        params = params or {}
        self.nth = int(params.get("nth", params.get("count", 1)))
        every = params.get("every")
        self.every = int(every) if every is not None else None
        if self.nth < 1:
            raise TriggerError(f"CallCountTrigger nth must be >= 1, got {self.nth}")
        if self.every is not None and self.every < 1:
            raise TriggerError(f"CallCountTrigger every must be >= 1, got {self.every}")

    def eval(self, ctx: CallContext) -> bool:
        # Count the calls this trigger actually observes rather than relying
        # on the gate's per-function counter: the same instance may be
        # associated with several functions (a disjunction), and the paper's
        # semantics are "the n-th call this trigger sees".
        self._observed += 1
        if self.every is not None:
            return self._observed >= self.nth and (self._observed - self.nth) % self.every == 0
        return self._observed == self.nth

    def reset(self) -> None:
        self._observed = 0


__all__ = ["CallCountTrigger"]
