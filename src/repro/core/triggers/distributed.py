"""Distributed trigger (§3.2).

For distributed systems (PBFT in the paper), a central controller receives
information about intercepted calls — function name, arguments, node — and
decides, based on its *global* view, whether the remote trigger should fire.
To keep runtime overhead low, distributed triggers are meant to be composed
with node-local triggers so the controller is consulted only when the
decision cannot be made locally (§3.2); the conjunction short-circuiting in
:mod:`repro.core.triggers.composite` provides exactly that.

The controller object lives in :mod:`repro.distributed.central_controller`;
scenario files reference it by name through the runtime's shared-object
table, and programmatic users simply pass the instance in ``params``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Protocol

from repro.core.injection.context import CallContext
from repro.core.triggers.base import Trigger, TriggerError, declare_trigger


class InjectionController(Protocol):
    """What the distributed trigger needs from the central controller."""

    def should_inject(
        self, node: str, function: str, args: tuple, ctx: CallContext
    ) -> bool:  # pragma: no cover - protocol
        ...


@declare_trigger("DistributedTrigger")
class DistributedTrigger(Trigger):
    """Delegate the injection decision to a central controller."""

    def __init__(self, controller: Optional[InjectionController] = None) -> None:
        self.controller = controller
        self.consultations = 0

    def init(self, params: Optional[Dict[str, Any]] = None) -> None:
        params = params or {}
        controller = params.get("controller", self.controller)
        if controller is None:
            raise TriggerError("DistributedTrigger requires a 'controller' parameter")
        self.controller = controller

    def attach(self, controller: InjectionController) -> None:
        """Late-bind the controller (used when scenarios are built from XML)."""
        self.controller = controller

    def eval(self, ctx: CallContext) -> bool:
        if self.controller is None:
            return False
        self.consultations += 1
        return self.controller.should_inject(ctx.node, ctx.function, ctx.args, ctx)

    def reset(self) -> None:
        self.consultations = 0


__all__ = ["DistributedTrigger", "InjectionController"]
