"""Singleton trigger (§3.2).

Allows a fault to be injected at most once (or ``max_injections`` times).
Typically composed at the *end* of a conjunction: thanks to short-circuit
evaluation (§4.3) it is only consulted when every other trigger already
agreed, so it limits the number of *injections*, not evaluations.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.injection.context import CallContext
from repro.core.triggers.base import Trigger, TriggerError, declare_trigger


@declare_trigger("SingletonTrigger")
class SingletonTrigger(Trigger):
    """Return True at most ``max_injections`` times."""

    def __init__(self) -> None:
        self.max_injections = 1
        self._granted = 0

    def init(self, params: Optional[Dict[str, Any]] = None) -> None:
        params = params or {}
        self.max_injections = int(params.get("max", params.get("max_injections", 1)))
        if self.max_injections < 1:
            raise TriggerError(
                f"SingletonTrigger max_injections must be >= 1, got {self.max_injections}"
            )

    def eval(self, ctx: CallContext) -> bool:
        if self._granted >= self.max_injections:
            return False
        self._granted += 1
        return True

    def reset(self) -> None:
        self._granted = 0

    @property
    def injections_granted(self) -> int:
        return self._granted


__all__ = ["SingletonTrigger"]
