"""Program state-based trigger (§3.2).

Injects when a relationship between program variables holds, e.g.
``numConnections == maxConnections``.  The stock trigger supports comparing
a variable against a literal or against another variable with the usual
relational operators; the paper's Apache/MySQL specializations (checking
``thread_count`` or a request's ``method_number``) are thin subclasses or
parametrizations of this trigger.

Variables are read through :meth:`CallContext.read_state`, which the VM
wires to the binary's global symbols and the Python-level servers wire to
their exported state dictionaries.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.core.injection.context import CallContext
from repro.core.triggers.base import Trigger, TriggerError, declare_trigger

_OPERATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@declare_trigger("ProgramStateTrigger")
class ProgramStateTrigger(Trigger):
    """Compare a program variable against a literal or another variable."""

    def __init__(
        self,
        variable: str = "",
        op: str = "==",
        value: Optional[Any] = None,
        other_variable: Optional[str] = None,
    ) -> None:
        self.variable = variable
        self.op = op
        self.value = value
        self.other_variable = other_variable

    def init(self, params: Optional[Dict[str, Any]] = None) -> None:
        params = params or {}
        self.variable = str(params.get("variable", self.variable))
        self.op = str(params.get("op", params.get("operator", self.op)))
        if "value" in params:
            self.value = _coerce(params["value"])
        if "other" in params or "other_variable" in params:
            self.other_variable = str(params.get("other", params.get("other_variable")))
        if not self.variable:
            raise TriggerError("ProgramStateTrigger requires a 'variable' parameter")
        if self.op not in _OPERATORS:
            raise TriggerError(f"unknown operator {self.op!r}")
        if self.value is None and self.other_variable is None:
            raise TriggerError("ProgramStateTrigger requires 'value' or 'other_variable'")

    def eval(self, ctx: CallContext) -> bool:
        left = ctx.read_state(self.variable)
        if left is None:
            return False
        if self.other_variable is not None:
            right = ctx.read_state(self.other_variable)
            if right is None:
                return False
        else:
            right = self.value
        try:
            return _OPERATORS[self.op](left, right)
        except TypeError:
            return False


def _coerce(value: Any) -> Any:
    """Convert scenario-file strings into ints where possible."""
    if isinstance(value, str):
        try:
            return int(value, 0)
        except ValueError:
            return value
    return value


__all__ = ["ProgramStateTrigger"]
