"""Fault-injection triggers (§3).

A trigger decides, for every intercepted library call it is associated
with, whether a fault should be injected.  This package provides:

* the :class:`~repro.core.triggers.base.Trigger` interface and the
  ``declare_trigger`` registration decorator (the ``DECLARE_TRIGGER`` macro
  analog),
* the registry that scenario files reference triggers through by class name,
* the six stock triggers from §3.2 (call stack, program state, call count,
  singleton, random, distributed),
* composition (conjunction / disjunction / negation) with short-circuit
  evaluation (§4.2-§4.3), and
* the custom triggers used as running examples in the paper (ReadPipe,
  WithMutex, ReadPipe1K4KwithMutex, close-after-unlock).
"""

from repro.core.triggers.base import Trigger, TriggerError, declare_trigger
from repro.core.triggers.registry import TriggerRegistry, default_registry
from repro.core.triggers.callcount import CallCountTrigger
from repro.core.triggers.callstack import CallStackTrigger, FrameSpec
from repro.core.triggers.composite import (
    ConjunctionTrigger,
    DisjunctionTrigger,
    NegationTrigger,
)
from repro.core.triggers.distributed import DistributedTrigger
from repro.core.triggers.random_trigger import RandomTrigger
from repro.core.triggers.singleton import SingletonTrigger
from repro.core.triggers.state import ProgramStateTrigger
from repro.core.triggers.custom import (
    CloseAfterMutexUnlockTrigger,
    ReadPipe1K4KwithMutexTrigger,
    ReadPipeTrigger,
    WithMutexTrigger,
)

__all__ = [
    "CallCountTrigger",
    "CallStackTrigger",
    "CloseAfterMutexUnlockTrigger",
    "ConjunctionTrigger",
    "DisjunctionTrigger",
    "DistributedTrigger",
    "FrameSpec",
    "NegationTrigger",
    "ProgramStateTrigger",
    "RandomTrigger",
    "ReadPipe1K4KwithMutexTrigger",
    "ReadPipeTrigger",
    "SingletonTrigger",
    "Trigger",
    "TriggerError",
    "TriggerRegistry",
    "WithMutexTrigger",
    "declare_trigger",
    "default_registry",
]
