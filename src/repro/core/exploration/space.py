"""Enumeration of the injectable fault space.

The fault space of a target is the cross product the paper's evaluation
sweeps implicitly: every classified call site of every profiled library
function, crossed with every (error return value, errno) pair the library's
fault profile declares for that function.  Each element is a
:class:`FaultPoint` — a value object with a **stable key** that names the
point independently of enumeration order, which is what lets the result
store recognise completed work across process lifetimes.

Enumeration order is deterministic: classifications are visited in sorted
function order, sites in address order, faults in profile order.  The
:func:`priority_order` pass then reorders points the way a tester wants to
spend a bounded budget (§5): completely unchecked sites before partially
checked ones before checked ones, and — within each band — the *first*
occurrence of each novel (function, return value, errno) fault class before
repeat occurrences, so every distinct error behaviour is probed early.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.analysis.classifier import ClassifiedSite, SiteClassification
from repro.core.analysis.scenario_gen import fault_candidates, scenario_for_fault
from repro.core.profiler.fault_profile import FaultProfile
from repro.core.scenario.model import Scenario
from repro.oslib.errno_codes import errno_name

#: Priority rank of each Algorithm 1 category (lower runs earlier).
#: Structured fault classes probe *behavioural* families rather than
#: return-check categories; they run after the errno bands.
CATEGORY_RANK: Dict[str, int] = {"unchecked": 0, "partial": 1, "checked": 2, "structured": 3}


@dataclass
class FaultPoint:
    """One injectable (call site x error return x errno) combination."""

    binary: str
    function: str
    address: int
    category: str  # "unchecked" | "partial" | "checked"
    return_value: int
    errno: Optional[int]
    #: Index of this fault within the function profile's candidate list
    #: (stable tiebreaker for sites with several faults).
    fault_index: int = 0
    site: Optional[ClassifiedSite] = None

    @property
    def errno_label(self) -> str:
        return errno_name(self.errno) if self.errno is not None else "none"

    @property
    def key(self) -> str:
        """Stable identity of this point (result-store / resume key)."""
        return (
            f"{self.binary}:{self.function}@{self.address:#x}"
            f":rv={self.return_value}:errno={self.errno_label}"
        )

    @property
    def fault_class(self) -> Tuple[str, int, Optional[int]]:
        """Equivalence class used for novelty ordering and sampling."""
        return (self.function, self.return_value, self.errno)

    def scenario(self, once: bool = True) -> Scenario:
        """Build the injection scenario exercising exactly this point."""
        if self.site is None:
            raise ValueError(f"fault point {self.key} carries no classified site")
        return scenario_for_fault(
            self.binary,
            self.site,
            self.function,
            return_value=self.return_value,
            errno=self.errno,
            name=f"explore-{self.function}-{self.address:#x}-rv{self.return_value}"
            f"-{self.errno_label}",
            once=once,
        )

    def describe(self) -> str:
        return f"{self.key} [{self.category}]"


@dataclass
class StructuredFaultPoint(FaultPoint):
    """One injectable structured fault: (class x params x occurrence).

    Structured classes are function-level (triggered by call count), so the
    ``address``/``site`` dimensions of the errno space collapse; the new
    dimensions are the class name, its parameter set, and which occurrence
    of the call gets hit.  Keys deliberately use a distinct shape from
    errno-point keys, so old stores resume cleanly next to new sweeps.
    """

    klass: str = "errno"
    params: Tuple[Tuple[str, Any], ...] = ()
    #: Which call to the target function is hit (ramps encode their arming
    #: point in ``params["budget"]`` instead and keep occurrence at 1).
    occurrence: int = 1

    @property
    def key(self) -> str:
        param_str = ",".join(f"{key}={value}" for key, value in self.params) or "-"
        return f"{self.binary}:{self.function}#{self.occurrence}:{self.klass}[{param_str}]"

    @property
    def fault_class(self) -> Tuple[Any, ...]:
        return (self.function, self.klass, self.params)

    def scenario(self, once: bool = True) -> Scenario:
        from repro.core.faults import structured_scenario

        param_str = ",".join(f"{key}={value}" for key, value in self.params) or "-"
        return structured_scenario(
            self.klass,
            self.function,
            nth=self.occurrence,
            params=dict(self.params),
            name=f"explore-{self.klass}-{self.function}-n{self.occurrence}-{param_str}",
        )


def enumerate_structured_space(
    binary: str,
    classes: Iterable[str],
    functions: Optional[Iterable[str]] = None,
    occurrences: int = 2,
) -> List[FaultPoint]:
    """Enumerate the fault points of the requested structured classes.

    Deterministic: classes in sorted order, functions in registry order,
    grid entries in registry order, occurrences ascending.  ``functions``
    (when given) filters the class's target functions, mirroring the
    ``functions`` filter of the errno space.
    """
    from repro.core.faults import FAULT_CLASSES, make_fault

    wanted = set(functions) if functions is not None else None
    points: List[FaultPoint] = []
    for klass in sorted(set(classes)):
        definition = FAULT_CLASSES.get(klass)
        if definition is None:
            raise ValueError(f"unknown fault class {klass!r}")
        for function in definition.functions:
            if wanted is not None and function not in wanted:
                continue
            for grid_index, params in enumerate(definition.grid):
                fault = make_fault(klass, dict(params))
                nths = (1,) if definition.ramp else tuple(range(1, max(1, occurrences) + 1))
                for nth in nths:
                    points.append(
                        StructuredFaultPoint(
                            binary=binary,
                            function=function,
                            address=0,
                            category="structured",
                            return_value=fault.return_value,
                            errno=fault.errno,
                            fault_index=grid_index,
                            site=None,
                            klass=klass,
                            params=params,
                            occurrence=nth,
                        )
                    )
    return points


def enumerate_fault_space(
    classifications: Iterable[SiteClassification],
    profile: FaultProfile,
    include_partial: bool = True,
    include_checked: bool = False,
) -> List[FaultPoint]:
    """Enumerate every injectable fault point from analyzer output.

    Every (site x error return x errno) pair appears **exactly once**; the
    trigger dimension is fixed to the analyzer's pinned call-stack +
    singleton composition (the §5 scenario shape), so the space is finite
    and coverable.
    """
    points: List[FaultPoint] = []
    for classification in sorted(classifications, key=lambda item: (item.binary, item.function)):
        function_profile = profile.function(classification.function)
        if function_profile is None:
            continue
        faults = fault_candidates(function_profile)
        if not faults:
            continue
        groups = [("unchecked", classification.unchecked)]
        if include_partial:
            groups.append(("partial", classification.partially_checked))
        if include_checked:
            groups.append(("checked", classification.fully_checked))
        for category, sites in groups:
            for classified in sorted(sites, key=lambda item: item.address):
                for fault_index, fault in enumerate(faults):
                    points.append(
                        FaultPoint(
                            binary=classification.binary,
                            function=classification.function,
                            address=classified.address,
                            category=category,
                            return_value=int(fault["return_value"]),
                            errno=fault["errno"],
                            fault_index=fault_index,
                            site=classified,
                        )
                    )
    return points


def priority_order(points: Iterable[FaultPoint]) -> List[FaultPoint]:
    """Order points by testing priority (deterministically).

    Unchecked sites come before partially checked before checked (the
    paper's C_not > C_part > C_yes interest order), and within each band the
    first occurrence of each (function, return value, errno) fault class is
    scheduled before any repeat occurrence — novel error behaviours are
    probed as early as possible.  The order depends only on the point set,
    never on execution results, so schedules are identical across runs and
    backends.
    """
    banded = sorted(
        points,
        key=lambda point: (
            CATEGORY_RANK.get(point.category, len(CATEGORY_RANK)),
            point.binary,
            point.function,
            point.address,
            point.fault_index,
        ),
    )
    occurrence: Dict[Tuple[Any, ...], int] = {}
    keyed = []
    for point in banded:
        rank = CATEGORY_RANK.get(point.category, len(CATEGORY_RANK))
        cls = (
            rank,
            point.function,
            point.return_value,
            point.errno,
            getattr(point, "klass", "errno"),
            getattr(point, "params", ()),
        )
        seen = occurrence.get(cls, 0)
        occurrence[cls] = seen + 1
        keyed.append((rank, seen, point))
    keyed.sort(
        key=lambda item: (
            item[0],
            item[1],
            item[2].binary,
            item[2].function,
            item[2].address,
            item[2].fault_index,
        )
    )
    return [point for _, _, point in keyed]


__all__ = [
    "CATEGORY_RANK",
    "FaultPoint",
    "StructuredFaultPoint",
    "enumerate_fault_space",
    "enumerate_structured_space",
    "priority_order",
]
