"""The fault-space exploration engine.

Ties the subsystem together: take an enumerated fault space, order it by
testing priority, let a strategy pick the points to run, schedule them
through a PR 1 execution backend, deduplicate the failures, and checkpoint
every completed run in the result store so interrupted explorations resume
instead of restarting.

Determinism contract (the property the tests pin down):

* the schedule — ordering, selection, per-run seeds — is a pure function of
  (fault space, strategy, exploration seed); execution results never feed
  back into it;
* per-run seeds derive from each point's position in the *full* schedule
  (:func:`~repro.core.controller.executor.derive_run_seed`), so a resumed
  run receives exactly the seed it would have received in an uninterrupted
  exploration;
* backends return results in submission order, so parallel explorations are
  bit-identical to serial ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.controller.executor import (
    ExecutionTask,
    ParallelismSpec,
    SerialBackend,
    backend_scope,
    derive_run_seed,
)
from repro.core.controller.monitor import Outcome, RunResult
from repro.core.controller.prefix import (
    build_group_tasks,
    iter_shared_runs,
    resolve_sharing,
    scenario_group_key,
)
from repro.core.controller.target import TargetAdapter, WorkloadRequest
from repro.core.exploration.dedup import FailureDeduplicator, UniqueFailure, stack_fingerprint
from repro.core.exploration.space import FaultPoint, priority_order
from repro.core.exploration.store import ResultStore, StoredResult
from repro.core.exploration.strategy import ExplorationStrategy, resolve_strategy


@dataclass
class ExplorationOutcome:
    """One completed fault point: fresh from a run or replayed from the store."""

    point: FaultPoint
    index: int
    outcome: Outcome
    injections: int = 0
    fingerprint: str = ""
    resumed: bool = False
    run_seed: Optional[int] = None
    scenario_name: str = ""

    @property
    def exposed_failure(self) -> bool:
        return self.injections > 0 and self.outcome.is_high_impact

    def describe(self) -> str:
        origin = "store" if self.resumed else "run"
        return f"[{origin}] {self.point.key}: {self.outcome.describe()}"


@dataclass
class ExplorationReport:
    """Everything one :meth:`ExplorationEngine.explore` call produced."""

    target: str
    workload: str
    strategy: str
    space_size: int
    selected: int
    executed: int
    resumed: int
    pending: int
    outcomes: List[ExplorationOutcome] = field(default_factory=list)
    unique_failures: List[UniqueFailure] = field(default_factory=list)
    store: Optional[ResultStore] = None

    @property
    def complete(self) -> bool:
        """True when every selected point has a recorded result."""
        return self.pending == 0

    def failures(self) -> List[ExplorationOutcome]:
        return [outcome for outcome in self.outcomes if outcome.outcome.is_failure]

    def to_bug_candidates(self) -> List["BugCandidate"]:
        """High-impact unique failures as Table 1 style bug candidates.

        The location is the failure's stack fingerprint, so the cross-
        workload deduplication in ``LFIController.test_automatically`` and
        the Table 1 harness keeps distinct crash paths distinct.
        """
        from repro.core.controller.report import BugCandidate

        candidates: List[BugCandidate] = []
        for failure in self.unique_failures:
            if not failure.kind.is_high_impact:
                continue
            candidates.append(
                BugCandidate(
                    target=self.target,
                    function=failure.function,
                    location=f"stack:{failure.fingerprint}" if failure.fingerprint else "",
                    kind=failure.kind,
                    description=failure.detail,
                    scenarios=list(failure.scenarios),
                    occurrences=failure.occurrences,
                )
            )
        return candidates

    def summary(self) -> str:
        lines = [
            f"exploration of {self.target} [{self.workload}] via {self.strategy}: "
            f"{self.selected}/{self.space_size} points selected — "
            f"{self.executed} run, {self.resumed} resumed from store, {self.pending} pending",
            f"  {len(self.failures())} failures, {len(self.unique_failures)} unique",
        ]
        for failure in self.unique_failures:
            lines.append("    - " + failure.describe())
        if self.store is not None:
            lines.append("  " + self.store.summary())
        return "\n".join(lines)


class ExplorationEngine:
    """Schedules fault-space exploration campaigns against one target."""

    def __init__(
        self,
        target: TargetAdapter,
        strategy: Optional[ExplorationStrategy] = None,
        store: Optional[ResultStore] = None,
        parallelism: ParallelismSpec = None,
        seed: Optional[int] = None,
        workload: Optional[str] = None,
        once: bool = True,
        share_prefixes: Optional[bool] = None,
        request_options: Optional[dict] = None,
    ) -> None:
        self.target = target
        self.strategy = resolve_strategy(strategy)
        self.store = store if store is not None else ResultStore()
        self.parallelism = parallelism
        self.seed = seed
        self.workload = workload or (target.workloads()[0] if target.workloads() else "default")
        self.once = once
        #: ``None`` enables prefix sharing for explorations against targets
        #: declaring deterministic execution — on every backend: serial
        #: explorations stream groups inline, pooled ones fan each group
        #: out as one task.  ``False`` forces the reference per-point path
        #: (the paths are bit-identical — sharing is purely an
        #: execution-time optimization and never leaks into the result
        #: store, whose keys and seeds stay path-independent); ``True``
        #: demands sharing and raises on non-``prefix_shareable`` targets.
        self.share_prefixes = share_prefixes
        #: Extra ``WorkloadRequest.options`` for every run (e.g.
        #: ``{"engine": "reference"}`` or ``{"snapshots": False}``).
        self.request_options = dict(request_options or {})

    # ------------------------------------------------------------------
    def schedule(self, points: Sequence[FaultPoint]) -> List[FaultPoint]:
        """The deterministic schedule: priority order, then strategy selection."""
        return self.strategy.select(priority_order(points))

    def _run_key(self, point: FaultPoint) -> str:
        return f"{self.workload}|{point.key}"

    def run_key(self, point: FaultPoint) -> str:
        """The store/resume key of *point* under this engine's workload."""
        return self._run_key(point)

    def schedule_keys(self, points: Sequence[FaultPoint]) -> List[str]:
        """Store keys of the full schedule, in schedule order.

        What a campaign coordinator needs to shard and track an exploration
        without holding the points themselves: the key list is a pure
        function of (fault space, strategy, workload), so every party that
        can enumerate the space derives the identical list.
        """
        return [self._run_key(point) for point in self.schedule(points)]

    def _fingerprint(self, result: RunResult, point: FaultPoint) -> str:
        record = result.log.last_injection() if result.log is not None else None
        fallback = result.outcome.location or result.outcome.detail or point.key
        if record is not None and record.stack:
            return stack_fingerprint(record.stack)
        return stack_fingerprint([], fallback=fallback)

    # ------------------------------------------------------------------
    def plan(
        self, points: Sequence[FaultPoint]
    ) -> Tuple[List[FaultPoint], List[Tuple[int, FaultPoint]]]:
        """Compute ``(schedule, pending)`` against the current store.

        *pending* is the list of ``(schedule index, point)`` pairs with no
        completed record yet.  Every already-completed point is validated
        for resumability here — a replayed result must carry exactly the
        seed this schedule would derive, otherwise the merged report would
        be reproducible by no seed — so callers (the engine itself, the
        campaign coordinator at submit time) fail fast on a store that was
        written under a different seed or strategy.
        """
        schedule = self.schedule(points)
        completed = self.store.completed_keys()
        pending: List[Tuple[int, FaultPoint]] = []
        for index, point in enumerate(schedule):
            key = self._run_key(point)
            if key not in completed:
                pending.append((index, point))
                continue
            stored = self.store.get(key)
            expected_seed = derive_run_seed(self.seed, index)
            if stored.run_seed != expected_seed:
                raise ValueError(
                    f"result store seed mismatch for {key!r}: stored run_seed "
                    f"{stored.run_seed!r}, this exploration derives "
                    f"{expected_seed!r} — resume with the original seed and "
                    "strategy, or start a fresh store"
                )
        return schedule, pending

    def stored_result(
        self, index: int, point: FaultPoint, scenario_name: str, result: RunResult
    ) -> StoredResult:
        """Build the persistent record of one completed run.

        The record is a pure function of (point, schedule seed,
        observables) — never of the execution path — so snapshot/shared and
        fresh runs checkpoint identically, resumes compose across paths,
        and a worker on another machine produces the byte-identical record
        a local run would have.
        """
        return StoredResult(
            key=self._run_key(point),
            index=index,
            scenario=scenario_name,
            function=point.function,
            return_value=point.return_value,
            errno=point.errno,
            category=point.category,
            workload=self.workload,
            outcome=result.outcome.kind.value,
            detail=result.outcome.detail,
            exit_code=result.outcome.exit_code,
            location=result.outcome.location,
            injections=result.injections,
            fingerprint=self._fingerprint(result, point),
            run_seed=derive_run_seed(self.seed, index),
            fault_class=getattr(point, "klass", "errno"),
            fault_params=dict(getattr(point, "params", ())),
            calls=dict(result.stats.get("calls", {})),
        )

    def _iter_entry_results(
        self, entries: Sequence[Tuple[int, "Scenario", Optional[int]]], backend
    ) -> Iterator[Tuple[int, RunResult]]:
        """Execute ``(index, scenario, seed)`` entries, yielding results as
        they complete (the three execution shapes behind every exploration:
        serial shared streaming, pooled run-to-completion batches, plain
        per-point fan-out)."""
        sharing = resolve_sharing(self.share_prefixes, self.target)
        if sharing and isinstance(backend, SerialBackend):
            for index, result in iter_shared_runs(
                self.target,
                self.workload,
                entries,
                options=dict(self.request_options),
            ):
                yield index, result
        elif sharing:
            # Run-to-completion fan-out: groups are sharded into one
            # batch per worker and each worker drains its batch without
            # pool round trips between groups.  Checkpoint cadence is
            # therefore one *batch* (several groups) — coarser than the
            # old group-per-task streaming, the price of eliminating
            # the per-group submit/result cycles.
            tasks = build_group_tasks(
                self.target, self.workload, entries,
                options=dict(self.request_options),
            )
            for _batch, batch_results in backend.run_group_batches_iter(
                tasks, schedule=self.request_options.get("group_sched")
            ):
                for index in sorted(batch_results):
                    yield index, batch_results[index]
        else:
            tasks = [
                ExecutionTask(
                    index=index,
                    target=self.target,
                    request=WorkloadRequest(
                        workload=self.workload,
                        scenario=scenario,
                        options=dict(self.request_options),
                    ),
                    seed=seed,
                )
                for index, scenario, seed in entries
            ]
            for task, result in backend.run_tasks_iter(tasks):
                yield task.index, result

    def schedule_group_keys(
        self, points: Sequence[FaultPoint]
    ) -> List[Optional[str]]:
        """Per-schedule-position prefix-group base keys (``None`` = solo).

        Derived purely from the spec-determined schedule — the same
        derivation on every node — so a campaign coordinator can co-locate
        a prefix group's members in one shard lease: the worker that drains
        them shares their boot+prefix capture and suffix memo instead of
        probing the same prefix on k machines.  Positions whose scenario is
        unshareable (or when sharing is off entirely) map to ``None``.
        """
        schedule = self.schedule(points)
        if not resolve_sharing(self.share_prefixes, self.target):
            return [None] * len(schedule)
        return [
            scenario_group_key(point.scenario(once=self.once)) for point in schedule
        ]

    def run_schedule_indices(
        self,
        points: Sequence[FaultPoint],
        indices: Sequence[int],
        parallelism: ParallelismSpec = None,
    ) -> Iterator[StoredResult]:
        """Execute the given schedule positions, yielding one
        :class:`StoredResult` per completed run (in completion order).

        The worker-shard entry point of the campaign fabric: a coordinator
        ships only ``(campaign spec, schedule indices)`` over the wire, and
        each worker — which derives the identical schedule from the spec —
        turns its indices back into scenarios, executes them on its local
        backend, and streams the records home.  Records are exactly the
        ones a local :meth:`explore` would have checkpointed (same keys,
        seeds, fingerprints), so merged shards are bit-identical to a
        serial run.  The engine's own store is neither consulted nor
        written — the caller owns persistence.
        """
        schedule = self.schedule(points)
        wanted = []
        for index in sorted(set(indices)):
            if not 0 <= index < len(schedule):
                raise IndexError(
                    f"schedule index {index} out of range for a schedule of "
                    f"{len(schedule)} points"
                )
            wanted.append((index, schedule[index]))
        points_by_index = dict(wanted)
        scenarios_by_index = {
            index: point.scenario(once=self.once) for index, point in wanted
        }
        entries = [
            (index, scenarios_by_index[index], derive_run_seed(self.seed, index))
            for index, _ in wanted
        ]
        backend, owned = backend_scope(
            parallelism if parallelism is not None else self.parallelism
        )
        try:
            for index, result in self._iter_entry_results(entries, backend):
                yield self.stored_result(
                    index,
                    points_by_index[index],
                    scenarios_by_index[index].name,
                    result,
                )
        finally:
            if owned:
                backend.close()

    # ------------------------------------------------------------------
    def explore(
        self, points: Sequence[FaultPoint], max_runs: Optional[int] = None
    ) -> ExplorationReport:
        """Run (or resume) one exploration over *points*.

        ``max_runs`` bounds how many *new* scenario runs this call performs —
        completed work replayed from the store is free — which both supports
        incremental budgeted exploration and lets tests model interruption.
        """
        schedule, pending = self.plan(points)
        if max_runs is not None:
            pending = pending[:max_runs]

        points_by_index = dict(pending)
        scenarios_by_index = {
            index: point.scenario(once=self.once) for index, point in pending
        }
        entries = [
            (index, scenarios_by_index[index], derive_run_seed(self.seed, index))
            for index, _ in pending
        ]

        def checkpoint(index: int, result: RunResult) -> tuple:
            """Persist one completed run (see :meth:`stored_result` for the
            path-independence contract of the record)."""
            point = points_by_index[index]
            stored = self.stored_result(
                index, point, scenarios_by_index[index].name, result
            )
            self.store.record(stored)
            return point, result, stored

        backend, owned = backend_scope(self.parallelism)
        fresh: dict = {}
        try:
            # Stream results and checkpoint each one in the store the moment
            # it is available: a kill mid-campaign loses only in-flight work.
            for index, result in self._iter_entry_results(entries, backend):
                fresh[index] = checkpoint(index, result)
        finally:
            if owned:
                backend.close()

        missing = [index for index, _ in pending if index not in fresh]
        if missing:
            # Every scheduled point must come back with a result; silently
            # reclassifying dropped runs as "pending" would under-report
            # executed work (same corrupted-scheduling guard as campaigns).
            raise RuntimeError(
                f"execution returned no result for scheduled point indices "
                f"{missing[:5]}{'...' if len(missing) > 5 else ''}"
            )

        # Assemble outcomes in schedule order, merging store replays with
        # fresh runs; later duplicates of one key collapse onto the store.
        outcomes: List[ExplorationOutcome] = []
        executed = resumed = still_pending = 0
        deduplicator = FailureDeduplicator()
        for index, point in enumerate(schedule):
            if index in fresh:
                _, result, stored = fresh[index]
                outcome = ExplorationOutcome(
                    point=point,
                    index=index,
                    outcome=result.outcome,
                    injections=result.injections,
                    fingerprint=stored.fingerprint,
                    resumed=False,
                    run_seed=stored.run_seed,
                    scenario_name=stored.scenario,
                )
                executed += 1
            else:
                stored = self.store.get(self._run_key(point))
                if stored is None:
                    still_pending += 1
                    continue
                outcome = ExplorationOutcome(
                    point=point,
                    index=index,
                    outcome=stored.to_outcome(),
                    injections=stored.injections,
                    fingerprint=stored.fingerprint,
                    resumed=True,
                    run_seed=stored.run_seed,
                    scenario_name=stored.scenario,
                )
                resumed += 1
            outcomes.append(outcome)
            # Only *injection-exposed* failures count — a run that fails
            # without its fault ever being injected is a workload problem,
            # not a finding (same gate as the campaign bug report).
            if outcome.outcome.is_failure and outcome.injections > 0:
                deduplicator.add(
                    function=point.function,
                    errno=point.errno,
                    outcome=outcome.outcome,
                    fingerprint=outcome.fingerprint,
                    scenario=outcome.scenario_name,
                    fault_class=getattr(point, "klass", "errno"),
                )

        return ExplorationReport(
            target=self.target.name,
            workload=self.workload,
            strategy=self.strategy.describe(),
            space_size=len(points),
            selected=len(schedule),
            executed=executed,
            resumed=resumed,
            pending=still_pending,
            outcomes=outcomes,
            unique_failures=deduplicator.unique(),
            store=self.store,
        )


__all__ = ["ExplorationEngine", "ExplorationOutcome", "ExplorationReport"]
