"""The fault-space exploration engine.

Ties the subsystem together: take an enumerated fault space, order it by
testing priority, let a strategy plan the points to run, schedule them
through a PR 1 execution backend, deduplicate the failures, and checkpoint
every completed run in the result store so interrupted explorations resume
instead of restarting.

Execution is **round-based**: a planner session proposes a round of
points, the engine executes it (through the prefix/memo/pool machinery),
feeds per-probe coverage deltas back, and asks for the next round
(:class:`RoundPlanner` is the state machine; doc/ADAPTIVE.md the spec).
Static strategies are single-round planners, which keeps the historical
ahead-of-time behavior — and its determinism contract — bit-identical:

* for a static strategy the schedule — ordering, selection, per-run seeds
  — is a pure function of (fault space, strategy, exploration seed);
  execution results never feed back into it.  For an adaptive strategy
  the contract weakens to "(spec + completed results) determine the next
  round": feedback is replayed from :class:`StoredResult`\\ s in schedule
  order, so any driver holding the same store derives the same rounds;
* per-run seeds derive from each point's position in the cumulative
  planned schedule (:func:`~repro.core.controller.executor.derive_run_seed`),
  so a resumed run receives exactly the seed it would have received in an
  uninterrupted exploration;
* backends return results in submission order, so parallel explorations
  are bit-identical to serial ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.controller.executor import (
    ExecutionTask,
    ParallelismSpec,
    SerialBackend,
    backend_scope,
    derive_run_seed,
)
from repro.core.controller.monitor import Outcome, RunResult
from repro.core.controller.prefix import (
    build_group_tasks,
    iter_shared_runs,
    resolve_sharing,
    scenario_group_key,
)
from repro.core.controller.target import TargetAdapter, WorkloadRequest
from repro.core.exploration.dedup import FailureDeduplicator, UniqueFailure, stack_fingerprint
from repro.core.exploration.space import FaultPoint, priority_order
from repro.core.exploration.store import ResultStore, StoredResult
from repro.core.exploration.strategy import (
    ExplorationStrategy,
    ProbeFeedback,
    resolve_strategy,
)


@dataclass
class ExplorationOutcome:
    """One completed fault point: fresh from a run or replayed from the store."""

    point: FaultPoint
    index: int
    outcome: Outcome
    injections: int = 0
    fingerprint: str = ""
    resumed: bool = False
    run_seed: Optional[int] = None
    scenario_name: str = ""

    @property
    def exposed_failure(self) -> bool:
        return self.injections > 0 and self.outcome.is_high_impact

    def describe(self) -> str:
        origin = "store" if self.resumed else "run"
        return f"[{origin}] {self.point.key}: {self.outcome.describe()}"


@dataclass
class ExplorationReport:
    """Everything one :meth:`ExplorationEngine.explore` call produced."""

    target: str
    workload: str
    strategy: str
    space_size: int
    selected: int
    executed: int
    resumed: int
    pending: int
    outcomes: List[ExplorationOutcome] = field(default_factory=list)
    unique_failures: List[UniqueFailure] = field(default_factory=list)
    store: Optional[ResultStore] = None
    #: Per-round execution stats (one entry per planned round; static
    #: strategies produce exactly one).
    rounds: List[Dict[str, Any]] = field(default_factory=list)
    #: Planner summary: rounds, frontier size, new-coverage probes,
    #: session-specific counters (see :meth:`RoundPlanner.summary`).
    planner: Dict[str, Any] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """True when every selected point has a recorded result."""
        return self.pending == 0

    def failures(self) -> List[ExplorationOutcome]:
        return [outcome for outcome in self.outcomes if outcome.outcome.is_failure]

    def to_bug_candidates(self) -> List["BugCandidate"]:
        """High-impact unique failures as Table 1 style bug candidates.

        The location is the failure's stack fingerprint, so the cross-
        workload deduplication in ``LFIController.test_automatically`` and
        the Table 1 harness keeps distinct crash paths distinct.
        """
        from repro.core.controller.report import BugCandidate

        candidates: List[BugCandidate] = []
        for failure in self.unique_failures:
            if not failure.kind.is_high_impact:
                continue
            candidates.append(
                BugCandidate(
                    target=self.target,
                    function=failure.function,
                    location=f"stack:{failure.fingerprint}" if failure.fingerprint else "",
                    kind=failure.kind,
                    description=failure.detail,
                    scenarios=list(failure.scenarios),
                    occurrences=failure.occurrences,
                )
            )
        return candidates

    def summary(self) -> str:
        lines = [
            f"exploration of {self.target} [{self.workload}] via {self.strategy}: "
            f"{self.selected}/{self.space_size} points selected — "
            f"{self.executed} run, {self.resumed} resumed from store, {self.pending} pending",
            f"  {len(self.failures())} failures, {len(self.unique_failures)} unique",
        ]
        if len(self.rounds) > 1:
            lines.append(
                f"  {len(self.rounds)} rounds, "
                f"{self.planner.get('new_coverage_probes', 0)} probes unlocked new "
                f"recovery coverage ({self.planner.get('recovery_lines', 0)} lines)"
            )
        for failure in self.unique_failures:
            lines.append("    - " + failure.describe())
        if self.store is not None:
            lines.append("  " + self.store.summary())
        return "\n".join(lines)


class ExplorationEngine:
    """Schedules fault-space exploration campaigns against one target."""

    def __init__(
        self,
        target: TargetAdapter,
        strategy: Optional[ExplorationStrategy] = None,
        store: Optional[ResultStore] = None,
        parallelism: ParallelismSpec = None,
        seed: Optional[int] = None,
        workload: Optional[str] = None,
        once: bool = True,
        share_prefixes: Optional[bool] = None,
        request_options: Optional[dict] = None,
    ) -> None:
        self.target = target
        self.strategy = resolve_strategy(strategy)
        self.store = store if store is not None else ResultStore()
        self.parallelism = parallelism
        self.seed = seed
        self.workload = workload or (target.workloads()[0] if target.workloads() else "default")
        self.once = once
        #: ``None`` enables prefix sharing for explorations against targets
        #: declaring deterministic execution — on every backend: serial
        #: explorations stream groups inline, pooled ones fan each group
        #: out as one task.  ``False`` forces the reference per-point path
        #: (the paths are bit-identical — sharing is purely an
        #: execution-time optimization and never leaks into the result
        #: store, whose keys and seeds stay path-independent); ``True``
        #: demands sharing and raises on non-``prefix_shareable`` targets.
        self.share_prefixes = share_prefixes
        #: Extra ``WorkloadRequest.options`` for every run (e.g.
        #: ``{"engine": "reference"}`` or ``{"snapshots": False}``).
        self.request_options = dict(request_options or {})
        #: Lazily built ``(binary, recovery-line universe)`` for coverage
        #: feedback; see :meth:`_recovery_universe`.
        self._recovery_cache: Optional[Tuple[Any, frozenset]] = None

    @property
    def adaptive(self) -> bool:
        """True when the strategy plans round by round on feedback."""
        return bool(getattr(self.strategy, "adaptive", False))

    @property
    def collects_coverage(self) -> bool:
        """Adaptive explorations run with coverage on — the feedback source."""
        return self.adaptive

    # ------------------------------------------------------------------
    def schedule(self, points: Sequence[FaultPoint]) -> List[FaultPoint]:
        """The deterministic static schedule: priority order, then selection.

        Only static strategies have one — an adaptive strategy's schedule
        depends on execution feedback, so asking for it ahead of time
        would silently produce the wrong (feedback-free) projection.
        """
        if self.adaptive:
            raise RuntimeError(
                f"strategy {self.strategy.describe()!r} plans adaptively; "
                "there is no ahead-of-time schedule — drive it through "
                "explore() or a RoundPlanner"
            )
        return self.strategy.select(priority_order(points))

    def _run_key(self, point: FaultPoint) -> str:
        return f"{self.workload}|{point.key}"

    def run_key(self, point: FaultPoint) -> str:
        """The store/resume key of *point* under this engine's workload."""
        return self._run_key(point)

    def schedule_keys(self, points: Sequence[FaultPoint]) -> List[str]:
        """Store keys of the full schedule, in schedule order.

        What a campaign coordinator needs to shard and track an exploration
        without holding the points themselves: the key list is a pure
        function of (fault space, strategy, workload), so every party that
        can enumerate the space derives the identical list.
        """
        return [self._run_key(point) for point in self.schedule(points)]

    def _fingerprint(self, result: RunResult, point: FaultPoint) -> str:
        record = result.log.last_injection() if result.log is not None else None
        fallback = result.outcome.location or result.outcome.detail or point.key
        if record is not None and record.stack:
            return stack_fingerprint(record.stack)
        return stack_fingerprint([], fallback=fallback)

    # ------------------------------------------------------------------
    def plan(
        self, points: Sequence[FaultPoint]
    ) -> Tuple[List[FaultPoint], List[Tuple[int, FaultPoint]]]:
        """Compute ``(schedule, pending)`` against the current store.

        *pending* is the list of ``(schedule index, point)`` pairs with no
        completed record yet.  Every already-completed point is validated
        for resumability here — a replayed result must carry exactly the
        seed this schedule would derive, otherwise the merged report would
        be reproducible by no seed — so callers (the engine itself, the
        campaign coordinator at submit time) fail fast on a store that was
        written under a different seed or strategy.  Static strategies
        only; adaptive plans live in :class:`RoundPlanner`.
        """
        schedule = self.schedule(points)
        completed = self.store.completed_keys()
        pending: List[Tuple[int, FaultPoint]] = []
        for index, point in enumerate(schedule):
            key = self._run_key(point)
            if key not in completed:
                pending.append((index, point))
                continue
            self._validate_stored_seed(key, self.store.get(key), index)
        return schedule, pending

    def _validate_stored_seed(
        self, key: str, stored: StoredResult, index: int
    ) -> None:
        expected_seed = derive_run_seed(self.seed, index)
        if stored.run_seed != expected_seed:
            raise ValueError(
                f"result store seed mismatch for {key!r}: stored run_seed "
                f"{stored.run_seed!r}, this exploration derives "
                f"{expected_seed!r} — resume with the original seed and "
                "strategy, or start a fresh store"
            )

    # ------------------------------------------------------------------
    # coverage feedback
    # ------------------------------------------------------------------
    def _recovery_universe(self) -> Tuple[Any, frozenset]:
        """``(binary, frozenset of recovery Lines)`` for feedback extraction.

        Derived purely from the target's binary and the reference fault
        profiles (:func:`identify_recovery_regions` — the same universe
        table3 measures), so every node of a distributed campaign computes
        the identical set.  Targets without a binary yield an empty
        universe: adaptive exploration then sees no novelty and stops at
        its plateau patience, degenerating gracefully.
        """
        if self._recovery_cache is None:
            binary = None
            getter = getattr(self.target, "binary", None)
            if callable(getter):
                binary = getter()
            universe: frozenset = frozenset()
            if binary is not None:
                from repro.core.profiler.spec_profiles import combined_reference_profile
                from repro.coverage.recovery import identify_recovery_regions

                recovery = identify_recovery_regions(
                    binary, combined_reference_profile()
                )
                universe = frozenset(recovery.all_lines())
            self._recovery_cache = (binary, universe)
        return self._recovery_cache

    def _recovery_lines_of(self, result: RunResult) -> List[str]:
        """The recovery-region lines one run covered, ``"file:line"`` sorted."""
        if not self.collects_coverage:
            return []
        binary, universe = self._recovery_universe()
        if binary is None or not universe:
            return []
        tracker = result.stats.get("coverage")
        if tracker is None:
            return []
        covered = tracker.lines_covered_of(binary, universe)
        return sorted(f"{file}:{line}" for file, line in covered)

    def feedback_from_stored(
        self, point: FaultPoint, stored: StoredResult
    ) -> ProbeFeedback:
        """Rebuild the planner feedback of one completed (or replayed) run."""
        return ProbeFeedback(
            key=point.key,
            recovery_lines=tuple(stored.recovery_lines),
            outcome=stored.outcome,
            injections=stored.injections,
        )

    # ------------------------------------------------------------------
    def stored_result(
        self, index: int, point: FaultPoint, scenario_name: str, result: RunResult
    ) -> StoredResult:
        """Build the persistent record of one completed run.

        The record is a pure function of (point, schedule seed,
        observables) — never of the execution path — so snapshot/shared and
        fresh runs checkpoint identically, resumes compose across paths,
        and a worker on another machine produces the byte-identical record
        a local run would have.
        """
        return StoredResult(
            key=self._run_key(point),
            index=index,
            scenario=scenario_name,
            function=point.function,
            return_value=point.return_value,
            errno=point.errno,
            category=point.category,
            workload=self.workload,
            outcome=result.outcome.kind.value,
            detail=result.outcome.detail,
            exit_code=result.outcome.exit_code,
            location=result.outcome.location,
            injections=result.injections,
            fingerprint=self._fingerprint(result, point),
            run_seed=derive_run_seed(self.seed, index),
            fault_class=getattr(point, "klass", "errno"),
            fault_params=dict(getattr(point, "params", ())),
            calls=dict(result.stats.get("calls", {})),
            recovery_lines=self._recovery_lines_of(result),
        )

    def _iter_entry_results(
        self, entries: Sequence[Tuple[int, "Scenario", Optional[int]]], backend
    ) -> Iterator[Tuple[int, RunResult]]:
        """Execute ``(index, scenario, seed)`` entries, yielding results as
        they complete (the three execution shapes behind every exploration:
        serial shared streaming, pooled run-to-completion batches, plain
        per-point fan-out)."""
        sharing = resolve_sharing(self.share_prefixes, self.target)
        collect_coverage = self.collects_coverage
        if sharing and isinstance(backend, SerialBackend):
            for index, result in iter_shared_runs(
                self.target,
                self.workload,
                entries,
                collect_coverage=collect_coverage,
                options=dict(self.request_options),
            ):
                yield index, result
        elif sharing:
            # Run-to-completion fan-out: groups are sharded into one
            # batch per worker and each worker drains its batch without
            # pool round trips between groups.  Checkpoint cadence is
            # therefore one *batch* (several groups) — coarser than the
            # old group-per-task streaming, the price of eliminating
            # the per-group submit/result cycles.
            tasks = build_group_tasks(
                self.target, self.workload, entries,
                collect_coverage=collect_coverage,
                options=dict(self.request_options),
            )
            for _batch, batch_results in backend.run_group_batches_iter(
                tasks, schedule=self.request_options.get("group_sched")
            ):
                for index in sorted(batch_results):
                    yield index, batch_results[index]
        else:
            tasks = [
                ExecutionTask(
                    index=index,
                    target=self.target,
                    request=WorkloadRequest(
                        workload=self.workload,
                        scenario=scenario,
                        collect_coverage=collect_coverage,
                        options=dict(self.request_options),
                    ),
                    seed=seed,
                )
                for index, scenario, seed in entries
            ]
            for task, result in backend.run_tasks_iter(tasks):
                yield task.index, result

    def group_key_of(self, point: FaultPoint) -> Optional[str]:
        """The prefix-group base key of one point (``None`` = solo).

        The per-point form of :meth:`schedule_group_keys`, usable without
        a static schedule — the coordinator calls it per planned round to
        co-locate an adaptive round's group members in one shard lease.
        """
        if not resolve_sharing(self.share_prefixes, self.target):
            return None
        return scenario_group_key(point.scenario(once=self.once))

    def schedule_group_keys(
        self, points: Sequence[FaultPoint]
    ) -> List[Optional[str]]:
        """Per-schedule-position prefix-group base keys (``None`` = solo).

        Derived purely from the spec-determined schedule — the same
        derivation on every node — so a campaign coordinator can co-locate
        a prefix group's members in one shard lease: the worker that drains
        them shares their boot+prefix capture and suffix memo instead of
        probing the same prefix on k machines.  Positions whose scenario is
        unshareable (or when sharing is off entirely) map to ``None``.
        """
        return [self.group_key_of(point) for point in self.schedule(points)]

    def _run_wanted(
        self,
        wanted: Sequence[Tuple[int, FaultPoint]],
        parallelism: ParallelismSpec = None,
    ) -> Iterator[StoredResult]:
        """Execute explicit ``(schedule index, point)`` pairs, yielding one
        :class:`StoredResult` per completed run (in completion order).  The
        engine's own store is neither consulted nor written — the caller
        owns persistence."""
        points_by_index = dict(wanted)
        scenarios_by_index = {
            index: point.scenario(once=self.once) for index, point in wanted
        }
        entries = [
            (index, scenarios_by_index[index], derive_run_seed(self.seed, index))
            for index, _ in wanted
        ]
        backend, owned = backend_scope(
            parallelism if parallelism is not None else self.parallelism
        )
        try:
            for index, result in self._iter_entry_results(entries, backend):
                yield self.stored_result(
                    index,
                    points_by_index[index],
                    scenarios_by_index[index].name,
                    result,
                )
        finally:
            if owned:
                backend.close()

    def run_schedule_indices(
        self,
        points: Sequence[FaultPoint],
        indices: Sequence[int],
        parallelism: ParallelismSpec = None,
    ) -> Iterator[StoredResult]:
        """Execute the given schedule positions, yielding one
        :class:`StoredResult` per completed run (in completion order).

        The worker-shard entry point for **static** campaigns: a
        coordinator ships only ``(campaign spec, schedule indices)`` over
        the wire, and each worker — which derives the identical schedule
        from the spec — turns its indices back into scenarios, executes
        them on its local backend, and streams the records home.  Records
        are exactly the ones a local :meth:`explore` would have
        checkpointed (same keys, seeds, fingerprints), so merged shards
        are bit-identical to a serial run.  Adaptive campaigns cannot
        derive a schedule locally; their shards arrive as explicit
        assignments (:meth:`run_assignments`).
        """
        schedule = self.schedule(points)
        wanted = []
        for index in sorted(set(indices)):
            if not 0 <= index < len(schedule):
                raise IndexError(
                    f"schedule index {index} out of range for a schedule of "
                    f"{len(schedule)} points"
                )
            wanted.append((index, schedule[index]))
        return self._run_wanted(wanted, parallelism)

    def run_assignments(
        self,
        points: Sequence[FaultPoint],
        assignments: Sequence[Tuple[int, str]],
        parallelism: ParallelismSpec = None,
    ) -> Iterator[StoredResult]:
        """Execute explicit ``(schedule index, point key)`` assignments.

        The protocol-v3 worker entry point for **adaptive** campaigns: the
        coordinator plans rounds centrally (it holds the feedback), so a
        lease names its points explicitly instead of by derivable schedule
        position.  Seeds still derive from the shipped indices — the
        point's position in the coordinator's cumulative planned schedule —
        so records are byte-identical to a serial adaptive run's.
        """
        by_key = {point.key: point for point in priority_order(points)}
        wanted: List[Tuple[int, FaultPoint]] = []
        seen: Set[int] = set()
        for raw_index, key in assignments:
            index = int(raw_index)
            point = by_key.get(key)
            if point is None:
                raise KeyError(
                    f"assignment names unknown fault point {key!r} for this spec"
                )
            if index < 0:
                raise IndexError(f"negative schedule index {index}")
            if index in seen:
                continue
            seen.add(index)
            wanted.append((index, point))
        wanted.sort(key=lambda pair: pair[0])
        return self._run_wanted(wanted, parallelism)

    # ------------------------------------------------------------------
    def explore(
        self, points: Sequence[FaultPoint], max_runs: Optional[int] = None
    ) -> ExplorationReport:
        """Run (or resume) one exploration over *points*.

        The unified round loop: plan a round, replay what the store already
        holds (validating seeds), execute the rest (checkpointing every
        completed run the moment it lands), feed the round's results back,
        replan.  Static strategies make exactly one round, reproducing the
        historical ahead-of-time behavior bit for bit.

        ``max_runs`` bounds how many *new* scenario runs this call performs
        — completed work replayed from the store is free — which both
        supports incremental budgeted exploration and lets tests model
        interruption.  A budget exhausted mid-round leaves the round open;
        the next :meth:`explore` call replays the partial round from the
        store and executes only the missing members, converging on the
        identical rounds an uninterrupted exploration plans.
        """
        # Validate an explicit sharing request before planning anything:
        # ``share_prefixes=True`` on an unshareable target must raise even
        # when the space is empty and no round ever executes.
        resolve_sharing(self.share_prefixes, self.target)
        planner = RoundPlanner(self, points)
        budget = max_runs
        fresh: Dict[int, Tuple[FaultPoint, RunResult, StoredResult]] = {}
        backend, owned = backend_scope(self.parallelism)
        try:
            while True:
                pending = planner.replay_from_store()
                if not pending:
                    break
                truncated = False
                if budget is not None and len(pending) > budget:
                    pending = pending[:budget]
                    truncated = True
                if budget is not None:
                    budget -= len(pending)

                points_by_index = dict(pending)
                scenarios_by_index = {
                    index: point.scenario(once=self.once) for index, point in pending
                }
                entries = [
                    (index, scenarios_by_index[index], derive_run_seed(self.seed, index))
                    for index, _ in pending
                ]
                # Stream results and checkpoint each one in the store the
                # moment it is available: a kill mid-campaign loses only
                # in-flight work.
                for index, result in self._iter_entry_results(entries, backend):
                    point = points_by_index[index]
                    stored = self.stored_result(
                        index, point, scenarios_by_index[index].name, result
                    )
                    self.store.record(stored)
                    fresh[index] = (point, result, stored)
                    planner.record_result(index, point, stored, resumed=False)

                missing = [index for index, _ in pending if index not in fresh]
                if missing:
                    # Every scheduled point must come back with a result;
                    # silently reclassifying dropped runs as "pending" would
                    # under-report executed work (same corrupted-scheduling
                    # guard as campaigns).
                    raise RuntimeError(
                        f"execution returned no result for scheduled point indices "
                        f"{missing[:5]}{'...' if len(missing) > 5 else ''}"
                    )
                if truncated:
                    break
        finally:
            if owned:
                backend.close()

        # Assemble outcomes in schedule order, merging store replays with
        # fresh runs; later duplicates of one key collapse onto the store.
        outcomes: List[ExplorationOutcome] = []
        executed = resumed = still_pending = 0
        deduplicator = FailureDeduplicator()
        for index, point in enumerate(planner.schedule):
            if index in fresh:
                _, result, stored = fresh[index]
                outcome = ExplorationOutcome(
                    point=point,
                    index=index,
                    outcome=result.outcome,
                    injections=result.injections,
                    fingerprint=stored.fingerprint,
                    resumed=False,
                    run_seed=stored.run_seed,
                    scenario_name=stored.scenario,
                )
                executed += 1
            else:
                stored = self.store.get(self._run_key(point))
                if stored is None:
                    still_pending += 1
                    continue
                outcome = ExplorationOutcome(
                    point=point,
                    index=index,
                    outcome=stored.to_outcome(),
                    injections=stored.injections,
                    fingerprint=stored.fingerprint,
                    resumed=True,
                    run_seed=stored.run_seed,
                    scenario_name=stored.scenario,
                )
                resumed += 1
            outcomes.append(outcome)
            # Only *injection-exposed* failures count — a run that fails
            # without its fault ever being injected is a workload problem,
            # not a finding (same gate as the campaign bug report).
            if outcome.outcome.is_failure and outcome.injections > 0:
                deduplicator.add(
                    function=point.function,
                    errno=point.errno,
                    outcome=outcome.outcome,
                    fingerprint=outcome.fingerprint,
                    scenario=outcome.scenario_name,
                    fault_class=getattr(point, "klass", "errno"),
                )

        return ExplorationReport(
            target=self.target.name,
            workload=self.workload,
            strategy=self.strategy.describe(),
            space_size=len(points),
            selected=len(planner.schedule),
            executed=executed,
            resumed=resumed,
            pending=still_pending,
            outcomes=outcomes,
            unique_failures=deduplicator.unique(),
            store=self.store,
            rounds=[dict(entry) for entry in planner.rounds],
            planner=planner.summary(),
        )


class RoundPlanner:
    """The plan-round → execute-round → ingest-feedback → replan machine.

    One instance drives one exploration (or one distributed campaign) of
    one engine.  It owns the cumulative planned schedule — the point's
    position in it is the index per-run seeds derive from — the remaining
    frontier, and the feedback channel back into the strategy's
    :class:`~repro.core.exploration.strategy.PlannerSession`.

    Determinism: results of a round are buffered and fed to the session in
    **schedule-index order** when the round closes, so the next round is
    independent of completion/arrival order — serial, pooled, and
    distributed drivers ingesting the same records derive identical
    subsequent rounds.
    """

    def __init__(self, engine: ExplorationEngine, points: Sequence[FaultPoint]) -> None:
        self.engine = engine
        ordered = priority_order(points)
        self.space_size = len(ordered)
        self._by_key: Dict[str, FaultPoint] = {point.key: point for point in ordered}
        self.session = engine.strategy.session()
        self.frontier: List[FaultPoint] = list(ordered)
        #: The cumulative planned schedule; grows one round at a time.
        self.schedule: List[FaultPoint] = []
        #: Per-round stats, one dict per planned round.
        self.rounds: List[Dict[str, Any]] = []
        self.current: Optional[List[Tuple[int, FaultPoint]]] = None
        self._current_remaining: Set[int] = set()
        self._current_results: Dict[int, Tuple[FaultPoint, StoredResult, bool]] = {}
        self._pending_feedback: List[ProbeFeedback] = []
        self._covered: Set[str] = set()
        self.new_coverage_probes = 0
        self._exhausted = False

    @property
    def done(self) -> bool:
        """True when the session declined to plan and no round is open."""
        return self._exhausted and self.current is None

    def next_round(self) -> List[Tuple[int, FaultPoint]]:
        """Propose and register the next round ([] = planner finished)."""
        if self._exhausted:
            return []
        if self.current is not None:
            raise RuntimeError(
                "previous round is still open; feed its results back before "
                "planning the next one"
            )
        keys = self.session.propose(self.frontier, self._pending_feedback)
        self._pending_feedback = []
        if not keys:
            self._exhausted = True
            return []
        frontier_keys = {point.key for point in self.frontier}
        seen: Set[str] = set()
        base = len(self.schedule)
        assignments: List[Tuple[int, FaultPoint]] = []
        for offset, key in enumerate(keys):
            if key in seen or key not in frontier_keys:
                raise ValueError(
                    f"planner proposed invalid or duplicate point key {key!r}"
                )
            seen.add(key)
            assignments.append((base + offset, self._by_key[key]))
        self.schedule.extend(point for _, point in assignments)
        self.frontier = [point for point in self.frontier if point.key not in seen]
        self.current = assignments
        self._current_remaining = {index for index, _ in assignments}
        self._current_results = {}
        self.rounds.append(
            {
                "round": len(self.rounds) + 1,
                "planned": len(assignments),
                "executed": 0,
                "resumed": 0,
                "new_recovery_lines": 0,
            }
        )
        return list(assignments)

    def record_result(
        self, index: int, point: FaultPoint, stored: StoredResult, resumed: bool
    ) -> None:
        """Feed one completed result of the open round back.

        Safe against duplicate deliveries (stale leases re-executing a
        member): only the first record per index counts, matching the
        store's first-completion-wins contract.  When the last member
        lands, the round closes and its feedback is queued for the next
        :meth:`next_round` in schedule-index order.
        """
        if index not in self._current_remaining:
            return
        self._current_remaining.discard(index)
        self._current_results[index] = (point, stored, resumed)
        stats = self.rounds[-1]
        stats["resumed" if resumed else "executed"] += 1
        if not self._current_remaining:
            self._close_round()

    def _close_round(self) -> None:
        stats = self.rounds[-1]
        for index in sorted(self._current_results):
            point, stored, _resumed = self._current_results[index]
            feedback = self.engine.feedback_from_stored(point, stored)
            novel = set(feedback.recovery_lines) - self._covered
            if novel:
                self._covered.update(novel)
                stats["new_recovery_lines"] += len(novel)
                self.new_coverage_probes += 1
            self._pending_feedback.append(feedback)
        self._current_results = {}
        self.current = None

    def replay_from_store(self) -> List[Tuple[int, FaultPoint]]:
        """Advance through rounds the store already answers.

        Proposes rounds and replays their completed members (validating
        stored seeds) until a round has members with no record; returns
        those pending ``(index, point)`` pairs — or ``[]`` once the
        planner is exhausted.  This is how both a resumed :meth:`explore`
        and a coordinator resuming a campaign reconstruct the planner
        state purely from (spec, store).
        """
        store = self.engine.store
        while True:
            if self.current is None:
                if not self.next_round():
                    return []
            pending: List[Tuple[int, FaultPoint]] = []
            for index, point in self.current:
                if index not in self._current_remaining:
                    continue
                key = self.engine.run_key(point)
                stored = store.get(key)
                if stored is None:
                    pending.append((index, point))
                    continue
                self.engine._validate_stored_seed(key, stored, index)
                self.record_result(index, point, stored, resumed=True)
            if pending:
                return pending
            # The round replayed completely (record_result closed it);
            # loop to plan the next one.

    def summary(self) -> Dict[str, Any]:
        """The planner block reports and campaign status expose."""
        payload: Dict[str, Any] = {
            "strategy": self.engine.strategy.describe(),
            "adaptive": self.engine.adaptive,
            "rounds": len(self.rounds),
            "planned": len(self.schedule),
            "frontier": len(self.frontier),
            "new_coverage_probes": self.new_coverage_probes,
            "recovery_lines": len(self._covered),
        }
        session_stats = self.session.stats()
        if session_stats:
            payload["session"] = session_stats
        return payload


__all__ = [
    "ExplorationEngine",
    "ExplorationOutcome",
    "ExplorationReport",
    "RoundPlanner",
]
