"""Failure deduplication across exploration runs.

Different fault points frequently expose the *same* underlying bug — e.g.
every unchecked ``puts`` site on one error path crashes at the same store
instruction.  Exploration reports would drown the novel findings, so
failures are grouped by a five-part equivalence key:

``(function, errno, fault class, outcome kind, stack fingerprint)``

The fault-class dimension keeps structured findings distinct from errno
findings at the same site: a crash exposed by a torn partial write is a
different bug than a crash exposed by ``write -> -1/ENOSPC``.

The stack fingerprint hashes the frames of the injected call (module,
function, line — not raw addresses, which shift between builds) so two
crashes reached through the same path collapse even when exposed by
different scenarios or in different campaign runs.  Results replayed from
the store carry their fingerprint with them, so resuming never double
counts.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.frames import StackFrame
from repro.core.controller.monitor import Outcome, OutcomeKind

FailureKey = Tuple[str, Optional[int], str, OutcomeKind, str]


def stack_fingerprint(stack: Sequence[StackFrame], fallback: str = "") -> str:
    """Stable hex fingerprint of a call stack (empty stack -> *fallback*)."""
    if not stack:
        return zlib.crc32(fallback.encode("utf-8")).to_bytes(4, "big").hex() if fallback else ""
    text = "|".join(f"{frame.module}:{frame.function}:{frame.line}" for frame in stack)
    return zlib.crc32(text.encode("utf-8")).to_bytes(4, "big").hex()


@dataclass
class UniqueFailure:
    """One equivalence class of observed failures."""

    function: str
    errno: Optional[int]
    kind: OutcomeKind
    fingerprint: str
    detail: str = ""
    occurrences: int = 0
    scenarios: List[str] = field(default_factory=list)
    fault_class: str = "errno"

    @property
    def key(self) -> FailureKey:
        return (self.function, self.errno, self.fault_class, self.kind, self.fingerprint)

    def describe(self) -> str:
        errno = self.errno if self.errno is not None else "-"
        klass = f" [{self.fault_class}]" if self.fault_class != "errno" else ""
        return (
            f"{self.function} (errno {errno}){klass} -> {self.kind.value} "
            f"[stack {self.fingerprint or '?'}] x{self.occurrences}"
        )


class FailureDeduplicator:
    """Accumulates failures, keeping one representative per equivalence class."""

    def __init__(self) -> None:
        self._unique: Dict[FailureKey, UniqueFailure] = {}

    def add(
        self,
        function: str,
        errno: Optional[int],
        outcome: Outcome,
        fingerprint: str,
        scenario: str = "",
        fault_class: str = "errno",
    ) -> bool:
        """Record one failure; True when its equivalence class is novel."""
        key: FailureKey = (function, errno, fault_class, outcome.kind, fingerprint)
        existing = self._unique.get(key)
        novel = existing is None
        if existing is None:
            existing = UniqueFailure(
                function=function,
                errno=errno,
                kind=outcome.kind,
                fingerprint=fingerprint,
                detail=outcome.detail,
                fault_class=fault_class,
            )
            self._unique[key] = existing
        existing.occurrences += 1
        if scenario and scenario not in existing.scenarios:
            existing.scenarios.append(scenario)
        return novel

    def unique(self) -> List[UniqueFailure]:
        """Unique failures in first-seen order."""
        return list(self._unique.values())

    def __len__(self) -> int:
        return len(self._unique)


__all__ = ["FailureDeduplicator", "FailureKey", "UniqueFailure", "stack_fingerprint"]
