"""Pluggable exploration strategies and the round-based planner protocol.

A strategy decides *which* fault points of the enumerated space a campaign
actually runs.  Two shapes exist:

* **Static** strategies (`adaptive = False`) pick their whole selection up
  front via :meth:`ExplorationStrategy.select`; they never reorder points
  (scheduling priority belongs to
  :func:`repro.core.exploration.space.priority_order`) and must be
  deterministic functions of (point list, their own configuration) — the
  resume machinery depends on a killed exploration re-selecting exactly
  the same points when it restarts.

* **Adaptive** strategies (`adaptive = True`) plan in *rounds* through a
  stateful :class:`PlannerSession`: the engine (or the campaign
  coordinator) calls ``propose(frontier, feedback)`` repeatedly, executes
  the proposed round through the normal prefix/memo/pool machinery, and
  feeds per-probe :class:`ProbeFeedback` back before asking for the next
  round.  Static strategies participate in the same loop as
  behavior-identical single-round planners
  (:class:`SingleRoundSession`), which keeps them the differential
  oracle for the refactored round loop.

The determinism contract extends to sessions: a session's proposals must
be a pure function of (its strategy's configuration, the sequence of
frontiers and feedback it has seen).  No wall-clock, no unseeded
randomness — given the same spec and the same completed results, serial,
pooled, and distributed drivers must derive the same next round.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass
from random import Random
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.exploration.space import FaultPoint


@dataclass(frozen=True)
class ProbeFeedback:
    """What one executed probe reports back to the planner.

    ``recovery_lines`` are the recovery-region source lines (encoded
    ``"file:line"``) this probe's run covered — the same universe
    :mod:`repro.core.coverage.recovery` identifies for table3.  Sessions
    treat the strings as opaque tokens; novelty is set difference against
    what earlier probes reported.
    """

    key: str
    recovery_lines: Tuple[str, ...] = ()
    outcome: str = ""
    injections: int = 0


class PlannerSession(ABC):
    """Stateful planning loop of one exploration.

    ``propose`` receives the remaining frontier (points not yet planned, in
    priority order) and the feedback of the previous round, and returns the
    point keys of the next round — a subset of the frontier, no duplicates.
    An empty list ends the exploration.  Sessions are single-use: one
    session drives one exploration (or one campaign) start to finish.
    """

    @abstractmethod
    def propose(
        self,
        frontier: Sequence[FaultPoint],
        feedback: Sequence[ProbeFeedback],
    ) -> List[str]:
        """Return the point keys of the next round ([] = done)."""

    def stats(self) -> Dict[str, Any]:
        """Session-specific counters for reports/status (may be empty)."""
        return {}


class SingleRoundSession(PlannerSession):
    """Adapt a static strategy to the planner protocol.

    Round one is exactly ``strategy.select(frontier)``; every later call
    returns [].  This is the bridge that lets the round-based engine run
    Exhaustive/BoundarySample/RandomSample bit-identically to the static
    schedule they produced before the refactor.
    """

    def __init__(self, strategy: "ExplorationStrategy") -> None:
        self.strategy = strategy
        self._proposed = False

    def propose(
        self,
        frontier: Sequence[FaultPoint],
        feedback: Sequence[ProbeFeedback],
    ) -> List[str]:
        if self._proposed:
            return []
        self._proposed = True
        return [point.key for point in self.strategy.select(list(frontier))]


class ExplorationStrategy(ABC):
    """Select the subset of the fault space one exploration will run."""

    name: str = "strategy"
    #: Adaptive strategies plan round by round and consume feedback; static
    #: strategies commit to their whole selection up front.
    adaptive: bool = False

    @abstractmethod
    def select(self, points: Sequence[FaultPoint]) -> List[FaultPoint]:
        """Return the points to run, preserving the given order."""

    def session(self) -> PlannerSession:
        """Start a fresh planning session for one exploration."""
        return SingleRoundSession(self)

    def describe(self) -> str:
        return self.name


class ExhaustiveStrategy(ExplorationStrategy):
    """Run every enumerated point exactly once (the §7.1 full sweep)."""

    name = "exhaustive"

    def select(self, points: Sequence[FaultPoint]) -> List[FaultPoint]:
        return list(points)


class BoundarySampleStrategy(ExplorationStrategy):
    """Run the boundary faults of each call site.

    For every call site, keep the first and last fault candidate of its
    profile order (the extremes of the declared error space).  Sites with
    one or two candidates are kept whole, so the strategy degenerates to
    exhaustive on small profiles while pruning wide errno lists to their
    edges.
    """

    name = "boundary-sample"

    def select(self, points: Sequence[FaultPoint]) -> List[FaultPoint]:
        extremes: Dict[Tuple[str, str, int], Tuple[int, int]] = {}
        for point in points:
            site_key = (point.binary, point.function, point.address)
            low, high = extremes.get(site_key, (point.fault_index, point.fault_index))
            extremes[site_key] = (min(low, point.fault_index), max(high, point.fault_index))
        return [
            point
            for point in points
            if point.fault_index in extremes[(point.binary, point.function, point.address)]
        ]


class RandomSampleStrategy(ExplorationStrategy):
    """Run a seeded random sample of the space.

    ``fraction`` keeps that share of the points (rounded up, so a non-empty
    space always yields at least one run); ``count`` caps the sample at an
    absolute size instead.  The sample depends only on ``seed`` and the
    point list, and the selected points keep their original (priority)
    order.
    """

    name = "random-sample"

    def __init__(
        self,
        seed: int,
        fraction: Optional[float] = None,
        count: Optional[int] = None,
    ) -> None:
        if fraction is None and count is None:
            fraction = 0.25
        if fraction is not None and not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if count is not None and count < 1:
            raise ValueError(f"count must be positive, got {count}")
        self.seed = seed
        self.fraction = fraction
        self.count = count

    def select(self, points: Sequence[FaultPoint]) -> List[FaultPoint]:
        total = len(points)
        if total == 0:
            return []
        if self.count is not None:
            size = min(self.count, total)
        else:
            size = max(1, round(self.fraction * total))
            size = min(size, total)
        chosen = set(Random(self.seed).sample(range(total), size))
        return [point for index, point in enumerate(points) if index in chosen]

    def describe(self) -> str:
        budget = f"count={self.count}" if self.count is not None else f"fraction={self.fraction}"
        return f"{self.name}({budget}, seed={self.seed})"


def _site_key(point: FaultPoint) -> Tuple[Any, ...]:
    """Neighborhood identity: the (site × fault-class) a point probes.

    Errno points from the same call site are neighbors (same check, other
    errno); structured points collapse ``address`` to 0, so their
    neighborhood is (function × class) across params/occurrences.
    """
    return (
        point.binary,
        point.function,
        point.address,
        getattr(point, "klass", None),
    )


class CoverageGuidedStrategy(ExplorationStrategy):
    """Plan rounds toward new recovery-code coverage (the table3 metric).

    The session seeds round one with one probe per distinct call site (in
    priority order — the cheapest way to discover which sites guard
    recovery code at all).  Later rounds split between a capped
    *exploitation* budget (a quarter of the round) on the neighbors of
    productive probes — when a probe unlocks recovery lines nobody
    covered before, the unplanned points of the same site get a strong
    boost (other errnos may cover the rest of a value-dependent recovery
    region) and the same function's other sites a weak one — and
    *exploration*: one representative per still-unprobed site, ordered by
    score then priority rank, so breadth is never starved behind a hot
    neighborhood.  Feedback cuts both ways: a probe that unlocks nothing
    *saturates* its site, clearing the site's boosts so exploitation
    moves on.  Rounds shrink as the queues drain, and the session stops
    once ``patience`` consecutive rounds unlock nothing new (or the
    frontier empties).

    Deterministic by construction: scoring is additive over feedback
    ingested in schedule order, ties break on the stable priority rank,
    and the seeded RNG is the only randomness source (currently unused —
    reserved for stochastic variants).
    """

    name = "coverage-guided"
    adaptive = True

    def __init__(
        self,
        seed: int = 0,
        round_size: int = 8,
        patience: int = 1,
        site_boost: float = 4.0,
        function_boost: float = 1.0,
    ) -> None:
        if round_size < 1:
            raise ValueError(f"round_size must be positive, got {round_size}")
        if patience < 1:
            raise ValueError(f"patience must be positive, got {patience}")
        self.seed = seed
        self.round_size = round_size
        self.patience = patience
        self.site_boost = site_boost
        self.function_boost = function_boost

    def select(self, points: Sequence[FaultPoint]) -> List[FaultPoint]:
        # Feedback-free projection: with nothing observed, the full space is
        # eligible.  Drivers that cannot run the feedback loop (spec
        # validation, space sizing) see the exhaustive ordering.
        return list(points)

    def session(self) -> PlannerSession:
        return CoverageGuidedSession(self)

    def describe(self) -> str:
        return (
            f"{self.name}(round={self.round_size}, patience={self.patience}, "
            f"seed={self.seed})"
        )


class CoverageGuidedSession(PlannerSession):
    """The stateful planning loop behind :class:`CoverageGuidedStrategy`."""

    def __init__(self, strategy: CoverageGuidedStrategy) -> None:
        self.strategy = strategy
        self.rng = Random(strategy.seed)
        self._rank: Dict[str, int] = {}
        self._info: Dict[str, Tuple[Tuple[Any, ...], str]] = {}
        self._score: Dict[str, float] = {}
        self._planned: Set[str] = set()
        self._probed_sites: Set[Tuple[Any, ...]] = set()
        self._saturated: Set[Tuple[Any, ...]] = set()
        self._covered: Set[str] = set()
        self._rounds = 0
        self._quiet_rounds = 0
        self._done = False
        self.new_coverage_probes = 0

    def _register(self, frontier: Sequence[FaultPoint]) -> None:
        for point in frontier:
            if point.key not in self._rank:
                self._rank[point.key] = len(self._rank)
                self._info[point.key] = (_site_key(point), point.function)

    def _ingest(self, feedback: Sequence[ProbeFeedback]) -> int:
        """Fold a round's feedback in; return how many lines were novel."""
        novel_total = 0
        for probe in feedback:
            novel = set(probe.recovery_lines) - self._covered
            info = self._info.get(probe.key)
            site = info[0] if info is not None else None
            if not novel:
                # A barren probe saturates its site: whatever recovery
                # region the site guards is already covered (or absent),
                # so its remaining errnos stop being worth exploitation.
                if site is not None:
                    self._saturated.add(site)
                    for key, (other_site, _function) in self._info.items():
                        if other_site == site and key not in self._planned:
                            self._score.pop(key, None)
                continue
            self._covered.update(novel)
            novel_total += len(novel)
            self.new_coverage_probes += 1
            if info is None:
                continue
            function = info[1]
            self._saturated.discard(site)
            weight = float(len(novel))
            for key, (other_site, other_function) in self._info.items():
                if key in self._planned or other_site in self._saturated:
                    continue
                if other_site == site:
                    self._score[key] = (
                        self._score.get(key, 0.0) + self.strategy.site_boost * weight
                    )
                elif other_function == function:
                    self._score[key] = (
                        self._score.get(key, 0.0) + self.strategy.function_boost * weight
                    )
        return novel_total

    def _seed_round(self, candidates: List[FaultPoint]) -> List[FaultPoint]:
        """Round one: one probe per distinct site, filled by priority rank."""
        chosen: List[FaultPoint] = []
        seen_sites: Set[Tuple[Any, ...]] = set()
        for point in candidates:
            if len(chosen) >= self.strategy.round_size:
                break
            site = _site_key(point)
            if site in seen_sites:
                continue
            seen_sites.add(site)
            chosen.append(point)
        if len(chosen) < self.strategy.round_size:
            picked = {point.key for point in chosen}
            for point in candidates:
                if len(chosen) >= self.strategy.round_size:
                    break
                if point.key not in picked:
                    chosen.append(point)
        return chosen

    def _scored_round(self, candidates: List[FaultPoint]) -> List[FaultPoint]:
        """Later rounds: capped exploitation, breadth-dominant exploration.

        Exploit queue (at most a quarter of the round): boosted points at
        already-probed, unsaturated sites — the neighbors of productive
        probes.  Explore queue (the rest of the round): one representative
        per still-unprobed site — a site's *first* probe is what usually
        unlocks its recovery region — ordered by score then priority rank,
        so function-boosted sites (siblings of productive ones) go first.
        The round is **not** padded when both queues run short: rounds
        shrink as the interesting work drains, and only a fully empty pick
        falls back to a rank-ordered probe round (the cheap confirmation
        sweep ``patience`` counts before stopping).
        """
        score = self._score
        rank = self._rank
        exploit_cap = max(1, self.strategy.round_size // 4)
        exploit = sorted(
            (
                point
                for point in candidates
                if score.get(point.key, 0.0) > 0.0
                and _site_key(point) in self._probed_sites
            ),
            key=lambda point: (-score[point.key], rank[point.key]),
        )[:exploit_cap]
        representatives: Dict[Tuple[Any, ...], FaultPoint] = {}
        for point in candidates:
            site = _site_key(point)
            if site in self._probed_sites:
                continue
            current = representatives.get(site)
            if current is None or (
                -score.get(point.key, 0.0),
                rank[point.key],
            ) < (-score.get(current.key, 0.0), rank[current.key]):
                representatives[site] = point
        explore = sorted(
            representatives.values(),
            key=lambda point: (-score.get(point.key, 0.0), rank[point.key]),
        )
        chosen = exploit + explore[: self.strategy.round_size - len(exploit)]
        if not chosen:
            # Nothing scored and no unprobed sites left: a confirmation
            # round over the highest-priority leftovers, so the plateau
            # stop rests on executed evidence rather than assumption.
            chosen = sorted(candidates, key=lambda point: rank[point.key])[
                : self.strategy.round_size
            ]
        return chosen

    def propose(
        self,
        frontier: Sequence[FaultPoint],
        feedback: Sequence[ProbeFeedback],
    ) -> List[str]:
        if self._done:
            return []
        self._register(frontier)
        novel = self._ingest(feedback)
        if self._rounds > 0:
            # Plateau detection runs on *completed* rounds only; the seed
            # round always executes.
            self._quiet_rounds = 0 if novel > 0 else self._quiet_rounds + 1
            if self._quiet_rounds >= self.strategy.patience:
                self._done = True
                return []
        candidates = [point for point in frontier if point.key not in self._planned]
        if not candidates:
            self._done = True
            return []
        if self._rounds == 0:
            chosen = self._seed_round(candidates)
        else:
            chosen = self._scored_round(candidates)
        self._rounds += 1
        keys = [point.key for point in chosen]
        self._planned.update(keys)
        self._probed_sites.update(_site_key(point) for point in chosen)
        return keys

    def stats(self) -> Dict[str, Any]:
        return {
            "rounds": self._rounds,
            "planned": len(self._planned),
            "new_coverage_probes": self.new_coverage_probes,
            "recovery_lines": len(self._covered),
            "quiet_rounds": self._quiet_rounds,
        }


def _parse_coverage_spec(params: str) -> CoverageGuidedStrategy:
    """Parse ``"coverage[:k=v,...]"`` knobs: round, patience, seed."""
    kwargs: Dict[str, int] = {}
    names = {"round": "round_size", "patience": "patience", "seed": "seed"}
    for part in params.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, value = part.partition("=")
        name = name.strip().lower()
        if name not in names or not value.strip().lstrip("-").isdigit():
            raise ValueError(f"bad coverage-guided knob {part!r}")
        kwargs[names[name]] = int(value)
    return CoverageGuidedStrategy(**kwargs)


def resolve_strategy(spec) -> ExplorationStrategy:
    """Turn a strategy spec into a strategy instance.

    Accepted specs: ``None``/``"exhaustive"``, ``"boundary"``/
    ``"boundary-sample"``, ``"random"``/``"random-sample"`` (seed 0),
    ``"coverage"``/``"coverage-guided"``/``"adaptive"`` (optionally with
    knobs, e.g. ``"coverage:round=6,patience=3"``), or an
    :class:`ExplorationStrategy` instance (returned unchanged).  ``None``
    falls back to the ``REPRO_STRATEGY`` environment variable before
    defaulting to exhaustive.
    """
    if spec is None:
        env = os.environ.get("REPRO_STRATEGY", "").strip()
        if not env:
            return ExhaustiveStrategy()
        spec = env
    if isinstance(spec, ExplorationStrategy):
        return spec
    if isinstance(spec, str):
        normalized = spec.strip().lower()
        head, _, params = normalized.partition(":")
        if head in ("coverage", "coverage-guided", "adaptive"):
            return _parse_coverage_spec(params)
        if params:
            raise ValueError(f"unknown exploration strategy {spec!r}")
        if normalized in ("", "exhaustive", "all"):
            return ExhaustiveStrategy()
        if normalized in ("boundary", "boundary-sample"):
            return BoundarySampleStrategy()
        if normalized in ("random", "random-sample"):
            return RandomSampleStrategy(seed=0)
        raise ValueError(f"unknown exploration strategy {spec!r}")
    raise TypeError(f"unsupported exploration strategy spec {spec!r}")


__all__ = [
    "BoundarySampleStrategy",
    "CoverageGuidedSession",
    "CoverageGuidedStrategy",
    "ExhaustiveStrategy",
    "ExplorationStrategy",
    "PlannerSession",
    "ProbeFeedback",
    "RandomSampleStrategy",
    "SingleRoundSession",
    "resolve_strategy",
]
