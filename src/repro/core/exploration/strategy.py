"""Pluggable selection strategies over the enumerated fault space.

A strategy decides *which* fault points of the enumerated space a campaign
actually runs; it never reorders them (scheduling priority belongs to
:func:`repro.core.exploration.space.priority_order`).  Strategies must be
deterministic functions of (point list, their own configuration) — the
resume machinery depends on a killed exploration re-selecting exactly the
same points when it restarts.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.exploration.space import FaultPoint


class ExplorationStrategy(ABC):
    """Select the subset of the fault space one exploration will run."""

    name: str = "strategy"

    @abstractmethod
    def select(self, points: Sequence[FaultPoint]) -> List[FaultPoint]:
        """Return the points to run, preserving the given order."""

    def describe(self) -> str:
        return self.name


class ExhaustiveStrategy(ExplorationStrategy):
    """Run every enumerated point exactly once (the §7.1 full sweep)."""

    name = "exhaustive"

    def select(self, points: Sequence[FaultPoint]) -> List[FaultPoint]:
        return list(points)


class BoundarySampleStrategy(ExplorationStrategy):
    """Run the boundary faults of each call site.

    For every call site, keep the first and last fault candidate of its
    profile order (the extremes of the declared error space).  Sites with
    one or two candidates are kept whole, so the strategy degenerates to
    exhaustive on small profiles while pruning wide errno lists to their
    edges.
    """

    name = "boundary-sample"

    def select(self, points: Sequence[FaultPoint]) -> List[FaultPoint]:
        extremes: Dict[Tuple[str, str, int], Tuple[int, int]] = {}
        for point in points:
            site_key = (point.binary, point.function, point.address)
            low, high = extremes.get(site_key, (point.fault_index, point.fault_index))
            extremes[site_key] = (min(low, point.fault_index), max(high, point.fault_index))
        return [
            point
            for point in points
            if point.fault_index in extremes[(point.binary, point.function, point.address)]
        ]


class RandomSampleStrategy(ExplorationStrategy):
    """Run a seeded random sample of the space.

    ``fraction`` keeps that share of the points (rounded up, so a non-empty
    space always yields at least one run); ``count`` caps the sample at an
    absolute size instead.  The sample depends only on ``seed`` and the
    point list, and the selected points keep their original (priority)
    order.
    """

    name = "random-sample"

    def __init__(
        self,
        seed: int,
        fraction: Optional[float] = None,
        count: Optional[int] = None,
    ) -> None:
        if fraction is None and count is None:
            fraction = 0.25
        if fraction is not None and not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if count is not None and count < 1:
            raise ValueError(f"count must be positive, got {count}")
        self.seed = seed
        self.fraction = fraction
        self.count = count

    def select(self, points: Sequence[FaultPoint]) -> List[FaultPoint]:
        total = len(points)
        if total == 0:
            return []
        if self.count is not None:
            size = min(self.count, total)
        else:
            size = max(1, round(self.fraction * total))
            size = min(size, total)
        chosen = set(Random(self.seed).sample(range(total), size))
        return [point for index, point in enumerate(points) if index in chosen]

    def describe(self) -> str:
        budget = f"count={self.count}" if self.count is not None else f"fraction={self.fraction}"
        return f"{self.name}({budget}, seed={self.seed})"


def resolve_strategy(spec) -> ExplorationStrategy:
    """Turn a strategy spec into a strategy instance.

    Accepted specs: ``None``/``"exhaustive"``, ``"boundary"``/
    ``"boundary-sample"``, ``"random"``/``"random-sample"`` (seed 0), or an
    :class:`ExplorationStrategy` instance (returned unchanged).
    """
    if spec is None:
        return ExhaustiveStrategy()
    if isinstance(spec, ExplorationStrategy):
        return spec
    if isinstance(spec, str):
        normalized = spec.strip().lower()
        if normalized in ("", "exhaustive", "all"):
            return ExhaustiveStrategy()
        if normalized in ("boundary", "boundary-sample"):
            return BoundarySampleStrategy()
        if normalized in ("random", "random-sample"):
            return RandomSampleStrategy(seed=0)
        raise ValueError(f"unknown exploration strategy {spec!r}")
    raise TypeError(f"unsupported exploration strategy spec {spec!r}")


__all__ = [
    "BoundarySampleStrategy",
    "ExhaustiveStrategy",
    "ExplorationStrategy",
    "RandomSampleStrategy",
    "resolve_strategy",
]
