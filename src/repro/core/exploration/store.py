"""Incremental campaign state: a JSON-lines result store.

Every completed scenario run is appended to the store as one JSON object on
one line, flushed immediately — a crashed or killed exploration therefore
loses at most the run that was in flight.  On startup the engine asks the
store which point keys are already completed and schedules only the rest,
so an interrupted exploration resumes without re-running finished work.

The line format is self-describing (plain JSON, stable keys), so stores can
be inspected with standard tools (``jq``, ``grep``) and merged by simple
concatenation.  A store opened without a path keeps results in memory only
— same API, no persistence — which is what one-shot campaigns use.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Set

from repro.core.controller.monitor import Outcome, OutcomeKind


@dataclass
class StoredResult:
    """One completed scenario run, as persisted to the store."""

    key: str
    index: int
    scenario: str
    function: str
    return_value: int
    errno: Optional[int]
    category: str
    workload: str
    outcome: str
    detail: str = ""
    exit_code: int = 0
    location: str = ""
    injections: int = 0
    fingerprint: str = ""
    run_seed: Optional[int] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def outcome_kind(self) -> OutcomeKind:
        return OutcomeKind(self.outcome)

    def to_outcome(self) -> Outcome:
        """Rebuild the full outcome — a resumed result must be
        indistinguishable from a fresh one, exit code and location included."""
        return Outcome(
            kind=self.outcome_kind,
            detail=self.detail,
            exit_code=self.exit_code,
            location=self.location,
        )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "StoredResult":
        known = {name for name in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        fields = {key: value for key, value in payload.items() if key in known}
        extra = {key: value for key, value in payload.items() if key not in known}
        if extra:
            fields.setdefault("extra", {}).update(extra)
        return cls(**fields)


class ResultStore:
    """Append-only JSON-lines persistence for exploration results."""

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = os.fspath(path) if path is not None else None
        self._results: List[StoredResult] = []
        self._by_key: Dict[str, StoredResult] = {}
        if self.path is not None and os.path.exists(self.path):
            self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    # A torn final line is expected after a hard kill: the
                    # run it described re-executes on resume.
                    continue
                result = StoredResult.from_dict(payload)
                self._remember(result)

    def _remember(self, result: StoredResult) -> None:
        if result.key in self._by_key:
            return  # first completion wins; duplicates are idempotent
        self._results.append(result)
        self._by_key[result.key] = result

    # ------------------------------------------------------------------
    def append(self, result: StoredResult) -> None:
        """Record one completed run (persisted immediately when backed)."""
        if result.key in self._by_key:
            return
        self._remember(result)
        if self.path is not None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(result.to_dict(), sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())

    def completed_keys(self) -> Set[str]:
        return set(self._by_key)

    def get(self, key: str) -> Optional[StoredResult]:
        return self._by_key.get(key)

    def results(self) -> List[StoredResult]:
        """All stored results, in completion (file) order."""
        return list(self._results)

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, key: str) -> bool:
        return key in self._by_key

    def __iter__(self) -> Iterator[StoredResult]:
        return iter(self._results)

    def summary(self) -> str:
        where = self.path if self.path is not None else "<memory>"
        return f"result store {where}: {len(self._results)} completed runs"


__all__ = ["ResultStore", "StoredResult"]
