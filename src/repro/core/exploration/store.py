"""Incremental campaign state: a JSON-lines result store.

Every completed scenario run is appended to the store as one JSON object on
one line, flushed immediately — a crashed or killed exploration therefore
loses at most the run that was in flight.  On startup the engine asks the
store which point keys are already completed and schedules only the rest,
so an interrupted exploration resumes without re-running finished work.

The line format is self-describing (plain JSON, stable keys), so stores can
be inspected with standard tools (``jq``, ``grep``) and merged by simple
concatenation.  A store opened without a path keeps results in memory only
— same API, no persistence — which is what one-shot campaigns use.

Durability contract:

* every :meth:`record` is flushed to the OS before returning, so a store
  reader in another process (a ``tail -f``, the campaign coordinator's
  status endpoint) sees each completed run immediately;
* with ``durable=True`` (the default for persistent stores) each record is
  additionally ``fsync``\\ ed, so a checkpoint that :meth:`record` returned
  from survives a machine crash, not just a process crash.  Pass
  ``durable=False`` to trade that guarantee for write throughput — a
  process crash still loses nothing (the OS has the flushed data), only a
  kernel/power failure can lose the unsynced suffix.

Corruption contract (:meth:`_load`): a **torn final line** — the partial
record of a crash mid-append — is expected and tolerated: the run it
described simply re-executes on resume, and the partial tail is truncated
away before anything new is appended (:meth:`repair`).  Corruption
*anywhere else* means the file was damaged by something other than a crash
mid-append (bad disk, concurrent writers, hand editing) and silently
skipping it would make a resumed campaign re-run — or worse, silently drop
— completed work, so interior corruption raises :class:`StoreCorruptError`
instead.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import IO, Any, Dict, Iterator, List, Optional, Set

from repro.core.controller.monitor import Outcome, OutcomeKind


class StoreCorruptError(Exception):
    """A result store contains corruption that is not a torn final line."""

    def __init__(self, path: str, line_number: int, reason: str) -> None:
        self.path = path
        self.line_number = line_number
        self.reason = reason
        super().__init__(
            f"corrupt result store {path!r} at line {line_number}: {reason} "
            "(only a truncated final line — a crash mid-append — is "
            "recoverable; interior corruption means the file was damaged "
            "and resuming from it would mis-schedule completed work)"
        )


@dataclass
class StoredResult:
    """One completed scenario run, as persisted to the store."""

    key: str
    index: int
    scenario: str
    function: str
    return_value: int
    errno: Optional[int]
    category: str
    workload: str
    outcome: str
    detail: str = ""
    exit_code: int = 0
    location: str = ""
    injections: int = 0
    fingerprint: str = ""
    run_seed: Optional[int] = None
    #: Structured fault-class dimensions.  Defaulted so errno-only stores
    #: written before the taxonomy load (and resume) unchanged, and new
    #: stores read by old code route these through ``extra``.
    fault_class: str = "errno"
    fault_params: Dict[str, Any] = field(default_factory=dict)
    #: Per-function library-call counts of the run (the BEACON-style usage
    #: profile raw material); empty when the target did not report them.
    calls: Dict[str, int] = field(default_factory=dict)
    #: Recovery-region source lines this run covered (``"file:line"``,
    #: sorted) — the coverage feedback adaptive planners replay on resume.
    #: Only adaptive explorations collect coverage, so the field is empty
    #: for static runs and :meth:`to_dict` omits it then, keeping static
    #: records byte-identical to stores written before the round loop.
    recovery_lines: List[str] = field(default_factory=list)
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def outcome_kind(self) -> OutcomeKind:
        return OutcomeKind(self.outcome)

    def to_outcome(self) -> Outcome:
        """Rebuild the full outcome — a resumed result must be
        indistinguishable from a fresh one, exit code and location included."""
        return Outcome(
            kind=self.outcome_kind,
            detail=self.detail,
            exit_code=self.exit_code,
            location=self.location,
        )

    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        if not payload.get("recovery_lines"):
            # Static runs carry no coverage feedback; omitting the empty
            # field keeps their records byte-identical to pre-round-loop
            # stores (and old readers route it through ``extra`` otherwise).
            payload.pop("recovery_lines", None)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "StoredResult":
        known = {name for name in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        fields = {key: value for key, value in payload.items() if key in known}
        extra = {key: value for key, value in payload.items() if key not in known}
        if extra:
            fields.setdefault("extra", {}).update(extra)
        return cls(**fields)


class ResultStore:
    """Append-only JSON-lines persistence for exploration results."""

    def __init__(self, path: Optional[str] = None, durable: bool = True) -> None:
        self.path = os.fspath(path) if path is not None else None
        #: ``fsync`` every record (see the module docstring's durability
        #: contract).  Flushing happens regardless.
        self.durable = durable
        self._results: List[StoredResult] = []
        self._by_key: Dict[str, StoredResult] = {}
        self._handle: Optional[IO[str]] = None
        #: Byte offset of a torn (crash-truncated) final line detected at
        #: load time; ``None`` when the file ended cleanly.  The tail is
        #: truncated lazily by :meth:`repair` — and always before the next
        #: append, so new records never concatenate onto the partial line.
        self._torn_tail_offset: Optional[int] = None
        if self.path is not None and os.path.exists(self.path):
            self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        # Binary mode so line offsets are byte offsets (what repair()
        # truncates at) regardless of platform newline handling.
        with open(self.path, "rb") as handle:
            raw = handle.read()
        offset = 0
        lines: List[tuple] = []  # (line_number, byte offset, raw line)
        for line_number, chunk in enumerate(raw.split(b"\n"), start=1):
            lines.append((line_number, offset, chunk))
            offset += len(chunk) + 1
        # Index of the last line carrying any bytes: only *that* line may
        # legitimately be broken (a crash mid-append).
        last_content = max(
            (position for position, (_, _, chunk) in enumerate(lines) if chunk.strip()),
            default=None,
        )
        for position, (line_number, start, chunk) in enumerate(lines):
            stripped = chunk.strip()
            if not stripped:
                continue
            payload = None
            reason = None
            try:
                payload = json.loads(stripped.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                reason = f"unparseable JSON line ({exc})"
            if reason is None and not isinstance(payload, dict):
                reason = f"expected a JSON object, found {type(payload).__name__}"
            if reason is None:
                try:
                    result = StoredResult.from_dict(payload)
                except TypeError as exc:
                    reason = f"record missing required fields ({exc})"
            if reason is not None:
                if position == last_content:
                    # The expected crash-mid-append shape: remember where
                    # the torn tail starts so repair() can truncate it.
                    self._torn_tail_offset = start
                    return
                raise StoreCorruptError(self.path, line_number, reason)
            self._remember(result)

    def _remember(self, result: StoredResult) -> None:
        if result.key in self._by_key:
            return  # first completion wins; duplicates are idempotent
        self._results.append(result)
        self._by_key[result.key] = result

    # ------------------------------------------------------------------
    @property
    def has_torn_tail(self) -> bool:
        """True when the file ends in a crash-truncated partial record."""
        return self._torn_tail_offset is not None

    def repair(self) -> bool:
        """Truncate a torn final line off the backing file.

        Returns True when a partial tail was removed, False when the file
        was already clean.  Called automatically before the first append
        after a torn load, so a resumed campaign never writes a record onto
        the same line as leftover partial bytes (which would turn a benign
        torn tail into unrecoverable interior corruption).
        """
        if self._torn_tail_offset is None:
            return False
        self._close_handle()
        with open(self.path, "r+b") as handle:
            handle.truncate(self._torn_tail_offset)
        self._torn_tail_offset = None
        return True

    # ------------------------------------------------------------------
    def _open_handle(self) -> IO[str]:
        if self._handle is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def _close_handle(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def record(self, result: StoredResult) -> None:
        """Record one completed run (persisted immediately when backed).

        Each record is flushed before this returns; with ``durable=True``
        it is also fsynced (see the module docstring).  Duplicate keys are
        idempotent: the first completion wins and repeats are dropped, so
        re-delivered results (a retried worker shard, overlapping resumes)
        cost nothing and never duplicate lines in the file.
        """
        if result.key in self._by_key:
            return
        self._remember(result)
        if self.path is not None:
            self.repair()
            handle = self._open_handle()
            handle.write(json.dumps(result.to_dict(), sort_keys=True) + "\n")
            handle.flush()
            if self.durable:
                os.fsync(handle.fileno())

    #: Historical name for :meth:`record` (kept for callers and stores
    #: written against the pre-daemon API).
    append = record

    def close(self) -> None:
        """Close the persistent append handle (safe to record() again after)."""
        self._close_handle()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def completed_keys(self) -> Set[str]:
        return set(self._by_key)

    def get(self, key: str) -> Optional[StoredResult]:
        return self._by_key.get(key)

    def results(self) -> List[StoredResult]:
        """All stored results, in completion (file) order."""
        return list(self._results)

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, key: str) -> bool:
        return key in self._by_key

    def __iter__(self) -> Iterator[StoredResult]:
        return iter(self._results)

    def summary(self) -> str:
        where = self.path if self.path is not None else "<memory>"
        return f"result store {where}: {len(self._results)} completed runs"


__all__ = ["ResultStore", "StoreCorruptError", "StoredResult"]
