"""Fault-space exploration: systematic, resumable injection campaigns.

Where :mod:`repro.core.analysis.scenario_gen` emits one scenario per
suspicious call site, this subsystem makes the *whole* fault space a
first-class object and explores it the way §5/§7.1 envision — exhaustively
when affordable, prunably when not, and restartably always.

**The space** (:mod:`~repro.core.exploration.space`).
:func:`~repro.core.exploration.space.enumerate_fault_space` crosses the
analyzer's classified call sites with every (error return, errno) pair of
the library fault profile; each element is a
:class:`~repro.core.exploration.space.FaultPoint` with a stable key like
``mini_bind:open@0x1a4:rv=-1:errno=ENOENT``.
:func:`~repro.core.exploration.space.priority_order` schedules unchecked
sites before partially checked before checked, and within each band puts
the first occurrence of each novel (function, return value, errno) fault
class ahead of repeats.

**Strategies** (:mod:`~repro.core.exploration.strategy`).  A strategy
plans *which* points to run, deterministically, through a round-based
planner session (``strategy.session().propose(frontier, feedback)``):

* :class:`~repro.core.exploration.strategy.ExhaustiveStrategy` — every
  point exactly once (the full sweep);
* :class:`~repro.core.exploration.strategy.BoundarySampleStrategy` — the
  first and last fault candidate per call site (the errno-range edges);
* :class:`~repro.core.exploration.strategy.RandomSampleStrategy` — a
  seeded fraction/count sample, stable in its seed;
* :class:`~repro.core.exploration.strategy.CoverageGuidedStrategy` — the
  *adaptive* planner: rounds steer toward fault points whose neighbors
  unlocked new recovery-code coverage (the table3 metric), stopping at a
  coverage plateau instead of sweeping the whole space (doc/ADAPTIVE.md).

The static trio are single-round planners, bit-identical to their
historical ahead-of-time selection.

**Resume semantics** (:mod:`~repro.core.exploration.store`).  Every
completed run is appended to a JSON-lines
:class:`~repro.core.exploration.store.ResultStore` and flushed before the
next run starts.  On the next ``explore()`` with the same store, completed
point keys are replayed from disk and only the remainder executes; per-run
seeds derive from each point's position in the full schedule, so a resumed
run gets the seed it would have received uninterrupted.  A torn final line
(hard kill mid-write) is discarded — and truncated away before the next
append — so that single run re-executes; corruption anywhere *else* in the
file raises :class:`~repro.core.exploration.store.StoreCorruptError`
instead of silently mis-scheduling completed work.  Records are flushed per
run and fsynced when the store is opened ``durable=True`` (the default).

**Deduplication** (:mod:`~repro.core.exploration.dedup`).  Injection-exposed
failures (a fault was actually injected and the run failed) are grouped by
``(function, errno, outcome kind, stack fingerprint)`` — the
fingerprint hashes the injected call's stack frames — so one underlying bug
reached from many fault points (or across resumed runs) reports once.

Entry points: :meth:`repro.core.controller.controller.LFIController.explore`
for end-to-end use, or :class:`~repro.core.exploration.engine.ExplorationEngine`
directly when the fault space comes from elsewhere::

    from repro import LFIController
    from repro.core.exploration import ExhaustiveStrategy, ResultStore

    controller = LFIController(MiniBindTarget())
    report = controller.explore(
        strategy=ExhaustiveStrategy(),
        store=ResultStore("bind-exploration.jsonl"),
        seed=7,
        parallelism="processes:4",
    )
    print(report.summary())   # re-running resumes: 0 executed, all replayed
"""

from repro.core.exploration.dedup import (
    FailureDeduplicator,
    UniqueFailure,
    stack_fingerprint,
)
from repro.core.exploration.engine import (
    ExplorationEngine,
    ExplorationOutcome,
    ExplorationReport,
    RoundPlanner,
)
from repro.core.exploration.space import (
    CATEGORY_RANK,
    FaultPoint,
    enumerate_fault_space,
    priority_order,
)
from repro.core.exploration.store import ResultStore, StoreCorruptError, StoredResult
from repro.core.exploration.strategy import (
    BoundarySampleStrategy,
    CoverageGuidedStrategy,
    ExhaustiveStrategy,
    ExplorationStrategy,
    ProbeFeedback,
    RandomSampleStrategy,
    resolve_strategy,
)

__all__ = [
    "BoundarySampleStrategy",
    "CATEGORY_RANK",
    "CoverageGuidedStrategy",
    "ExhaustiveStrategy",
    "ExplorationEngine",
    "ExplorationOutcome",
    "ExplorationReport",
    "ExplorationStrategy",
    "FailureDeduplicator",
    "FaultPoint",
    "ProbeFeedback",
    "RandomSampleStrategy",
    "ResultStore",
    "RoundPlanner",
    "StoreCorruptError",
    "StoredResult",
    "UniqueFailure",
    "enumerate_fault_space",
    "priority_order",
    "resolve_strategy",
    "stack_fingerprint",
]
