"""Two-pass assembler for the synthetic ISA.

Two front ends are provided:

* a **programmatic builder** (:class:`Assembler`) used by the mini-C code
  generator and by the synthetic libc builder, and
* a **text front end** (:func:`assemble_text`) accepting a small assembly
  dialect, convenient for tests and hand-written fixtures::

      .func main
          push 64
          call @malloc
          add sp, 1
          cmp r0, 0
          je fail
          mov r1, r0
          jmp done
      fail:
          push $msg
          call @perror
          add sp, 1
      done:
          halt
      .endfunc
      .string msg "allocation failed"

Labels are scoped to the enclosing function.  Any ``@name`` call target that
is not a locally defined function becomes an entry in the import table.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa import layout
from repro.isa.binary import BinaryImage, FunctionInfo, SourceLocation
from repro.isa.instructions import (
    ALL_REGISTERS,
    DataRef,
    Imm,
    ImportRef,
    Instruction,
    Label,
    Mem,
    Opcode,
    Operand,
    Reg,
)


class AssemblyError(Exception):
    """Raised for malformed assembly input or unresolved references."""


@dataclass
class _PendingInstruction:
    instruction: Instruction
    function: str


@dataclass
class _DataItem:
    name: str
    words: List[int] = field(default_factory=list)


class Assembler:
    """Programmatic assembler producing :class:`BinaryImage` objects."""

    def __init__(self, name: str, entry: str = "main") -> None:
        self.name = name
        self.entry = entry
        self._pending: List[_PendingInstruction] = []
        self._function_starts: Dict[str, int] = {}
        self._function_order: List[str] = []
        self._current_function: Optional[str] = None
        self._labels: Dict[str, int] = {}
        self._data_items: List[_DataItem] = []
        self._data_symbols: Dict[str, int] = {}
        self._line_table: Dict[int, SourceLocation] = {}
        self._finished = False

    # ------------------------------------------------------------------
    # code emission
    # ------------------------------------------------------------------
    def begin_function(self, name: str) -> None:
        if self._current_function is not None:
            raise AssemblyError(
                f"begin_function({name!r}) while {self._current_function!r} is open"
            )
        if name in self._function_starts:
            raise AssemblyError(f"duplicate function {name!r}")
        self._current_function = name
        self._function_starts[name] = len(self._pending)
        self._function_order.append(name)

    def end_function(self) -> None:
        if self._current_function is None:
            raise AssemblyError("end_function() without begin_function()")
        self._current_function = None

    def emit(
        self,
        opcode: Opcode,
        *operands: Operand,
        source: Optional[SourceLocation] = None,
        comment: str = "",
    ) -> int:
        """Append one instruction and return its (eventual) address."""
        if self._current_function is None:
            raise AssemblyError("emit() outside of a function")
        address = len(self._pending)
        instruction = Instruction(
            opcode=opcode,
            operands=tuple(operands),
            address=address,
            source=source,
            comment=comment,
        )
        self._pending.append(
            _PendingInstruction(instruction=instruction, function=self._current_function)
        )
        if source is not None:
            self._line_table[address] = source
        return address

    def mark_label(self, label: str) -> None:
        """Attach *label* (function-scoped) to the next emitted instruction."""
        if self._current_function is None:
            raise AssemblyError("mark_label() outside of a function")
        key = self._scoped(self._current_function, label)
        if key in self._labels:
            raise AssemblyError(f"duplicate label {label!r} in {self._current_function!r}")
        self._labels[key] = len(self._pending)

    @staticmethod
    def _scoped(function: str, label: str) -> str:
        return f"{function}::{label}"

    # ------------------------------------------------------------------
    # data emission
    # ------------------------------------------------------------------
    def add_string(self, name: str, text: str) -> None:
        """Add a NUL-terminated string literal (one character per word)."""
        if name in self._data_symbols or any(d.name == name for d in self._data_items):
            raise AssemblyError(f"duplicate data symbol {name!r}")
        words = [ord(ch) for ch in text] + [0]
        self._data_items.append(_DataItem(name=name, words=words))

    def add_global(self, name: str, size: int = 1, initial: int = 0) -> None:
        """Reserve *size* words of initialized global storage."""
        if size < 1:
            raise AssemblyError(f"global {name!r} must have size >= 1")
        if name in self._data_symbols or any(d.name == name for d in self._data_items):
            raise AssemblyError(f"duplicate data symbol {name!r}")
        self._data_items.append(_DataItem(name=name, words=[initial] * size))

    def add_words(self, name: str, words: List[int]) -> None:
        if any(d.name == name for d in self._data_items):
            raise AssemblyError(f"duplicate data symbol {name!r}")
        self._data_items.append(_DataItem(name=name, words=list(words)))

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------
    def finish(self) -> BinaryImage:
        if self._current_function is not None:
            raise AssemblyError(
                f"finish() while function {self._current_function!r} is still open"
            )
        if self._finished:
            raise AssemblyError("finish() called twice")
        self._finished = True

        data_words, data_symbols = self._layout_data()
        instructions = self._resolve(data_symbols)
        symbols = dict(self._function_starts)
        functions = self._function_extents()
        imports = sorted(
            {
                instr.operands[0].name
                for instr in instructions
                if instr.opcode is Opcode.CALL
                and instr.operands
                and isinstance(instr.operands[0], ImportRef)
            }
        )
        return BinaryImage(
            name=self.name,
            instructions=instructions,
            symbols=symbols,
            imports=imports,
            data_words=data_words,
            data_symbols=data_symbols,
            line_table=dict(self._line_table),
            functions=functions,
            entry=self.entry,
        )

    def _layout_data(self) -> Tuple[Dict[int, int], Dict[str, int]]:
        address = layout.DATA_BASE
        data_words: Dict[int, int] = {}
        data_symbols: Dict[str, int] = {}
        for item in self._data_items:
            data_symbols[item.name] = address
            for word in item.words:
                data_words[address] = word
                address += 1
        return data_words, data_symbols

    def _function_extents(self) -> Dict[str, FunctionInfo]:
        infos: Dict[str, FunctionInfo] = {}
        for index, name in enumerate(self._function_order):
            start = self._function_starts[name]
            end = (
                self._function_starts[self._function_order[index + 1]]
                if index + 1 < len(self._function_order)
                else len(self._pending)
            )
            infos[name] = FunctionInfo(name=name, start=start, end=end)
        return infos

    def _resolve(self, data_symbols: Dict[str, int]) -> List[Instruction]:
        resolved: List[Instruction] = []
        for address, pending in enumerate(self._pending):
            instruction = pending.instruction
            operands = tuple(
                self._resolve_operand(op, pending.function, address)
                for op in instruction.operands
            )
            resolved.append(
                Instruction(
                    opcode=instruction.opcode,
                    operands=operands,
                    address=address,
                    label=instruction.label,
                    source=instruction.source,
                    comment=instruction.comment,
                )
            )
        # Patch DataRef and symbolic Mem operands now that the data layout is
        # final.
        patched: List[Instruction] = []
        for instruction in resolved:
            fixed_operands = []
            for op in instruction.operands:
                if isinstance(op, DataRef) and op.name in data_symbols:
                    op = op.resolved(data_symbols[op.name])
                elif isinstance(op, Mem) and op.symbol is not None:
                    if op.symbol not in data_symbols:
                        raise AssemblyError(
                            f"unresolved data symbol {op.symbol!r} in memory operand "
                            f"at address {instruction.address}"
                        )
                    op = op.resolved(data_symbols[op.symbol])
                fixed_operands.append(op)
            operands = tuple(fixed_operands)
            for op in operands:
                if isinstance(op, DataRef) and op.address is None:
                    raise AssemblyError(
                        f"unresolved data symbol {op.name!r} at address {instruction.address}"
                    )
            patched.append(
                Instruction(
                    opcode=instruction.opcode,
                    operands=operands,
                    address=instruction.address,
                    label=instruction.label,
                    source=instruction.source,
                    comment=instruction.comment,
                )
            )
        return patched

    def _resolve_operand(self, operand: Operand, function: str, address: int) -> Operand:
        if isinstance(operand, Label) and operand.address is None:
            scoped = self._scoped(function, operand.name)
            if scoped in self._labels:
                return operand.resolved(self._labels[scoped])
            if operand.name in self._function_starts:
                return operand.resolved(self._function_starts[operand.name])
            raise AssemblyError(
                f"unresolved label {operand.name!r} referenced at address {address} "
                f"in function {function!r}"
            )
        return operand


# ----------------------------------------------------------------------
# text front end
# ----------------------------------------------------------------------

_MEM_RE = re.compile(
    r"^\[\s*(?P<base>[a-z][a-z0-9]*)?\s*(?:(?P<sign>[+-])\s*(?P<off>\d+))?\s*\]$"
)
_MEM_ABS_RE = re.compile(r"^\[\s*(?P<addr>-?\d+|0x[0-9a-fA-F]+)\s*\]$")
_STRING_RE = re.compile(r'^\.string\s+(?P<name>\w+)\s+"(?P<text>.*)"\s*$')
_GLOBAL_RE = re.compile(r"^\.global\s+(?P<name>\w+)(?:\s+(?P<size>\d+))?(?:\s*=\s*(?P<init>-?\d+))?$")


def _parse_int(token: str) -> int:
    return int(token, 0)


def _parse_operand(token: str) -> Operand:
    token = token.strip()
    if not token:
        raise AssemblyError("empty operand")
    if token in ALL_REGISTERS:
        return Reg(token)
    if token.startswith("@"):
        return ImportRef(token[1:])
    if token.startswith("$"):
        return DataRef(token[1:])
    match = _MEM_ABS_RE.match(token)
    if match:
        return Mem(base=None, offset=_parse_int(match.group("addr")))
    match = _MEM_RE.match(token)
    if match:
        base = match.group("base")
        offset = 0
        if match.group("off") is not None:
            offset = int(match.group("off"))
            if match.group("sign") == "-":
                offset = -offset
        if base is not None and base not in ALL_REGISTERS:
            raise AssemblyError(f"unknown base register in operand {token!r}")
        return Mem(base=base, offset=offset)
    try:
        return Imm(_parse_int(token))
    except ValueError:
        pass
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_.]*", token):
        return Label(token)
    raise AssemblyError(f"cannot parse operand {token!r}")


def _split_operands(text: str) -> List[str]:
    parts: List[str] = []
    depth = 0
    current = ""
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            parts.append(current)
            current = ""
        else:
            current += char
    if current.strip():
        parts.append(current)
    return [part.strip() for part in parts if part.strip()]


def assemble_text(text: str, name: str = "a.out", entry: str = "main") -> BinaryImage:
    """Assemble the textual dialect described in the module docstring."""
    assembler = Assembler(name, entry=entry)
    opcode_by_name = {op.value: op for op in Opcode}
    source_file = f"{name}.s"

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split(";", 1)[0].split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".func"):
            parts = line.split()
            if len(parts) != 2:
                raise AssemblyError(f"line {line_number}: malformed .func directive")
            assembler.begin_function(parts[1])
            continue
        if line == ".endfunc":
            assembler.end_function()
            continue
        match = _STRING_RE.match(line)
        if match:
            assembler.add_string(match.group("name"), match.group("text"))
            continue
        match = _GLOBAL_RE.match(line)
        if match:
            size = int(match.group("size") or 1)
            initial = int(match.group("init") or 0)
            assembler.add_global(match.group("name"), size=size, initial=initial)
            continue
        if line.startswith("."):
            raise AssemblyError(f"line {line_number}: unknown directive {line!r}")

        # Labels may share a line with an instruction: "fail: mov r0, -1"
        while True:
            label_match = re.match(r"^([A-Za-z_][A-Za-z0-9_.]*):\s*(.*)$", line)
            if not label_match:
                break
            assembler.mark_label(label_match.group(1))
            line = label_match.group(2).strip()
            if not line:
                break
        if not line:
            continue

        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        if mnemonic not in opcode_by_name:
            raise AssemblyError(f"line {line_number}: unknown mnemonic {mnemonic!r}")
        opcode = opcode_by_name[mnemonic]
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = [_parse_operand(token) for token in _split_operands(operand_text)]
        assembler.emit(
            opcode,
            *operands,
            source=SourceLocation(file=source_file, line=line_number),
        )

    return assembler.finish()
