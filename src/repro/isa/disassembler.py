"""Disassembler for :class:`~repro.isa.binary.BinaryImage` objects.

The call-site analyzer works on instruction objects directly, but a textual
disassembly is invaluable for debugging injection scenarios and for the
reports the controller produces (the paper notes that the analyzer reports
file/line of each suspicious call when debug symbols are available; we show
both the raw addresses and the line-table data).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.isa.binary import BinaryImage
from repro.isa.instructions import Instruction, Label, Opcode


def format_instruction(instruction: Instruction, binary: Optional[BinaryImage] = None) -> str:
    """Render one instruction, annotating branch targets with label info."""
    operand_strings: List[str] = []
    for operand in instruction.operands:
        if isinstance(operand, Label) and operand.address is not None:
            operand_strings.append(f"{operand.address:#06x} <{operand.name}>")
        else:
            operand_strings.append(str(operand))
    text = instruction.opcode.value
    if operand_strings:
        text = f"{text} {', '.join(operand_strings)}"
    address = instruction.address if instruction.address is not None else 0
    prefix = f"{address:#06x}:  {text}"
    if binary is not None:
        location = binary.source_of(address)
        if location is not None:
            prefix = f"{prefix:<48}; {location}"
    elif instruction.comment:
        prefix = f"{prefix:<48}; {instruction.comment}"
    return prefix


class Disassembler:
    """Produce human-readable listings of whole images or single functions."""

    def __init__(self, binary: BinaryImage) -> None:
        self.binary = binary

    def function_names(self) -> List[str]:
        return sorted(self.binary.functions)

    def disassemble_function(self, name: str) -> str:
        lines = [f"<{name}>:"]
        for address, instruction in self.binary.iter_function_instructions(name):
            lines.append("  " + format_instruction(instruction, self.binary))
        return "\n".join(lines)

    def disassemble(self, functions: Optional[Iterable[str]] = None) -> str:
        names = list(functions) if functions is not None else self.function_names()
        sections = [self.disassemble_function(name) for name in names]
        header = (
            f"; {self.binary.name}: {len(self.binary.instructions)} instructions, "
            f"imports: {', '.join(self.binary.imports) or '(none)'}"
        )
        return "\n\n".join([header] + sections)

    def call_summary(self) -> str:
        """Summarize library call sites (useful when tuning scenarios)."""
        lines = [f"; library call sites in {self.binary.name}"]
        for site in self.binary.call_sites():
            lines.append(f";   {site}")
        return "\n".join(lines)


def disassemble(binary: BinaryImage) -> str:
    """Convenience wrapper mirroring ``objdump -d``."""
    return Disassembler(binary).disassemble()


__all__ = ["Disassembler", "disassemble", "format_instruction"]

# Re-exported for convenience in tests that build tiny snippets by hand.
_ = Opcode
