"""Instruction and operand model of the synthetic ISA.

The machine is a word-addressed register machine with eight general purpose
registers (``r0`` .. ``r7``), a stack pointer ``sp`` and a frame pointer
``bp``.  ``r0`` doubles as the return-value register (the analog of ``eax``
in the paper's x86 setting), which is what the call-site analyzer tracks.

Instructions occupy exactly one address each, which keeps the address
arithmetic of the call-site analyzer (partial CFGs limited to 100 post-call
instructions) simple without losing anything the analysis cares about.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import only used for type checking
    from repro.isa.binary import SourceLocation


GENERAL_REGISTERS: Tuple[str, ...] = ("r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7")
SPECIAL_REGISTERS: Tuple[str, ...] = ("sp", "bp")
ALL_REGISTERS: Tuple[str, ...] = GENERAL_REGISTERS + SPECIAL_REGISTERS

#: Register that carries function return values (tracked by the analyzer).
RETURN_REGISTER = "r0"


class Opcode(enum.Enum):
    """Mnemonics understood by the assembler, VM, and analyzer."""

    MOV = "mov"
    PUSH = "push"
    POP = "pop"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NEG = "neg"
    NOT = "not"
    CMP = "cmp"
    TEST = "test"
    JMP = "jmp"
    JE = "je"
    JNE = "jne"
    JL = "jl"
    JLE = "jle"
    JG = "jg"
    JGE = "jge"
    CALL = "call"
    RET = "ret"
    HALT = "halt"
    NOP = "nop"
    LEA = "lea"

    @property
    def is_conditional_jump(self) -> bool:
        return self in _CONDITIONAL_JUMPS

    @property
    def is_jump(self) -> bool:
        return self is Opcode.JMP or self in _CONDITIONAL_JUMPS

    @property
    def is_equality_jump(self) -> bool:
        """Jumps whose condition is pure equality (used for Chk_eq)."""
        return self in (Opcode.JE, Opcode.JNE)

    @property
    def is_inequality_jump(self) -> bool:
        """Jumps whose condition is an ordering relation (used for Chk_ineq)."""
        return self in (Opcode.JL, Opcode.JLE, Opcode.JG, Opcode.JGE)

    @property
    def terminates_block(self) -> bool:
        return self in (Opcode.JMP, Opcode.RET, Opcode.HALT) or self.is_conditional_jump


_CONDITIONAL_JUMPS = frozenset(
    {Opcode.JE, Opcode.JNE, Opcode.JL, Opcode.JLE, Opcode.JG, Opcode.JGE}
)


@dataclass(frozen=True)
class Reg:
    """A register operand."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in ALL_REGISTERS:
            raise ValueError(f"unknown register {self.name!r}")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Imm:
    """An immediate (literal) operand."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Mem:
    """A memory operand addressed as ``[base + offset]``.

    ``base`` may be ``None`` for absolute addressing (``[offset]``), which is
    how globals and the ``errno`` location are accessed.  A ``symbol`` names
    a data-segment symbol whose address the assembler adds to ``offset``
    during layout (after resolution ``symbol`` is cleared).
    """

    base: Optional[str] = None
    offset: int = 0
    symbol: Optional[str] = None

    def __post_init__(self) -> None:
        if self.base is not None and self.base not in ALL_REGISTERS:
            raise ValueError(f"unknown base register {self.base!r}")

    def __str__(self) -> str:
        if self.symbol is not None:
            return f"[${self.symbol}+{self.offset}]" if self.offset else f"[${self.symbol}]"
        if self.base is None:
            return f"[{self.offset}]"
        if self.offset == 0:
            return f"[{self.base}]"
        sign = "+" if self.offset >= 0 else "-"
        return f"[{self.base}{sign}{abs(self.offset)}]"

    def resolved(self, symbol_address: int) -> "Mem":
        return Mem(base=self.base, offset=self.offset + symbol_address, symbol=None)


@dataclass(frozen=True)
class Label:
    """A code label operand (branch or local call target).

    ``address`` is filled in by the assembler once layout is known.
    """

    name: str
    address: Optional[int] = None

    def __str__(self) -> str:
        if self.address is None:
            return self.name
        return f"{self.name}<{self.address}>"

    def resolved(self, address: int) -> "Label":
        return Label(self.name, address)


@dataclass(frozen=True)
class DataRef:
    """A reference to a symbol in the data segment (string or global)."""

    name: str
    address: Optional[int] = None

    def __str__(self) -> str:
        if self.address is None:
            return f"${self.name}"
        return f"${self.name}<{self.address}>"

    def resolved(self, address: int) -> "DataRef":
        return DataRef(self.name, address)


@dataclass(frozen=True)
class ImportRef:
    """A reference to a function imported from a shared library.

    Calls through :class:`ImportRef` are the program/library boundary where
    LFI interposes.
    """

    name: str

    def __str__(self) -> str:
        return f"@{self.name}"


Operand = Union[Reg, Imm, Mem, Label, DataRef, ImportRef]


@dataclass
class Instruction:
    """One machine instruction.

    ``address`` is assigned by the assembler.  ``source`` carries optional
    debug information (the DWARF analog the paper relies on for call-stack
    triggers keyed on file/line).
    """

    opcode: Opcode
    operands: Tuple[Operand, ...] = ()
    address: Optional[int] = None
    label: Optional[str] = None
    source: Optional["SourceLocation"] = None
    comment: str = ""

    def __str__(self) -> str:
        ops = ", ".join(str(op) for op in self.operands)
        text = self.opcode.value if not ops else f"{self.opcode.value} {ops}"
        if self.label:
            text = f"{self.label}: {text}"
        return text

    # -- convenience predicates used throughout the analyzer -------------

    @property
    def is_library_call(self) -> bool:
        return self.opcode is Opcode.CALL and bool(self.operands) and isinstance(
            self.operands[0], ImportRef
        )

    @property
    def is_local_call(self) -> bool:
        return self.opcode is Opcode.CALL and bool(self.operands) and isinstance(
            self.operands[0], Label
        )

    @property
    def called_name(self) -> Optional[str]:
        """Name of the called function, for both local and library calls."""
        if self.opcode is not Opcode.CALL or not self.operands:
            return None
        target = self.operands[0]
        if isinstance(target, (ImportRef, Label)):
            return target.name
        return None

    def jump_target(self) -> Optional[Label]:
        if self.opcode.is_jump and self.operands and isinstance(self.operands[0], Label):
            return self.operands[0]
        return None


def make(opcode: Opcode, *operands: Operand, **kwargs) -> Instruction:
    """Small helper to build instructions fluently in code generators."""
    return Instruction(opcode=opcode, operands=tuple(operands), **kwargs)
