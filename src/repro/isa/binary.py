"""Binary image format: the synthetic analog of an ELF object.

A :class:`BinaryImage` bundles the pieces the LFI tool chain needs from a
real binary:

* the instruction stream (for disassembly, CFG construction and dataflow),
* a symbol table of exported functions (what the profiler analyses),
* an import table (the program/library boundary where faults are injected),
* an initialized data segment with data symbols, and
* a line table mapping instruction addresses back to source file/line — the
  stand-in for DWARF debug information that call-stack triggers and analyzer
  reports use.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.isa import layout
from repro.isa.instructions import Imm, ImportRef, Instruction, Label, Mem, Opcode


@dataclass(frozen=True)
class SourceLocation:
    """A source coordinate attached to an instruction (DWARF analog)."""

    file: str
    line: int
    function: str = ""

    def __str__(self) -> str:
        if self.function:
            return f"{self.file}:{self.line} ({self.function})"
        return f"{self.file}:{self.line}"


@dataclass(frozen=True)
class Symbol:
    """An entry in the symbol table."""

    name: str
    address: int
    kind: str = "func"  # "func" or "data"


@dataclass(frozen=True)
class FunctionInfo:
    """Extent of a function in the code segment (``end`` is exclusive)."""

    name: str
    start: int
    end: int

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end

    @property
    def size(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class CallSite:
    """A call to an imported library function found in a program binary."""

    address: int
    callee: str
    caller: str
    source: Optional[SourceLocation] = None

    def __str__(self) -> str:
        loc = f" at {self.source}" if self.source else ""
        return f"call {self.callee} @ {self.address:#x} in {self.caller}{loc}"


class BinaryImage:
    """A fully laid out program or library image."""

    def __init__(
        self,
        name: str,
        instructions: Iterable[Instruction],
        symbols: Dict[str, int],
        imports: Iterable[str],
        data_words: Optional[Dict[int, int]] = None,
        data_symbols: Optional[Dict[str, int]] = None,
        line_table: Optional[Dict[int, SourceLocation]] = None,
        functions: Optional[Dict[str, FunctionInfo]] = None,
        entry: str = "main",
    ) -> None:
        self.name = name
        #: Stored as a tuple: the instruction stream is immutable once laid
        #: out, which is what lets the VM cache a compiled closure array on
        #: the image without any staleness hazard.
        self.instructions: Tuple[Instruction, ...] = tuple(instructions)
        self.symbols = dict(symbols)
        self.imports = tuple(sorted(set(imports)))
        self.data_words: Dict[int, int] = dict(data_words or {})
        self.data_symbols: Dict[str, int] = dict(data_symbols or {})
        self.line_table: Dict[int, SourceLocation] = dict(line_table or {})
        self.entry = entry
        if functions is None:
            functions = self._infer_functions()
        self.functions: Dict[str, FunctionInfo] = dict(functions)
        #: Sorted (starts, infos, max size) table for bisect-based address →
        #: function lookup; built lazily, assumes ``functions`` is not
        #: mutated after construction (nothing in the tool chain does).
        self._range_table: Optional[Tuple[List[int], List[FunctionInfo], int]] = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _infer_functions(self) -> Dict[str, FunctionInfo]:
        """Derive function extents from the symbol table when not provided."""
        starts = sorted(
            (addr, name) for name, addr in self.symbols.items()
        )
        infos: Dict[str, FunctionInfo] = {}
        for index, (start, name) in enumerate(starts):
            end = (
                starts[index + 1][0]
                if index + 1 < len(starts)
                else len(self.instructions)
            )
            infos[name] = FunctionInfo(name=name, start=start, end=end)
        return infos

    # ------------------------------------------------------------------
    # pickling (images cross process boundaries under ProcessPoolBackend)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Drop derived caches: the VM's compiled closure array is not
        picklable, and the range table is cheap to rebuild on first use."""
        state = dict(self.__dict__)
        state.pop("_compiled_program", None)
        state.pop("_compiled_blocks", None)
        state["_range_table"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._range_table = None

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.instructions)

    def instruction_at(self, address: int) -> Instruction:
        if not 0 <= address < len(self.instructions):
            raise IndexError(f"address {address:#x} outside code segment of {self.name}")
        return self.instructions[address]

    def has_address(self, address: int) -> bool:
        return 0 <= address < len(self.instructions)

    def function_containing(self, address: int) -> Optional[FunctionInfo]:
        """Function whose extent covers *address* (bisect over a range table).

        Called once per call site by the analyzer, so this is O(log n) on a
        start-sorted table instead of a linear scan over every function.
        The backwards walk is bounded by the largest function size, which
        keeps the lookup correct even for degenerate (zero-size or
        overlapping) extents hand-built in tests.
        """
        table = self._range_table
        if table is None:
            infos = sorted(self.functions.values(), key=lambda info: (info.start, info.end))
            starts = [info.start for info in infos]
            max_size = max((info.end - info.start for info in infos), default=0)
            table = (starts, infos, max_size)
            self._range_table = table
        starts, infos, max_size = table
        index = bisect_right(starts, address) - 1
        lowest = address - max_size
        while index >= 0 and starts[index] > lowest:
            info = infos[index]
            if info.start <= address < info.end:
                return info
            index -= 1
        return None

    def source_of(self, address: int) -> Optional[SourceLocation]:
        return self.line_table.get(address)

    @property
    def errno_address_taken(self) -> bool:
        """True when the program can materialize ``errno``'s address.

        Scans the instruction stream for an immediate equal to
        :data:`~repro.isa.layout.ERRNO_ADDRESS` (what ``&errno`` compiles
        to) or an ``LEA`` of the absolute errno cell.  When either exists,
        the program may read errno through a pointer the compiled engine's
        predecode-specialized errno-read counter cannot see, so consumers
        of the counter (errno-blind suffix replication) must treat it as
        unreliable for this image.  Mirrors the modeling assumption of the
        static errno analyses: errno is reached via the well-known absolute
        address, not via arithmetic that happens to land on it.
        """
        cached = getattr(self, "_errno_address_taken", None)
        if cached is None:
            cached = False
            for instruction in self.instructions:
                for operand in instruction.operands:
                    if isinstance(operand, Imm) and operand.value == layout.ERRNO_ADDRESS:
                        cached = True
                    elif (
                        instruction.opcode is Opcode.LEA
                        and isinstance(operand, Mem)
                        and operand.base is None
                        and operand.offset == layout.ERRNO_ADDRESS
                    ):
                        cached = True
                if cached:
                    break
            self._errno_address_taken = cached
        return cached

    def block_leaders(self) -> frozenset:
        """Addresses where control can enter a basic block from elsewhere.

        Leaders are the entry address, every symbol (function starts, which
        ``call`` reaches), and every resolved :class:`Label` appearing as an
        operand anywhere — branch targets, but also labels materialized as
        values, since a program that loads a label can later jump to it.
        The superclosure compiler (:mod:`repro.vm.dispatch`) never fuses
        across a leader, so statically-known control transfers always land
        on a block start (or on an unfused instruction).  Computed jumps can
        still land mid-block; those addresses simply have no fused entry and
        execute on the per-instruction path.
        """
        cached = getattr(self, "_block_leaders", None)
        if cached is None:
            leaders = {0}
            leaders.update(self.symbols.values())
            for info in self.functions.values():
                leaders.add(info.start)
            for instruction in self.instructions:
                for operand in instruction.operands:
                    if isinstance(operand, Label) and operand.address is not None:
                        leaders.add(operand.address)
            cached = frozenset(leaders)
            self._block_leaders = cached
        return cached

    @property
    def exported_functions(self) -> Tuple[str, ...]:
        return tuple(sorted(self.symbols))

    def entry_address(self, name: Optional[str] = None) -> int:
        target = name or self.entry
        if target not in self.symbols:
            raise KeyError(f"{self.name} does not export {target!r}")
        return self.symbols[target]

    # ------------------------------------------------------------------
    # call-site discovery (used by the call-site analyzer, §5)
    # ------------------------------------------------------------------
    def call_sites(self, callee: Optional[str] = None) -> List[CallSite]:
        """Return all library call sites, optionally filtered by callee name."""
        sites: List[CallSite] = []
        for address, instruction in enumerate(self.instructions):
            if instruction.opcode is not Opcode.CALL or not instruction.operands:
                continue
            target = instruction.operands[0]
            if not isinstance(target, ImportRef):
                continue
            if callee is not None and target.name != callee:
                continue
            caller = self.function_containing(address)
            sites.append(
                CallSite(
                    address=address,
                    callee=target.name,
                    caller=caller.name if caller else "?",
                    source=self.source_of(address),
                )
            )
        return sites

    def called_imports(self) -> Dict[str, int]:
        """Histogram of imported functions by number of call sites."""
        counts: Dict[str, int] = {}
        for site in self.call_sites():
            counts[site.callee] = counts.get(site.callee, 0) + 1
        return counts

    def iter_function_instructions(
        self, name: str
    ) -> Iterator[Tuple[int, Instruction]]:
        info = self.functions.get(name)
        if info is None:
            raise KeyError(f"{self.name} has no function {name!r}")
        for address in range(info.start, info.end):
            yield address, self.instructions[address]

    # ------------------------------------------------------------------
    # line-level helpers (coverage, reports)
    # ------------------------------------------------------------------
    def lines(self) -> Dict[Tuple[str, int], List[int]]:
        """Map each (file, line) to the instruction addresses it produced."""
        table: Dict[Tuple[str, int], List[int]] = {}
        for address, location in self.line_table.items():
            table.setdefault((location.file, location.line), []).append(address)
        return table

    def addresses_for_line(self, file: str, line: int) -> List[int]:
        return [
            address
            for address, location in self.line_table.items()
            if location.file == file and location.line == line
        ]

    # ------------------------------------------------------------------
    # stats / display
    # ------------------------------------------------------------------
    def summary(self) -> str:
        return (
            f"BinaryImage({self.name}: {len(self.instructions)} instructions, "
            f"{len(self.symbols)} symbols, {len(self.imports)} imports, "
            f"{len(self.data_words)} data words)"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.summary()
