"""Memory layout constants shared by the assembler, VM, libc, and analyzer.

The machine is word addressed; every address below refers to a word slot.
Code lives at low addresses (one instruction per address), the data segment
holds globals and string literals, the heap grows upward and the stack grows
downward from :data:`STACK_TOP`.

``errno`` is a single well-known word in the data segment, mirroring the
thread-local ``errno`` of libc.  The library profiler recognizes stores to
this address as errno side effects, and compiled programs read it from the
same address, so errno-check analysis works on machine code alone.
"""

from __future__ import annotations

#: First address of the code segment (instruction index 0).
CODE_BASE = 0x0000

#: First address of the data segment (globals, string literals).
DATA_BASE = 0x10_0000

#: Well-known absolute address of the ``errno`` variable.
ERRNO_ADDRESS = DATA_BASE - 1

#: First address handed out by ``malloc``.
HEAP_BASE = 0x20_0000

#: Size of the heap region, in words.
HEAP_SIZE = 0x10_0000

#: Initial stack pointer; the stack grows towards lower addresses.
STACK_TOP = 0x40_0000

#: Lowest address the stack may reach before the VM reports an overflow.
STACK_LIMIT = 0x38_0000

#: Addresses below this value are considered unmapped; loads or stores there
#: raise a segmentation fault (this is how NULL-pointer dereferences from
#: unchecked ``malloc``/``opendir``/``fopen`` returns crash, as in the paper's
#: Table 1 bugs).
NULL_GUARD_LIMIT = 0x100


def is_null_page(address: int) -> bool:
    """Return True when *address* falls in the guarded NULL page."""
    return 0 <= address < NULL_GUARD_LIMIT or address < 0
