"""Dynamic-linker model with LD_PRELOAD-style resolution.

On Linux, LFI interposes on library calls by generating a shim library and
placing it ahead of the real libraries via ``LD_PRELOAD``; the dynamic
linker then resolves each imported symbol to the first provider that exports
it.  :class:`DynamicLinker` reproduces exactly that resolution order so the
fault-injection gate is wired in the same way a preloaded shim would be:

* *preloaded* providers are searched first (these are the LFI shims), then
* the regular libraries, in link order.

A provider is anything with a ``name`` attribute, an ``exports()`` method
returning the symbol names it defines, and a ``lookup(symbol)`` method
returning an opaque target (a Python callable for the simulated libc, or a
``(image, address)`` pair for code living in another synthetic binary).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Protocol, Sequence


class SymbolProvider(Protocol):
    """Interface of anything the linker can resolve symbols against."""

    name: str

    def exports(self) -> Iterable[str]:  # pragma: no cover - protocol
        ...

    def lookup(self, symbol: str) -> Any:  # pragma: no cover - protocol
        ...


class UnresolvedSymbolError(Exception):
    """Raised when an import cannot be satisfied by any provider."""

    def __init__(self, symbol: str, searched: Sequence[str]) -> None:
        super().__init__(
            f"unresolved symbol {symbol!r} (searched: {', '.join(searched) or 'nothing'})"
        )
        self.symbol = symbol
        self.searched = list(searched)


@dataclass(frozen=True)
class ResolvedImport:
    """Result of resolving one imported symbol."""

    symbol: str
    provider: str
    target: Any
    preloaded: bool


class SimpleLibrary:
    """A dictionary-backed provider, handy for tests and native libraries."""

    def __init__(self, name: str, table: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self._table: Dict[str, Any] = dict(table or {})

    def define(self, symbol: str, target: Any) -> None:
        self._table[symbol] = target

    def exports(self) -> Iterable[str]:
        return tuple(self._table)

    def lookup(self, symbol: str) -> Any:
        return self._table[symbol]


class DynamicLinker:
    """Resolves imports against preloaded shims first, then real libraries."""

    def __init__(
        self,
        libraries: Optional[Sequence[SymbolProvider]] = None,
        preload: Optional[Sequence[SymbolProvider]] = None,
    ) -> None:
        self._preload: List[SymbolProvider] = list(preload or [])
        self._libraries: List[SymbolProvider] = list(libraries or [])
        self._cache: Dict[str, ResolvedImport] = {}

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def preload_library(self, provider: SymbolProvider) -> None:
        """Add a shim provider at the front of the search order."""
        self._preload.insert(0, provider)
        self._cache.clear()

    def add_library(self, provider: SymbolProvider) -> None:
        self._libraries.append(provider)
        self._cache.clear()

    def remove_preloaded(self, name: str) -> None:
        self._preload = [p for p in self._preload if p.name != name]
        self._cache.clear()

    @property
    def search_order(self) -> List[str]:
        return [p.name for p in self._preload] + [p.name for p in self._libraries]

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve(self, symbol: str) -> ResolvedImport:
        cached = self._cache.get(symbol)
        if cached is not None:
            return cached
        for provider in self._preload:
            if symbol in set(provider.exports()):
                resolved = ResolvedImport(
                    symbol=symbol,
                    provider=provider.name,
                    target=provider.lookup(symbol),
                    preloaded=True,
                )
                self._cache[symbol] = resolved
                return resolved
        for provider in self._libraries:
            if symbol in set(provider.exports()):
                resolved = ResolvedImport(
                    symbol=symbol,
                    provider=provider.name,
                    target=provider.lookup(symbol),
                    preloaded=False,
                )
                self._cache[symbol] = resolved
                return resolved
        raise UnresolvedSymbolError(symbol, self.search_order)

    def try_resolve(self, symbol: str) -> Optional[ResolvedImport]:
        try:
            return self.resolve(symbol)
        except UnresolvedSymbolError:
            return None

    def resolve_all(self, symbols: Iterable[str]) -> Dict[str, ResolvedImport]:
        return {symbol: self.resolve(symbol) for symbol in symbols}


__all__ = [
    "DynamicLinker",
    "ResolvedImport",
    "SimpleLibrary",
    "SymbolProvider",
    "UnresolvedSymbolError",
]
