"""Synthetic instruction-set architecture used as the binary substrate.

The LFI paper operates on x86 binaries: the library profiler and the call
site analyzer disassemble machine code, build control-flow graphs and track
copies of the return register.  This package provides an equivalent, fully
self-contained substrate: a small register machine with mov/cmp/branch/call
semantics, a binary image format with symbol tables, import tables and a
DWARF-like line table, a two-pass assembler, a disassembler and a dynamic
linker model (LD_PRELOAD-style resolution order).

Public entry points:

* :class:`repro.isa.instructions.Instruction` and the operand classes
  (:class:`Reg`, :class:`Imm`, :class:`Mem`, :class:`Label`,
  :class:`DataRef`, :class:`ImportRef`).
* :class:`repro.isa.binary.BinaryImage` — a loaded program or library.
* :class:`repro.isa.assembler.Assembler` / :func:`assemble_text`.
* :class:`repro.isa.disassembler.Disassembler`.
* :class:`repro.isa.linker.DynamicLinker`.
"""

from repro.isa.instructions import (
    DataRef,
    Imm,
    ImportRef,
    Instruction,
    Label,
    Mem,
    Opcode,
    Reg,
)
from repro.isa.binary import BinaryImage, SourceLocation, Symbol
from repro.isa.assembler import Assembler, AssemblyError, assemble_text
from repro.isa.disassembler import Disassembler, format_instruction
from repro.isa.linker import DynamicLinker, ResolvedImport

__all__ = [
    "Assembler",
    "AssemblyError",
    "BinaryImage",
    "DataRef",
    "Disassembler",
    "DynamicLinker",
    "Imm",
    "ImportRef",
    "Instruction",
    "Label",
    "Mem",
    "Opcode",
    "Reg",
    "ResolvedImport",
    "SourceLocation",
    "Symbol",
    "assemble_text",
    "format_instruction",
]
