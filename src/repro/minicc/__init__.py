"""mini-C: a small C-like language compiled to the synthetic ISA.

The simulated target applications (the BIND/Git analogs and the compiled
PBFT checkpoint module) are written in this language so that the LFI
call-site analyzer operates on *real compiled control flow*: error checks
written as ``if (fd < 0)`` or ``if (ptr == 0)`` in mini-C become the
``cmp``/conditional-jump patterns that Algorithm 1's dataflow analysis
tracks, and omitted checks become genuinely unchecked call sites.

Language summary
----------------
* single ``int`` word type; pointers and handles are just words
* globals (optionally arrays), locals (optionally arrays), parameters
* ``if``/``else``, ``while``, ``for``, ``break``, ``continue``, ``return``
* expressions: integer and string literals, variables, assignment, calls,
  ``+ - * / %``, comparisons, ``&& || !``, unary ``-``, dereference ``*p``,
  address-of ``&x``, indexing ``a[i]``
* calls to functions not defined in the file are treated as imports from
  shared libraries — the program/library boundary where LFI injects faults

Public API: :func:`repro.minicc.compiler.compile_source`.
"""

from repro.minicc.compiler import CompilationError, compile_source
from repro.minicc.lexer import LexerError, tokenize
from repro.minicc.parser import ParseError, parse

__all__ = [
    "CompilationError",
    "LexerError",
    "ParseError",
    "compile_source",
    "parse",
    "tokenize",
]
