"""Tokenizer for mini-C."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

KEYWORDS = frozenset(
    {"int", "if", "else", "while", "for", "return", "break", "continue"}
)

# Multi-character operators must be listed before their prefixes.
OPERATORS = (
    "==", "!=", "<=", ">=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&",
    "(", ")", "{", "}", "[", "]", ";", ",",
)


class LexerError(Exception):
    """Raised for characters or literals the tokenizer cannot handle."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class Token:
    kind: str  # "int", "ident", "keyword", "string", "op", "eof"
    text: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> List[Token]:
    """Convert mini-C source text into a token list (ending with ``eof``)."""
    tokens: List[Token] = []
    line = 1
    index = 0
    length = len(source)

    while index < length:
        char = source[index]

        if char == "\n":
            line += 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            continue

        # comments: //... and /* ... */
        if source.startswith("//", index):
            end = source.find("\n", index)
            index = length if end == -1 else end
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end == -1:
                raise LexerError("unterminated block comment", line)
            line += source.count("\n", index, end)
            index = end + 2
            continue

        if char.isdigit():
            start = index
            while index < length and (source[index].isdigit() or source[index] in "xXabcdefABCDEF"):
                index += 1
            text = source[start:index]
            try:
                int(text, 0)
            except ValueError as exc:
                raise LexerError(f"bad integer literal {text!r}", line) from exc
            tokens.append(Token("int", text, line))
            continue

        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            continue

        if char == '"':
            start = index + 1
            index = start
            value = []
            while index < length and source[index] != '"':
                if source[index] == "\\" and index + 1 < length:
                    escape = source[index + 1]
                    value.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\", "0": "\0"}.get(escape, escape))
                    index += 2
                    continue
                if source[index] == "\n":
                    raise LexerError("newline inside string literal", line)
                value.append(source[index])
                index += 1
            if index >= length:
                raise LexerError("unterminated string literal", line)
            index += 1
            tokens.append(Token("string", "".join(value), line))
            continue

        if char == "'":
            if index + 2 < length and source[index + 2] == "'":
                tokens.append(Token("int", str(ord(source[index + 1])), line))
                index += 3
                continue
            raise LexerError("bad character literal", line)

        matched = False
        for operator in OPERATORS:
            if source.startswith(operator, index):
                tokens.append(Token("op", operator, line))
                index += len(operator)
                matched = True
                break
        if matched:
            continue

        raise LexerError(f"unexpected character {char!r}", line)

    tokens.append(Token("eof", "", line))
    return tokens


def iter_tokens(source: str) -> Iterator[Token]:
    yield from tokenize(source)


__all__ = ["KEYWORDS", "LexerError", "Token", "iter_tokens", "tokenize"]
