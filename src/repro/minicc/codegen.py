"""Code generator: mini-C AST to synthetic machine code.

The generator deliberately produces the instruction patterns the LFI
call-site analyzer expects from compiled C:

* a library call leaves its result in ``r0``;
* assignments spill the result to a stack slot or a global;
* ``if (x < 0)`` / ``if (p == 0)`` compile to ``cmp`` of a return-value copy
  against a literal followed by a conditional jump (an *inequality* or
  *equality* check respectively, feeding Chk_ineq / Chk_eq in Algorithm 1);
* omitted checks simply produce no ``cmp`` — a genuinely unchecked site.

Every emitted instruction carries a source location, which is the DWARF
analog used by call-stack triggers, the analyzer's reports, and the
coverage tooling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa import layout
from repro.isa.assembler import Assembler
from repro.isa.binary import BinaryImage, SourceLocation
from repro.isa.instructions import DataRef, Imm, ImportRef, Label, Mem, Opcode, Reg
from repro.minicc import ast_nodes as ast
from repro.minicc.semantic import ERRNO_VARIABLE, ProgramSymbols, SemanticError

_R0 = Reg("r0")
_R1 = Reg("r1")
_R2 = Reg("r2")
_SP = Reg("sp")
_BP = Reg("bp")

#: Conditional jump taken when the comparison holds.
_JUMP_WHEN_TRUE = {
    "==": Opcode.JE,
    "!=": Opcode.JNE,
    "<": Opcode.JL,
    "<=": Opcode.JLE,
    ">": Opcode.JG,
    ">=": Opcode.JGE,
}

#: Conditional jump taken when the comparison does NOT hold.
_JUMP_WHEN_FALSE = {
    "==": Opcode.JNE,
    "!=": Opcode.JE,
    "<": Opcode.JGE,
    "<=": Opcode.JG,
    ">": Opcode.JLE,
    ">=": Opcode.JL,
}

_COMPARISON_OPS = frozenset(_JUMP_WHEN_TRUE)

_ARITHMETIC_OPS = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.MOD,
}


@dataclass
class _LocalSlot:
    offset: int            # address is bp - offset
    is_array: bool = False
    size: int = 1


@dataclass
class _FunctionContext:
    name: str
    parameters: Dict[str, int] = field(default_factory=dict)  # name -> index
    locals: Dict[str, _LocalSlot] = field(default_factory=dict)
    frame_size: int = 0
    break_labels: List[str] = field(default_factory=list)
    continue_labels: List[str] = field(default_factory=list)


class CodeGenerator:
    """Translate one checked mini-C program into a :class:`BinaryImage`."""

    def __init__(
        self,
        program: ast.Program,
        symbols: ProgramSymbols,
        name: str,
        source_file: Optional[str] = None,
        entry: str = "main",
    ) -> None:
        self.program = program
        self.symbols = symbols
        self.assembler = Assembler(name, entry=entry)
        self.source_file = source_file or f"{name}.c"
        self._defined_functions = set(program.function_names())
        self._strings: Dict[str, str] = {}
        self._label_counter = 0
        self._current: Optional[_FunctionContext] = None

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def generate(self) -> BinaryImage:
        for declaration in self.program.globals:
            self.assembler.add_global(
                declaration.name,
                size=declaration.array_size or 1,
                initial=declaration.initializer,
            )
        for function in self.program.functions:
            self._generate_function(function)
        return self.assembler.finish()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _new_label(self, prefix: str) -> str:
        self._label_counter += 1
        return f"{prefix}_{self._label_counter}"

    def _location(self, node: ast.Node) -> SourceLocation:
        function = self._current.name if self._current is not None else ""
        return SourceLocation(file=self.source_file, line=node.line, function=function)

    def _emit(self, node: ast.Node, opcode: Opcode, *operands) -> None:
        self.assembler.emit(opcode, *operands, source=self._location(node))

    def _intern_string(self, text: str) -> str:
        label = self._strings.get(text)
        if label is None:
            label = f"str_{len(self._strings)}"
            self._strings[text] = label
            self.assembler.add_string(label, text)
        return label

    # ------------------------------------------------------------------
    # function layout
    # ------------------------------------------------------------------
    def _layout_function(self, function: ast.FunctionDef) -> _FunctionContext:
        context = _FunctionContext(name=function.name)
        for index, parameter in enumerate(function.parameters):
            context.parameters[parameter.name] = index
        running = 0

        def place_declarations(block: ast.Block) -> None:
            nonlocal running
            for statement in block.statements:
                if isinstance(statement, ast.VarDecl):
                    size = statement.array_size or 1
                    running += size
                    context.locals[statement.name] = _LocalSlot(
                        offset=running, is_array=statement.array_size is not None, size=size
                    )
                elif isinstance(statement, ast.If):
                    place_declarations(statement.then_body)
                    if statement.else_body is not None:
                        place_declarations(statement.else_body)
                elif isinstance(statement, ast.While):
                    place_declarations(statement.body)
                elif isinstance(statement, ast.For):
                    if isinstance(statement.init, ast.VarDecl):
                        size = statement.init.array_size or 1
                        running += size
                        context.locals[statement.init.name] = _LocalSlot(
                            offset=running,
                            is_array=statement.init.array_size is not None,
                            size=size,
                        )
                    place_declarations(statement.body)
                elif isinstance(statement, ast.Block):
                    place_declarations(statement)

        assert function.body is not None
        place_declarations(function.body)
        context.frame_size = running
        return context

    # ------------------------------------------------------------------
    # function generation
    # ------------------------------------------------------------------
    def _generate_function(self, function: ast.FunctionDef) -> None:
        context = self._layout_function(function)
        self._current = context
        self.assembler.begin_function(function.name)

        # Prologue.
        self._emit(function, Opcode.PUSH, _BP)
        self._emit(function, Opcode.MOV, _BP, _SP)
        if context.frame_size:
            self._emit(function, Opcode.SUB, _SP, Imm(context.frame_size))

        assert function.body is not None
        self._generate_block(function.body)

        # Implicit `return 0` for functions that fall off the end.
        self._emit(function, Opcode.MOV, _R0, Imm(0))
        self._emit_epilogue(function)
        self.assembler.end_function()
        self._current = None

    def _emit_epilogue(self, node: ast.Node) -> None:
        self._emit(node, Opcode.MOV, _SP, _BP)
        self._emit(node, Opcode.POP, _BP)
        self._emit(node, Opcode.RET)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _generate_block(self, block: ast.Block) -> None:
        for statement in block.statements:
            self._generate_statement(statement)

    def _generate_statement(self, node: ast.Node) -> None:
        if isinstance(node, ast.VarDecl):
            if node.initializer is not None:
                self._generate_expression(node.initializer)
                self._store_variable(node, node.name)
        elif isinstance(node, ast.ExprStatement):
            if node.expression is not None:
                self._generate_expression(node.expression)
        elif isinstance(node, ast.If):
            self._generate_if(node)
        elif isinstance(node, ast.While):
            self._generate_while(node)
        elif isinstance(node, ast.For):
            self._generate_for(node)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self._generate_expression(node.value)
            else:
                self._emit(node, Opcode.MOV, _R0, Imm(0))
            self._emit_epilogue(node)
        elif isinstance(node, ast.Break):
            assert self._current is not None
            if not self._current.break_labels:
                raise SemanticError("break outside of a loop", node.line)
            self._emit(node, Opcode.JMP, Label(self._current.break_labels[-1]))
        elif isinstance(node, ast.Continue):
            assert self._current is not None
            if not self._current.continue_labels:
                raise SemanticError("continue outside of a loop", node.line)
            self._emit(node, Opcode.JMP, Label(self._current.continue_labels[-1]))
        elif isinstance(node, ast.Block):
            self._generate_block(node)
        else:
            raise SemanticError(f"cannot generate statement {type(node).__name__}", node.line)

    def _generate_if(self, node: ast.If) -> None:
        else_label = self._new_label("else")
        end_label = self._new_label("endif")
        target = else_label if node.else_body is not None else end_label
        self._branch_if_false(node.condition, target)
        self._generate_block(node.then_body)
        if node.else_body is not None:
            self._emit(node, Opcode.JMP, Label(end_label))
            self.assembler.mark_label(else_label)
            self._generate_block(node.else_body)
        self.assembler.mark_label(end_label)
        # A label must precede an instruction; emit a NOP anchor only when the
        # block would otherwise end the function (handled by the implicit
        # return emitted by the caller), so nothing to do here.

    def _generate_while(self, node: ast.While) -> None:
        assert self._current is not None
        start_label = self._new_label("while")
        end_label = self._new_label("endwhile")
        self.assembler.mark_label(start_label)
        self._branch_if_false(node.condition, end_label)
        self._current.break_labels.append(end_label)
        self._current.continue_labels.append(start_label)
        self._generate_block(node.body)
        self._current.break_labels.pop()
        self._current.continue_labels.pop()
        self._emit(node, Opcode.JMP, Label(start_label))
        self.assembler.mark_label(end_label)

    def _generate_for(self, node: ast.For) -> None:
        assert self._current is not None
        start_label = self._new_label("for")
        step_label = self._new_label("forstep")
        end_label = self._new_label("endfor")
        if node.init is not None:
            self._generate_statement(node.init)
        self.assembler.mark_label(start_label)
        if node.condition is not None:
            self._branch_if_false(node.condition, end_label)
        self._current.break_labels.append(end_label)
        self._current.continue_labels.append(step_label)
        self._generate_block(node.body)
        self._current.break_labels.pop()
        self._current.continue_labels.pop()
        self.assembler.mark_label(step_label)
        if node.step is not None:
            self._generate_expression(node.step)
        self._emit(node, Opcode.JMP, Label(start_label))
        self.assembler.mark_label(end_label)

    # ------------------------------------------------------------------
    # conditions (branching form, used by if/while/for)
    # ------------------------------------------------------------------
    def _branch_if_false(self, condition: ast.Node, target: str) -> None:
        if isinstance(condition, ast.BinaryOp) and condition.op in _COMPARISON_OPS:
            self._compare_operands(condition)
            self._emit(condition, _JUMP_WHEN_FALSE[condition.op], Label(target))
            return
        if isinstance(condition, ast.BinaryOp) and condition.op == "&&":
            self._branch_if_false(condition.left, target)
            self._branch_if_false(condition.right, target)
            return
        if isinstance(condition, ast.BinaryOp) and condition.op == "||":
            true_label = self._new_label("or_true")
            self._branch_if_true(condition.left, true_label)
            self._branch_if_false(condition.right, target)
            self.assembler.mark_label(true_label)
            return
        if isinstance(condition, ast.UnaryOp) and condition.op == "!":
            self._branch_if_true(condition.operand, target)
            return
        self._generate_expression(condition)
        self._emit(condition, Opcode.CMP, _R0, Imm(0))
        self._emit(condition, Opcode.JE, Label(target))

    def _branch_if_true(self, condition: ast.Node, target: str) -> None:
        if isinstance(condition, ast.BinaryOp) and condition.op in _COMPARISON_OPS:
            self._compare_operands(condition)
            self._emit(condition, _JUMP_WHEN_TRUE[condition.op], Label(target))
            return
        if isinstance(condition, ast.BinaryOp) and condition.op == "&&":
            false_label = self._new_label("and_false")
            self._branch_if_false(condition.left, false_label)
            self._branch_if_true(condition.right, target)
            self.assembler.mark_label(false_label)
            return
        if isinstance(condition, ast.BinaryOp) and condition.op == "||":
            self._branch_if_true(condition.left, target)
            self._branch_if_true(condition.right, target)
            return
        if isinstance(condition, ast.UnaryOp) and condition.op == "!":
            self._branch_if_false(condition.operand, target)
            return
        self._generate_expression(condition)
        self._emit(condition, Opcode.CMP, _R0, Imm(0))
        self._emit(condition, Opcode.JNE, Label(target))

    def _compare_operands(self, node: ast.BinaryOp) -> None:
        """Leave flags set for ``left <op> right``.

        When the right-hand side is a literal the comparison is emitted as
        ``cmp <copy-of-left>, <literal>`` directly, which is the exact shape
        the call-site analyzer's dataflow pass looks for.
        """
        if isinstance(node.right, ast.IntLiteral):
            self._generate_expression(node.left)
            self._emit(node, Opcode.CMP, _R0, Imm(node.right.value))
            return
        if isinstance(node.right, ast.UnaryOp) and node.right.op == "-" and isinstance(
            node.right.operand, ast.IntLiteral
        ):
            self._generate_expression(node.left)
            self._emit(node, Opcode.CMP, _R0, Imm(-node.right.operand.value))
            return
        self._generate_expression(node.left)
        self._emit(node, Opcode.PUSH, _R0)
        self._generate_expression(node.right)
        self._emit(node, Opcode.MOV, _R1, _R0)
        self._emit(node, Opcode.POP, _R0)
        self._emit(node, Opcode.CMP, _R0, _R1)

    # ------------------------------------------------------------------
    # expressions (value form, result in r0)
    # ------------------------------------------------------------------
    def _generate_expression(self, node: ast.Node) -> None:
        if isinstance(node, ast.IntLiteral):
            self._emit(node, Opcode.MOV, _R0, Imm(node.value))
        elif isinstance(node, ast.StringLiteral):
            self._emit(node, Opcode.MOV, _R0, DataRef(self._intern_string(node.value)))
        elif isinstance(node, ast.VarRef):
            self._load_variable(node, node.name)
        elif isinstance(node, ast.UnaryOp):
            self._generate_unary(node)
        elif isinstance(node, ast.BinaryOp):
            self._generate_binary(node)
        elif isinstance(node, ast.Assignment):
            self._generate_assignment(node)
        elif isinstance(node, ast.Deref):
            self._generate_expression(node.pointer)
            self._emit(node, Opcode.MOV, _R1, _R0)
            self._emit(node, Opcode.MOV, _R0, Mem("r1", 0))
        elif isinstance(node, ast.AddressOf):
            assert isinstance(node.variable, ast.VarRef)
            self._load_address(node, node.variable.name)
        elif isinstance(node, ast.Index):
            self._generate_index_address(node)
            self._emit(node, Opcode.MOV, _R1, _R0)
            self._emit(node, Opcode.MOV, _R0, Mem("r1", 0))
        elif isinstance(node, ast.Call):
            self._generate_call(node)
        else:
            raise SemanticError(f"cannot generate expression {type(node).__name__}", node.line)

    def _generate_unary(self, node: ast.UnaryOp) -> None:
        self._generate_expression(node.operand)
        if node.op == "-":
            self._emit(node, Opcode.NEG, _R0)
        elif node.op == "!":
            self._emit(node, Opcode.NOT, _R0)
        else:
            raise SemanticError(f"unknown unary operator {node.op!r}", node.line)

    def _generate_binary(self, node: ast.BinaryOp) -> None:
        if node.op in _ARITHMETIC_OPS:
            self._generate_expression(node.left)
            self._emit(node, Opcode.PUSH, _R0)
            self._generate_expression(node.right)
            self._emit(node, Opcode.MOV, _R1, _R0)
            self._emit(node, Opcode.POP, _R0)
            self._emit(node, _ARITHMETIC_OPS[node.op], _R0, _R1)
            return
        if node.op in _COMPARISON_OPS:
            self._compare_operands(node)
            end_label = self._new_label("cmp_end")
            self._emit(node, Opcode.MOV, _R0, Imm(1))
            self._emit(node, _JUMP_WHEN_TRUE[node.op], Label(end_label))
            self._emit(node, Opcode.MOV, _R0, Imm(0))
            self.assembler.mark_label(end_label)
            self._emit(node, Opcode.NOP)
            return
        if node.op in ("&&", "||"):
            false_label = self._new_label("bool_false")
            true_label = self._new_label("bool_true")
            end_label = self._new_label("bool_end")
            if node.op == "&&":
                self._branch_if_false(node, false_label)
            else:
                self._branch_if_true(node, true_label)
                self._emit(node, Opcode.JMP, Label(false_label))
                self.assembler.mark_label(true_label)
            if node.op == "&&":
                self._emit(node, Opcode.MOV, _R0, Imm(1))
                self._emit(node, Opcode.JMP, Label(end_label))
                self.assembler.mark_label(false_label)
                self._emit(node, Opcode.MOV, _R0, Imm(0))
            else:
                self._emit(node, Opcode.MOV, _R0, Imm(1))
                self._emit(node, Opcode.JMP, Label(end_label))
                self.assembler.mark_label(false_label)
                self._emit(node, Opcode.MOV, _R0, Imm(0))
            self.assembler.mark_label(end_label)
            self._emit(node, Opcode.NOP)
            return
        raise SemanticError(f"unknown binary operator {node.op!r}", node.line)

    def _generate_assignment(self, node: ast.Assignment) -> None:
        target = node.target
        if isinstance(target, ast.VarRef):
            self._generate_expression(node.value)
            self._store_variable(node, target.name)
            return
        if isinstance(target, ast.Deref):
            self._generate_expression(node.value)
            self._emit(node, Opcode.PUSH, _R0)
            self._generate_expression(target.pointer)
            self._emit(node, Opcode.MOV, _R1, _R0)
            self._emit(node, Opcode.POP, _R0)
            self._emit(node, Opcode.MOV, Mem("r1", 0), _R0)
            return
        if isinstance(target, ast.Index):
            self._generate_expression(node.value)
            self._emit(node, Opcode.PUSH, _R0)
            self._generate_index_address(target)
            self._emit(node, Opcode.MOV, _R1, _R0)
            self._emit(node, Opcode.POP, _R0)
            self._emit(node, Opcode.MOV, Mem("r1", 0), _R0)
            return
        raise SemanticError("invalid assignment target", node.line)

    def _generate_index_address(self, node: ast.Index) -> None:
        """Leave the address of ``base[index]`` in r0."""
        self._generate_expression(node.base)
        self._emit(node, Opcode.PUSH, _R0)
        self._generate_expression(node.index)
        self._emit(node, Opcode.MOV, _R1, _R0)
        self._emit(node, Opcode.POP, _R0)
        self._emit(node, Opcode.ADD, _R0, _R1)

    def _generate_call(self, node: ast.Call) -> None:
        for argument in reversed(node.args):
            self._generate_expression(argument)
            self._emit(node, Opcode.PUSH, _R0)
        if node.name in self._defined_functions:
            self._emit(node, Opcode.CALL, Label(node.name))
        else:
            self._emit(node, Opcode.CALL, ImportRef(node.name))
        if node.args:
            self._emit(node, Opcode.ADD, _SP, Imm(len(node.args)))

    # ------------------------------------------------------------------
    # variable access
    # ------------------------------------------------------------------
    def _variable_kind(self, name: str) -> Tuple[str, object]:
        assert self._current is not None
        if name == ERRNO_VARIABLE:
            return "errno", None
        if name in self._current.locals:
            return "local", self._current.locals[name]
        if name in self._current.parameters:
            return "param", self._current.parameters[name]
        if name in self.symbols.globals:
            return "global", self.symbols.globals[name]
        raise SemanticError(f"use of undeclared variable {name!r}", 0)

    def _load_variable(self, node: ast.Node, name: str) -> None:
        kind, info = self._variable_kind(name)
        if kind == "errno":
            self._emit(node, Opcode.MOV, _R0, Mem(None, layout.ERRNO_ADDRESS))
        elif kind == "local":
            slot = info
            if slot.is_array:
                self._emit(node, Opcode.MOV, _R0, _BP)
                self._emit(node, Opcode.SUB, _R0, Imm(slot.offset))
            else:
                self._emit(node, Opcode.MOV, _R0, Mem("bp", -slot.offset))
        elif kind == "param":
            self._emit(node, Opcode.MOV, _R0, Mem("bp", 2 + int(info)))
        else:  # global
            if info is not None:  # array: value is its address
                self._emit(node, Opcode.MOV, _R0, DataRef(name))
            else:
                self._emit(node, Opcode.MOV, _R0, Mem(None, 0, symbol=name))

    def _store_variable(self, node: ast.Node, name: str) -> None:
        kind, info = self._variable_kind(name)
        if kind == "errno":
            self._emit(node, Opcode.MOV, Mem(None, layout.ERRNO_ADDRESS), _R0)
        elif kind == "local":
            slot = info
            if slot.is_array:
                raise SemanticError(f"cannot assign to array {name!r}", node.line)
            self._emit(node, Opcode.MOV, Mem("bp", -slot.offset), _R0)
        elif kind == "param":
            self._emit(node, Opcode.MOV, Mem("bp", 2 + int(info)), _R0)
        else:
            if info is not None:
                raise SemanticError(f"cannot assign to array {name!r}", node.line)
            self._emit(node, Opcode.MOV, Mem(None, 0, symbol=name), _R0)

    def _load_address(self, node: ast.Node, name: str) -> None:
        kind, info = self._variable_kind(name)
        if kind == "errno":
            self._emit(node, Opcode.MOV, _R0, Imm(layout.ERRNO_ADDRESS))
        elif kind == "local":
            slot = info
            self._emit(node, Opcode.MOV, _R0, _BP)
            self._emit(node, Opcode.SUB, _R0, Imm(slot.offset))
        elif kind == "param":
            self._emit(node, Opcode.MOV, _R0, _BP)
            self._emit(node, Opcode.ADD, _R0, Imm(2 + int(info)))
        else:
            self._emit(node, Opcode.MOV, _R0, DataRef(name))


__all__ = ["CodeGenerator"]
