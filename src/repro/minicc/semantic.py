"""Semantic checks for mini-C programs.

The checker catches the mistakes that would otherwise turn into confusing
code-generation or runtime errors: use of undeclared variables, duplicate
declarations, wrong arity for calls to locally defined functions,
``break``/``continue`` outside loops, and assignment to non-lvalues (the
parser already rejects most of the latter).  Calls to functions that are not
defined in the file are *not* errors — they become library imports, which is
precisely the program/library boundary LFI targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.minicc import ast_nodes as ast

#: Name usable like a variable in mini-C that maps to the libc errno word.
ERRNO_VARIABLE = "errno"


class SemanticError(Exception):
    """Raised when a mini-C program is structurally invalid."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass
class FunctionSymbols:
    """Name resolution result for one function."""

    name: str
    parameters: List[str] = field(default_factory=list)
    locals: Dict[str, Optional[int]] = field(default_factory=dict)  # name -> array size or None
    called_imports: Set[str] = field(default_factory=set)


@dataclass
class ProgramSymbols:
    """Name resolution result for the whole program."""

    globals: Dict[str, Optional[int]] = field(default_factory=dict)
    functions: Dict[str, FunctionSymbols] = field(default_factory=dict)
    imports: Set[str] = field(default_factory=set)


class SemanticChecker:
    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.symbols = ProgramSymbols()
        self._defined_functions = {function.name for function in program.functions}
        self._function_arity = {
            function.name: len(function.parameters) for function in program.functions
        }

    # ------------------------------------------------------------------
    def check(self) -> ProgramSymbols:
        for declaration in self.program.globals:
            if declaration.name in self.symbols.globals:
                raise SemanticError(f"duplicate global {declaration.name!r}", declaration.line)
            if declaration.name in self._defined_functions:
                raise SemanticError(
                    f"global {declaration.name!r} collides with a function name", declaration.line
                )
            self.symbols.globals[declaration.name] = declaration.array_size

        seen_functions: Set[str] = set()
        for function in self.program.functions:
            if function.name in seen_functions:
                raise SemanticError(f"duplicate function {function.name!r}", function.line)
            seen_functions.add(function.name)
            self.symbols.functions[function.name] = self._check_function(function)

        for function_symbols in self.symbols.functions.values():
            self.symbols.imports.update(function_symbols.called_imports)
        return self.symbols

    # ------------------------------------------------------------------
    def _check_function(self, function: ast.FunctionDef) -> FunctionSymbols:
        symbols = FunctionSymbols(name=function.name)
        for parameter in function.parameters:
            if parameter.name in symbols.parameters:
                raise SemanticError(
                    f"duplicate parameter {parameter.name!r} in {function.name!r}", parameter.line
                )
            symbols.parameters.append(parameter.name)
        assert function.body is not None
        self._check_block(function.body, symbols, loop_depth=0)
        return symbols

    def _check_block(self, block: ast.Block, symbols: FunctionSymbols, loop_depth: int) -> None:
        for statement in block.statements:
            self._check_statement(statement, symbols, loop_depth)

    def _check_statement(self, node: ast.Node, symbols: FunctionSymbols, loop_depth: int) -> None:
        if isinstance(node, ast.VarDecl):
            if node.name in symbols.locals or node.name in symbols.parameters:
                raise SemanticError(f"duplicate local {node.name!r}", node.line)
            if node.array_size is not None and node.array_size <= 0:
                raise SemanticError(f"array {node.name!r} must have positive size", node.line)
            symbols.locals[node.name] = node.array_size
            if node.initializer is not None:
                if node.array_size is not None:
                    raise SemanticError(
                        f"array {node.name!r} cannot have a scalar initializer", node.line
                    )
                self._check_expression(node.initializer, symbols)
        elif isinstance(node, ast.ExprStatement):
            if node.expression is not None:
                self._check_expression(node.expression, symbols)
        elif isinstance(node, ast.If):
            self._check_expression(node.condition, symbols)
            self._check_block(node.then_body, symbols, loop_depth)
            if node.else_body is not None:
                self._check_block(node.else_body, symbols, loop_depth)
        elif isinstance(node, ast.While):
            self._check_expression(node.condition, symbols)
            self._check_block(node.body, symbols, loop_depth + 1)
        elif isinstance(node, ast.For):
            if node.init is not None:
                self._check_statement(node.init, symbols, loop_depth)
            if node.condition is not None:
                self._check_expression(node.condition, symbols)
            if node.step is not None:
                self._check_expression(node.step, symbols)
            self._check_block(node.body, symbols, loop_depth + 1)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self._check_expression(node.value, symbols)
        elif isinstance(node, (ast.Break, ast.Continue)):
            if loop_depth == 0:
                keyword = "break" if isinstance(node, ast.Break) else "continue"
                raise SemanticError(f"{keyword!r} outside of a loop", node.line)
        elif isinstance(node, ast.Block):
            self._check_block(node, symbols, loop_depth)
        else:
            raise SemanticError(f"unexpected statement node {type(node).__name__}", node.line)

    # ------------------------------------------------------------------
    def _check_expression(self, node: Optional[ast.Node], symbols: FunctionSymbols) -> None:
        if node is None:
            return
        if isinstance(node, (ast.IntLiteral, ast.StringLiteral)):
            return
        if isinstance(node, ast.VarRef):
            self._check_variable(node.name, node.line, symbols)
            return
        if isinstance(node, ast.UnaryOp):
            self._check_expression(node.operand, symbols)
            return
        if isinstance(node, ast.BinaryOp):
            self._check_expression(node.left, symbols)
            self._check_expression(node.right, symbols)
            return
        if isinstance(node, ast.Assignment):
            self._check_expression(node.target, symbols)
            self._check_expression(node.value, symbols)
            return
        if isinstance(node, ast.Deref):
            self._check_expression(node.pointer, symbols)
            return
        if isinstance(node, ast.AddressOf):
            assert isinstance(node.variable, ast.VarRef)
            self._check_variable(node.variable.name, node.line, symbols)
            return
        if isinstance(node, ast.Index):
            self._check_expression(node.base, symbols)
            self._check_expression(node.index, symbols)
            return
        if isinstance(node, ast.Call):
            for argument in node.args:
                self._check_expression(argument, symbols)
            if node.name in self._defined_functions:
                expected = self._function_arity[node.name]
                if len(node.args) != expected:
                    raise SemanticError(
                        f"call to {node.name!r} passes {len(node.args)} arguments, "
                        f"expected {expected}",
                        node.line,
                    )
            else:
                symbols.called_imports.add(node.name)
            return
        raise SemanticError(f"unexpected expression node {type(node).__name__}", node.line)

    def _check_variable(self, name: str, line: int, symbols: FunctionSymbols) -> None:
        if name == ERRNO_VARIABLE:
            return
        if name in symbols.locals or name in symbols.parameters:
            return
        if name in self.symbols.globals:
            return
        if name in self._defined_functions:
            # Bare references to functions only make sense as call targets;
            # the parser folds those into Call nodes, so this is an error.
            raise SemanticError(f"function {name!r} used as a variable", line)
        raise SemanticError(f"use of undeclared variable {name!r}", line)


def check(program: ast.Program) -> ProgramSymbols:
    return SemanticChecker(program).check()


__all__ = [
    "ERRNO_VARIABLE",
    "FunctionSymbols",
    "ProgramSymbols",
    "SemanticChecker",
    "SemanticError",
    "check",
]
