"""Compilation driver: mini-C source text to a :class:`BinaryImage`."""

from __future__ import annotations

from typing import Optional

from repro.isa.binary import BinaryImage
from repro.minicc.codegen import CodeGenerator
from repro.minicc.lexer import LexerError
from repro.minicc.parser import ParseError, parse
from repro.minicc.semantic import SemanticChecker, SemanticError


class CompilationError(Exception):
    """Raised when a mini-C source file cannot be compiled."""

    def __init__(self, name: str, cause: Exception) -> None:
        super().__init__(f"{name}: {cause}")
        self.name = name
        self.cause = cause


def compile_source(
    source: str,
    name: str = "a.out",
    source_file: Optional[str] = None,
    entry: str = "main",
) -> BinaryImage:
    """Compile mini-C *source* into a binary image named *name*.

    ``source_file`` is the name recorded in the debug line table (defaults to
    ``<name>.c``); ``entry`` is the exported symbol the VM starts from.
    """
    try:
        program = parse(source)
        symbols = SemanticChecker(program).check()
        generator = CodeGenerator(
            program, symbols, name=name, source_file=source_file, entry=entry
        )
        return generator.generate()
    except (LexerError, ParseError, SemanticError) as error:
        raise CompilationError(name, error) from error


__all__ = ["CompilationError", "compile_source"]
