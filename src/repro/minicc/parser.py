"""Recursive-descent parser for mini-C."""

from __future__ import annotations

from typing import List, Optional

from repro.minicc import ast_nodes as ast
from repro.minicc.lexer import Token, tokenize


class ParseError(Exception):
    """Raised for syntactically invalid mini-C input."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


class Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != "eof":
            self._position += 1
        return token

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._current
        return token.kind == kind and (text is None or token.text == text)

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        if self._check(kind, text):
            return self._advance()
        expected = text if text is not None else kind
        found = self._current.text or self._current.kind
        raise ParseError(f"expected {expected!r}, found {found!r}", self._current.line)

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        program = ast.Program(line=1)
        while not self._check("eof"):
            line = self._current.line
            self._expect("keyword", "int")
            name = self._expect("ident").text
            if self._check("op", "("):
                program.functions.append(self._finish_function(name, line))
            else:
                program.globals.append(self._finish_global(name, line))
        return program

    def _finish_global(self, name: str, line: int) -> ast.GlobalDecl:
        array_size: Optional[int] = None
        initializer = 0
        if self._accept("op", "["):
            array_size = self._integer_literal()
            self._expect("op", "]")
        if self._accept("op", "="):
            sign = -1 if self._accept("op", "-") else 1
            initializer = sign * self._integer_literal()
        self._expect("op", ";")
        return ast.GlobalDecl(line=line, name=name, array_size=array_size, initializer=initializer)

    def _integer_literal(self) -> int:
        token = self._expect("int")
        return int(token.text, 0)

    def _finish_function(self, name: str, line: int) -> ast.FunctionDef:
        self._expect("op", "(")
        parameters: List[ast.Parameter] = []
        if not self._check("op", ")"):
            while True:
                param_line = self._current.line
                self._expect("keyword", "int")
                param_name = self._expect("ident").text
                parameters.append(ast.Parameter(line=param_line, name=param_name))
                if not self._accept("op", ","):
                    break
        self._expect("op", ")")
        body = self._parse_block()
        return ast.FunctionDef(line=line, name=name, parameters=parameters, body=body)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _parse_block(self) -> ast.Block:
        start = self._expect("op", "{")
        block = ast.Block(line=start.line)
        while not self._check("op", "}"):
            if self._check("eof"):
                raise ParseError("unterminated block", start.line)
            block.statements.append(self._parse_statement())
        self._expect("op", "}")
        return block

    def _parse_statement(self) -> ast.Node:
        token = self._current

        if token.kind == "op" and token.text == "{":
            return self._parse_block()

        if token.kind == "keyword":
            if token.text == "int":
                return self._parse_var_decl()
            if token.text == "if":
                return self._parse_if()
            if token.text == "while":
                return self._parse_while()
            if token.text == "for":
                return self._parse_for()
            if token.text == "return":
                self._advance()
                value: Optional[ast.Node] = None
                if not self._check("op", ";"):
                    value = self._parse_expression()
                self._expect("op", ";")
                return ast.Return(line=token.line, value=value)
            if token.text == "break":
                self._advance()
                self._expect("op", ";")
                return ast.Break(line=token.line)
            if token.text == "continue":
                self._advance()
                self._expect("op", ";")
                return ast.Continue(line=token.line)

        expression = self._parse_expression()
        self._expect("op", ";")
        return ast.ExprStatement(line=token.line, expression=expression)

    def _parse_var_decl(self) -> ast.VarDecl:
        start = self._expect("keyword", "int")
        name = self._expect("ident").text
        array_size: Optional[int] = None
        initializer: Optional[ast.Node] = None
        if self._accept("op", "["):
            array_size = self._integer_literal()
            self._expect("op", "]")
        if self._accept("op", "="):
            initializer = self._parse_expression()
        self._expect("op", ";")
        return ast.VarDecl(line=start.line, name=name, array_size=array_size, initializer=initializer)

    def _parse_if(self) -> ast.If:
        start = self._expect("keyword", "if")
        self._expect("op", "(")
        condition = self._parse_expression()
        self._expect("op", ")")
        then_body = self._as_block(self._parse_statement())
        else_body: Optional[ast.Block] = None
        if self._accept("keyword", "else"):
            else_body = self._as_block(self._parse_statement())
        return ast.If(line=start.line, condition=condition, then_body=then_body, else_body=else_body)

    def _parse_while(self) -> ast.While:
        start = self._expect("keyword", "while")
        self._expect("op", "(")
        condition = self._parse_expression()
        self._expect("op", ")")
        body = self._as_block(self._parse_statement())
        return ast.While(line=start.line, condition=condition, body=body)

    def _parse_for(self) -> ast.For:
        start = self._expect("keyword", "for")
        self._expect("op", "(")
        init: Optional[ast.Node] = None
        if not self._check("op", ";"):
            if self._check("keyword", "int"):
                init = self._parse_var_decl()
            else:
                init = ast.ExprStatement(line=self._current.line, expression=self._parse_expression())
                self._expect("op", ";")
        else:
            self._expect("op", ";")
        condition: Optional[ast.Node] = None
        if not self._check("op", ";"):
            condition = self._parse_expression()
        self._expect("op", ";")
        step: Optional[ast.Node] = None
        if not self._check("op", ")"):
            step = self._parse_expression()
        self._expect("op", ")")
        body = self._as_block(self._parse_statement())
        return ast.For(line=start.line, init=init, condition=condition, step=step, body=body)

    @staticmethod
    def _as_block(statement: ast.Node) -> ast.Block:
        if isinstance(statement, ast.Block):
            return statement
        return ast.Block(line=statement.line, statements=[statement])

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _parse_expression(self) -> ast.Node:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Node:
        left = self._parse_logical_or()
        if self._check("op", "="):
            token = self._advance()
            if not isinstance(left, (ast.VarRef, ast.Deref, ast.Index)):
                raise ParseError("invalid assignment target", token.line)
            value = self._parse_assignment()
            return ast.Assignment(line=token.line, target=left, value=value)
        return left

    def _parse_logical_or(self) -> ast.Node:
        node = self._parse_logical_and()
        while self._check("op", "||"):
            token = self._advance()
            right = self._parse_logical_and()
            node = ast.BinaryOp(line=token.line, op="||", left=node, right=right)
        return node

    def _parse_logical_and(self) -> ast.Node:
        node = self._parse_equality()
        while self._check("op", "&&"):
            token = self._advance()
            right = self._parse_equality()
            node = ast.BinaryOp(line=token.line, op="&&", left=node, right=right)
        return node

    def _parse_equality(self) -> ast.Node:
        node = self._parse_relational()
        while self._check("op", "==") or self._check("op", "!="):
            token = self._advance()
            right = self._parse_relational()
            node = ast.BinaryOp(line=token.line, op=token.text, left=node, right=right)
        return node

    def _parse_relational(self) -> ast.Node:
        node = self._parse_additive()
        while any(self._check("op", op) for op in ("<", "<=", ">", ">=")):
            token = self._advance()
            right = self._parse_additive()
            node = ast.BinaryOp(line=token.line, op=token.text, left=node, right=right)
        return node

    def _parse_additive(self) -> ast.Node:
        node = self._parse_multiplicative()
        while self._check("op", "+") or self._check("op", "-"):
            token = self._advance()
            right = self._parse_multiplicative()
            node = ast.BinaryOp(line=token.line, op=token.text, left=node, right=right)
        return node

    def _parse_multiplicative(self) -> ast.Node:
        node = self._parse_unary()
        while any(self._check("op", op) for op in ("*", "/", "%")):
            token = self._advance()
            right = self._parse_unary()
            node = ast.BinaryOp(line=token.line, op=token.text, left=node, right=right)
        return node

    def _parse_unary(self) -> ast.Node:
        token = self._current
        if self._check("op", "-"):
            self._advance()
            return ast.UnaryOp(line=token.line, op="-", operand=self._parse_unary())
        if self._check("op", "!"):
            self._advance()
            return ast.UnaryOp(line=token.line, op="!", operand=self._parse_unary())
        if self._check("op", "*"):
            self._advance()
            return ast.Deref(line=token.line, pointer=self._parse_unary())
        if self._check("op", "&"):
            self._advance()
            operand = self._parse_unary()
            if not isinstance(operand, ast.VarRef):
                raise ParseError("'&' requires a variable", token.line)
            return ast.AddressOf(line=token.line, variable=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Node:
        node = self._parse_primary()
        while True:
            if self._check("op", "["):
                token = self._advance()
                index = self._parse_expression()
                self._expect("op", "]")
                node = ast.Index(line=token.line, base=node, index=index)
                continue
            if self._check("op", "(") and isinstance(node, ast.VarRef):
                token = self._advance()
                args: List[ast.Node] = []
                if not self._check("op", ")"):
                    while True:
                        args.append(self._parse_expression())
                        if not self._accept("op", ","):
                            break
                self._expect("op", ")")
                node = ast.Call(line=token.line, name=node.name, args=args)
                continue
            break
        return node

    def _parse_primary(self) -> ast.Node:
        token = self._current
        if token.kind == "int":
            self._advance()
            return ast.IntLiteral(line=token.line, value=int(token.text, 0))
        if token.kind == "string":
            self._advance()
            return ast.StringLiteral(line=token.line, value=token.text)
        if token.kind == "ident":
            self._advance()
            return ast.VarRef(line=token.line, name=token.text)
        if self._check("op", "("):
            self._advance()
            node = self._parse_expression()
            self._expect("op", ")")
            return node
        raise ParseError(f"unexpected token {token.text or token.kind!r}", token.line)


def parse(source: str) -> ast.Program:
    """Parse mini-C source text into a :class:`~repro.minicc.ast_nodes.Program`."""
    return Parser(tokenize(source)).parse_program()


__all__ = ["ParseError", "Parser", "parse"]
