"""Abstract syntax tree for mini-C."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class Node:
    line: int = 0


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
@dataclass
class IntLiteral(Node):
    value: int = 0


@dataclass
class StringLiteral(Node):
    value: str = ""


@dataclass
class VarRef(Node):
    name: str = ""


@dataclass
class UnaryOp(Node):
    op: str = ""
    operand: Optional[Node] = None


@dataclass
class BinaryOp(Node):
    op: str = ""
    left: Optional[Node] = None
    right: Optional[Node] = None


@dataclass
class Assignment(Node):
    target: Optional[Node] = None  # VarRef, Deref, or Index
    value: Optional[Node] = None


@dataclass
class Deref(Node):
    pointer: Optional[Node] = None


@dataclass
class AddressOf(Node):
    variable: Optional[Node] = None  # VarRef only


@dataclass
class Index(Node):
    base: Optional[Node] = None
    index: Optional[Node] = None


@dataclass
class Call(Node):
    name: str = ""
    args: List[Node] = field(default_factory=list)


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
@dataclass
class VarDecl(Node):
    name: str = ""
    array_size: Optional[int] = None
    initializer: Optional[Node] = None


@dataclass
class ExprStatement(Node):
    expression: Optional[Node] = None


@dataclass
class If(Node):
    condition: Optional[Node] = None
    then_body: Optional["Block"] = None
    else_body: Optional["Block"] = None


@dataclass
class While(Node):
    condition: Optional[Node] = None
    body: Optional["Block"] = None


@dataclass
class For(Node):
    init: Optional[Node] = None        # statement or None
    condition: Optional[Node] = None   # expression or None
    step: Optional[Node] = None        # expression or None
    body: Optional["Block"] = None


@dataclass
class Return(Node):
    value: Optional[Node] = None


@dataclass
class Break(Node):
    pass


@dataclass
class Continue(Node):
    pass


@dataclass
class Block(Node):
    statements: List[Node] = field(default_factory=list)


# ----------------------------------------------------------------------
# top level
# ----------------------------------------------------------------------
@dataclass
class GlobalDecl(Node):
    name: str = ""
    array_size: Optional[int] = None
    initializer: int = 0


@dataclass
class Parameter(Node):
    name: str = ""


@dataclass
class FunctionDef(Node):
    name: str = ""
    parameters: List[Parameter] = field(default_factory=list)
    body: Optional[Block] = None


@dataclass
class Program(Node):
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FunctionDef] = field(default_factory=list)

    def function(self, name: str) -> Optional[FunctionDef]:
        for function in self.functions:
            if function.name == name:
                return function
        return None

    def function_names(self) -> List[str]:
        return [function.name for function in self.functions]


__all__ = [
    "AddressOf",
    "Assignment",
    "BinaryOp",
    "Block",
    "Break",
    "Call",
    "Continue",
    "Deref",
    "ExprStatement",
    "For",
    "FunctionDef",
    "GlobalDecl",
    "If",
    "Index",
    "IntLiteral",
    "Node",
    "Parameter",
    "Program",
    "Return",
    "StringLiteral",
    "UnaryOp",
    "VarDecl",
    "VarRef",
    "While",
]
