"""Apache Benchmark (AB) analog.

Issues a fixed number of requests against the Apache target and reports the
wall-clock running time — the measurement of the paper's Table 5 (running
time of the server while the LFI trigger mechanism evaluates triggers on
every intercepted ``apr_file_read``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.core.controller.target import WorkloadRequest
from repro.core.scenario.model import Scenario


@dataclass
class ABResult:
    """Result of one AB run."""

    workload: str
    requests: int
    wall_seconds: float
    library_calls: int
    intercepted_calls: int
    failed: bool

    @property
    def requests_per_second(self) -> float:
        return self.requests / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def triggerings_per_second(self) -> float:
        return self.intercepted_calls / self.wall_seconds if self.wall_seconds > 0 else 0.0


def run_apache_bench(
    target,
    page: str = "static",
    requests: int = 1000,
    scenario: Optional[Scenario] = None,
    observe_only: bool = True,
    post_every: int = 10,
) -> ABResult:
    """Run the AB workload against *target* (a :class:`MiniApacheTarget`)."""
    workload = "ab-static" if page == "static" else "ab-php"
    request = WorkloadRequest(
        workload=workload,
        scenario=scenario,
        observe_only=observe_only,
        options={"requests": requests, "post_every": post_every},
    )
    start = time.perf_counter()
    result = target.run(request)
    elapsed = time.perf_counter() - start
    return ABResult(
        workload=workload,
        requests=requests,
        wall_seconds=elapsed,
        library_calls=result.stats.get("library_calls", 0),
        intercepted_calls=result.stats.get("intercepted_calls", 0),
        failed=result.outcome.is_failure,
    )


__all__ = ["ABResult", "run_apache_bench"]
