"""Workload generators used by the evaluation.

* :mod:`repro.workloads.ab` — the Apache Benchmark (AB) analog driving the
  Apache target (Table 5).
* :mod:`repro.workloads.sysbench` — the SysBench OLTP analog driving the
  MySQL target (Table 6).

The compiled targets carry their own test-suite workloads (declared through
``workload_plan``), and the PBFT cluster drives itself with a closed-loop
client, so those need no separate generator here.
"""

from repro.workloads.ab import ABResult, run_apache_bench
from repro.workloads.sysbench import SysbenchResult, run_sysbench

__all__ = ["ABResult", "SysbenchResult", "run_apache_bench", "run_sysbench"]
