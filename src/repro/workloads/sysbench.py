"""SysBench OLTP analog.

Runs a fixed number of OLTP transactions (read-only or read-write) against
the MySQL target and reports transactions per second of wall-clock time —
the measurement of the paper's Table 6.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.core.controller.target import WorkloadRequest
from repro.core.scenario.model import Scenario


@dataclass
class SysbenchResult:
    """Result of one SysBench OLTP run."""

    mode: str
    transactions: int
    wall_seconds: float
    library_calls: int
    failed: bool

    @property
    def transactions_per_second(self) -> float:
        return self.transactions / self.wall_seconds if self.wall_seconds > 0 else 0.0


def run_sysbench(
    target,
    read_only: bool = True,
    transactions: int = 200,
    scenario: Optional[Scenario] = None,
    observe_only: bool = True,
) -> SysbenchResult:
    """Run the OLTP workload against *target* (a :class:`MiniMySQLTarget`)."""
    workload = "sysbench-readonly" if read_only else "sysbench-readwrite"
    request = WorkloadRequest(
        workload=workload,
        scenario=scenario,
        observe_only=observe_only,
        options={"transactions": transactions},
    )
    start = time.perf_counter()
    result = target.run(request)
    elapsed = time.perf_counter() - start
    return SysbenchResult(
        mode="read-only" if read_only else "read-write",
        transactions=result.stats.get("transactions", transactions),
        wall_seconds=elapsed,
        library_calls=result.stats.get("library_calls", 0),
        failed=result.outcome.is_failure,
    )


__all__ = ["SysbenchResult", "run_sysbench"]
